"""Table 4 — Average zero-shot scores of the 12 models on all six metrics.

Paper headline claims reproduced here: GPT-4 leads every metric; the
proprietary/open-source gap is much larger than on HumanEval (GPT-4's unit
test score is ~6x Llama-2-70b's); dedicated code models underperform
general chat models of similar or smaller size; unit-test scores are much
lower than the text-level scores.
"""

from __future__ import annotations

from benchmarks.common import FAST_MODE, full_zero_shot_result
from repro.analysis.paper_reference import PAPER_TABLE4
from repro.analysis.tables import table4_zero_shot
from repro.core.report import format_leaderboard
from repro.scoring.aggregate import METRIC_NAMES


def test_table4_zero_shot_benchmark(benchmark):
    result = full_zero_shot_result()
    rows = benchmark.pedantic(table4_zero_shot, args=(result,), rounds=1, iterations=1)

    print("\n" + format_leaderboard(result, title="Table 4 (measured)"))
    print("\nmodel                        measured-unit-test   paper-unit-test")
    for row in rows:
        paper = PAPER_TABLE4.get(str(row["model"]))
        paper_unit = paper[5] if paper else float("nan")
        print(f"  {row['model']:<26} {row['unit_test']:.3f}                {paper_unit:.3f}")

    scores = {str(row["model"]): row for row in rows}

    # GPT-4 ranks first and leads every metric (on the full corpus; the
    # fast-mode smoke corpus only guarantees the headline metrics).
    assert rows[0]["model"] == "gpt-4"
    leading_metrics = METRIC_NAMES if not FAST_MODE else ("bleu", "kv_wildcard", "unit_test")
    for metric in leading_metrics:
        assert scores["gpt-4"][metric] == max(row[metric] for row in rows)

    # Proprietary models far ahead of the best open-source model (>= 3x).
    best_open_source = max(
        scores[name]["unit_test"]
        for name in scores
        if name not in ("gpt-4", "gpt-3.5", "palm-2-bison")
    )
    assert scores["gpt-4"]["unit_test"] >= 3 * best_open_source
    assert scores["gpt-3.5"]["unit_test"] >= 2 * best_open_source

    # Llama-2-70b-chat is the best open-source model on the unit test.
    open_source_rank = [
        row["model"] for row in rows if row["model"] not in ("gpt-4", "gpt-3.5", "palm-2-bison")
    ]
    assert open_source_rank[0] == "llama-2-70b-chat"

    # Code-specialised models underperform chat models of similar size.
    assert scores["wizardcoder-34b-v1.0"]["unit_test"] <= scores["llama-2-70b-chat"]["unit_test"]
    assert scores["codellama-13b-instruct"]["unit_test"] <= scores["llama-2-13b-chat"]["unit_test"]

    # The functional metric is the strictest one for every model.
    for row in rows:
        assert row["unit_test"] <= row["kv_wildcard"] + 1e-9
        assert row["exact_match"] <= row["kv_exact"] + 1e-9

    # Paper-vs-measured: the overall ranking correlates strongly (Spearman).
    # The reduced fast-mode corpus has too few problems to pin down the
    # mid-table ordering, so its displacement bound is looser.
    paper_order = [name for name in PAPER_TABLE4 if name in scores]
    measured_order = [str(row["model"]) for row in rows]
    displacement = sum(abs(paper_order.index(name) - measured_order.index(name)) for name in paper_order)
    assert displacement <= (12 if FAST_MODE else 8)  # out of a worst case of 72
