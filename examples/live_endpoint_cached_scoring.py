"""Evaluate a live endpoint with wall-clock pacing and cached scoring.

This is the workflow the content-addressed score cache was built for: a
real, rate-limited endpoint generates answers (slow, non-deterministic
wall-clock), and every unique ``(reference, answer)`` pair is scored at
most once *across runs* — the second leaderboard refresh pays only the
network, not the scoring.

The "endpoint" here is an in-process stand-in (a transport function over
a simulated model, with injected transient failures) so the example runs
offline; point :func:`repro.llm.remote.http_transport` at a URL and the
rest of the wiring is identical.

Run with::

    python examples/live_endpoint_cached_scoring.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import build_dataset
from repro.dataset.schema import Category
from repro.llm import GenerationRequest, LiveEndpointModel, TransientEndpointError, get_model
from repro.pipeline.pipeline import EvaluationPipeline
from repro.scoring.cache import ScoreCache
from repro.utils.ratelimit import TokenBucket

# A small corpus keeps the example quick while exercising every stage.
REDUCED_COUNTS = {Category.POD: 6, Category.SERVICE: 4, Category.DEPLOYMENT: 4}


def make_endpoint(dataset) -> tuple[LiveEndpointModel, dict[str, int]]:
    """An offline 'live endpoint': prompt -> response over a simulated model.

    The transport resolves prompts through a lookup table (as a real
    endpoint resolves them through inference) and fails transiently on
    its first sight of every 5th prompt, so the adapter's
    retry-with-backoff path actually runs.
    """

    inner = get_model("gpt-4")
    answers = {
        GenerationRequest(problem=problem).prompt(): inner.generate(problem)
        for problem in dataset
    }
    flaky: dict[str, int] = {"failures": 0, "calls": 0}
    seen: set[str] = set()

    def transport(prompt: str) -> str:
        flaky["calls"] += 1
        if len(seen) % 5 == 4 and prompt not in seen:
            seen.add(prompt)
            flaky["failures"] += 1
            raise TransientEndpointError("injected 503 (flaky endpoint)")
        seen.add(prompt)
        return answers[prompt]

    model = LiveEndpointModel(
        "gpt-4-live",
        transport,
        # Wall-clock pacing: 200 requests/second with a burst of 8.  Real
        # deployments set this to the provider's published limit.
        limiter=TokenBucket(rate=200.0, burst=8, virtual_clock=False),
        max_retries=2,
        backoff_seconds=0.005,
    )
    return model, flaky


def run_once(dataset, cache: ScoreCache):
    """One leaderboard refresh: live generation, cache-layered scoring."""

    model, flaky = make_endpoint(dataset)
    requests = [GenerationRequest(problem=problem) for problem in dataset]
    pipeline = EvaluationPipeline(
        model,
        generate_executor="async",  # overlap the endpoint's request latencies
        max_workers=8,
        score_cache=cache,
    )
    try:
        start = time.perf_counter()
        evaluation = pipeline.run(requests)
        elapsed = time.perf_counter() - start
    finally:
        pipeline.close()
    print(
        f"  {len(evaluation.records)} records in {elapsed:.2f}s | "
        f"endpoint: {model.requests} attempts, {model.retries} retries "
        f"({flaky['failures']} injected failures) | {cache.describe()}"
    )
    return evaluation


def main() -> None:
    dataset = build_dataset(category_counts=REDUCED_COUNTS)
    cache_path = Path(tempfile.mkdtemp()) / "score_cache.jsonl"

    print("Cold run (empty cache): every unique answer is scored once.")
    cold = run_once(dataset, ScoreCache(cache_path))

    print("Warm run (cache reloaded from disk): scoring is pure lookups.")
    warm = run_once(dataset, ScoreCache(cache_path))

    assert [r.scores for r in cold.records] == [r.scores for r in warm.records]
    print("ScoreCards are bit-identical across the cold and warm runs.")
    print(f"Mean unit-test score: {cold.mean_scores()['unit_test']:.3f}")


if __name__ == "__main__":
    main()
