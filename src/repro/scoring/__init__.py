"""Scoring pipeline: text-level, YAML-aware and function-level metrics (§3.2).

The six metrics of the paper are implemented here:

========================  =====================================================
Metric                    Module / function
========================  =====================================================
BLEU                      :func:`repro.scoring.text_level.bleu`
Edit distance             :func:`repro.scoring.text_level.edit_distance_score`
Exact match               :func:`repro.scoring.text_level.exact_match`
Key-value exact match     :func:`repro.scoring.yaml_aware.key_value_exact_match`
Key-value wildcard match  :func:`repro.scoring.yaml_aware.key_value_wildcard_match`
Unit test                 :func:`repro.scoring.function_level.unit_test_score`
========================  =====================================================

:func:`repro.scoring.aggregate.score_answer` runs all six on one answer and
returns a :class:`~repro.scoring.aggregate.ScoreCard`.  The compiled-reference
engine in :mod:`repro.scoring.compiled` precomputes the reference-side
artifacts once per problem; :func:`repro.scoring.compiled.score_batch` is the
batch entry point with response dedup and optional pool fan-out.
"""

from repro.scoring.aggregate import METRIC_NAMES, ScoreCard, score_answer, score_answer_legacy
from repro.scoring.cache import SCORER_VERSION, CacheStats, ScoreCache
from repro.scoring.compiled import (
    CompiledReference,
    ReferenceStore,
    answer_digest,
    compile_reference,
    get_compiled_reference,
    score_answer_compiled,
    score_batch,
)
from repro.scoring.function_level import unit_test_score
from repro.scoring.text_level import bleu, edit_distance_score, exact_match
from repro.scoring.yaml_aware import key_value_exact_match, key_value_wildcard_match

__all__ = [
    "METRIC_NAMES",
    "SCORER_VERSION",
    "CacheStats",
    "CompiledReference",
    "ReferenceStore",
    "ScoreCache",
    "ScoreCard",
    "answer_digest",
    "bleu",
    "compile_reference",
    "edit_distance_score",
    "exact_match",
    "get_compiled_reference",
    "key_value_exact_match",
    "key_value_wildcard_match",
    "score_answer",
    "score_answer_compiled",
    "score_answer_legacy",
    "score_batch",
    "unit_test_score",
]
