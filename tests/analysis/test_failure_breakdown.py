"""Tests for failure-mode classification and per-factor breakdowns."""

from __future__ import annotations

from repro.analysis.breakdown import PERSPECTIVES, breakdown_table, perspective_series
from repro.analysis.failure_modes import FailureCategory, classify_answer, failure_histogram
from repro.dataset.schema import Variant


def _k8s_problem(problems):
    return next(p for p in problems if p.unit_test.target == "kubernetes")


def test_classify_passing_answer(small_original_problems):
    problem = _k8s_problem(small_original_problems)
    assert classify_answer(problem, problem.reference_plain(), True) is FailureCategory.PASSES


def test_classify_empty_answer(small_original_problems):
    problem = _k8s_problem(small_original_problems)
    assert classify_answer(problem, "", False) is FailureCategory.EMPTY
    assert classify_answer(problem, "apiVersion: v1\n", False) is FailureCategory.EMPTY


def test_classify_prose_without_kind(small_original_problems):
    problem = _k8s_problem(small_original_problems)
    prose = "You should consult the documentation.\nThere are many options.\nGood luck with your cluster."
    assert classify_answer(problem, prose, False) is FailureCategory.NO_KIND


def test_classify_incomplete_yaml(small_original_problems):
    problem = _k8s_problem(small_original_problems)
    fragment = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n   - broken: [unclosed\n"
    assert classify_answer(problem, fragment, False) is FailureCategory.INCOMPLETE_YAML


def test_classify_wrong_kind(small_original_problems):
    problem = next(p for p in small_original_problems if p.metadata["primary_kind"] == "Deployment")
    answer = "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\ndata:\n  a: b\n"
    assert classify_answer(problem, answer, False) is FailureCategory.WRONG_KIND


def test_classify_right_kind_failing_test(small_original_problems):
    problem = next(p for p in small_original_problems if p.metadata["primary_kind"] == "Deployment")
    answer = problem.reference_plain().replace("replicas:", "replicas:")  # same kind, assume failing
    assert classify_answer(problem, answer, False) is FailureCategory.FAILS_UNIT_TEST


def test_classify_envoy_uses_static_resources(small_original_problems):
    problem = next(p for p in small_original_problems if p.unit_test.target == "envoy")
    prose = "Envoy requires listeners and clusters.\nPlease configure them.\nThen start the proxy."
    assert classify_answer(problem, prose, False) is FailureCategory.NO_KIND
    assert classify_answer(problem, problem.reference_plain(), False) is FailureCategory.FAILS_UNIT_TEST


def test_failure_histogram_counts_every_problem(small_original_problems):
    problems = list(small_original_problems)[:10]
    responses = {p.problem_id: p.reference_plain() for p in problems}
    results = {p.problem_id: True for p in problems}
    histogram = failure_histogram(problems, responses, results)
    assert sum(histogram.values()) == 10
    assert histogram[FailureCategory.PASSES] == 10


def test_breakdown_table_has_all_perspectives(small_benchmark_result):
    table = breakdown_table(small_benchmark_result["gpt-4"])
    assert set(table) == set(PERSPECTIVES)
    assert set(table["application"]) == {"kubernetes", "envoy", "istio"}
    assert all(0.0 <= v <= 1.0 for buckets in table.values() for v in buckets.values())


def test_breakdown_kubernetes_beats_envoy_for_gpt4(small_benchmark_result):
    table = breakdown_table(small_benchmark_result["gpt-4"])
    assert table["application"]["kubernetes"] > table["application"]["envoy"]


def test_breakdown_short_answers_easier_than_long(small_benchmark_result):
    table = breakdown_table(small_benchmark_result["gpt-4"])
    assert table["answer_lines"]["[0, 15)"] >= table["answer_lines"][">=30"]


def test_perspective_series_one_point_per_model(small_benchmark_result):
    evaluations = [small_benchmark_result[m] for m in small_benchmark_result.models()]
    series = perspective_series(evaluations, "application")
    assert set(series) == {"kubernetes", "envoy", "istio"}
    assert all(len(values) == len(evaluations) for values in series.values())


def test_perspective_series_unknown_perspective_raises(small_benchmark_result):
    evaluations = [small_benchmark_result["gpt-4"]]
    try:
        perspective_series(evaluations, "nonsense")
    except KeyError as exc:
        assert "nonsense" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected KeyError")


def test_breakdown_ignores_other_variants(small_benchmark_result):
    table_original = breakdown_table(small_benchmark_result["gpt-4"], variant="original")
    table_translated = breakdown_table(small_benchmark_result["gpt-4"], variant=Variant.TRANSLATED.value)
    assert table_original != {} and table_translated != {}
