"""Compare several models and analyse where they fail.

Reproduces, on a reduced corpus, the core analyses of the paper's §4:
a Table 4-style leaderboard, the original/simplified/translated robustness
comparison (Table 5), and the six-category failure-mode histogram
(Figure 7).

Run with::

    python examples/compare_models.py
"""

from __future__ import annotations

from repro import CloudEvalBenchmark, build_dataset
from repro.analysis.failure_modes import FailureCategory
from repro.analysis.tables import figure7_failure_modes, table4_zero_shot, table5_augmented_passes
from repro.core import BenchmarkConfig
from repro.core.report import format_leaderboard
from repro.dataset.schema import Category

MODELS = ["gpt-4", "gpt-3.5", "llama-2-70b-chat", "wizardcoder-34b-v1.0", "codellama-7b-instruct"]

# A reduced corpus keeps the example quick (~1 minute) while covering every category.
REDUCED_COUNTS = {
    Category.POD: 12,
    Category.DAEMONSET: 10,
    Category.SERVICE: 8,
    Category.JOB: 6,
    Category.DEPLOYMENT: 8,
    Category.OTHERS: 24,
    Category.ENVOY: 8,
    Category.ISTIO: 4,
}


def main() -> None:
    dataset = build_dataset(category_counts=REDUCED_COUNTS)
    # Scoring fans out over the in-process evaluation-cluster runtime; the
    # backend never changes a score, so this is a free drop-in.  With
    # shards + shard_by="cost", every model's requests are cut where the
    # Figure 5 model predicts equal shard durations, and evaluate_models
    # interleaves all five models' shards through one shared scheduler —
    # same ScoreCards as sequential runs, better saturation.
    benchmark = CloudEvalBenchmark(
        dataset,
        BenchmarkConfig(executor="cluster", max_workers=8, shards=2, shard_by="cost"),
    )

    print(f"Evaluating {len(MODELS)} models on {len(dataset)} problems (interleaved)...\n")
    result = benchmark.evaluate_models(models=MODELS)

    # The pred_eval_s column prices each model's problem set with the
    # Figure 5 model (English-only models skip translated questions, so
    # their predicted cluster time is lower).
    print(
        format_leaderboard(
            result, title="Leaderboard (Table 4 style)", cost_model=benchmark.cost_model()
        )
    )

    print("\nPass counts per question variant (Table 5 style):")
    for model, row in table5_augmented_passes(result).items():
        print(f"  {model:<24} original {row['original']}   simplified {row['simplified']}   translated {row['translated']}")

    print("\nFailure modes over the original problems (Figure 7 style):")
    histograms = figure7_failure_modes(dataset, result, models=tuple(MODELS[:3]))
    header = "  ".join(f"#{category.value}" for category in FailureCategory)
    print(f"  {'model':<24} {header}   (#6 = passes the unit test)")
    for model, counts in histograms.items():
        row = "  ".join(f"{counts[category]:>2}" for category in FailureCategory)
        print(f"  {model:<24} {row}")

    best = table4_zero_shot(result)[0]
    print(f"\nBest model: {best['model']} (unit-test score {best['unit_test']:.3f})")


if __name__ == "__main__":
    main()
