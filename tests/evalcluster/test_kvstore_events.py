"""Tests for the Redis-like store and the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.kvstore import RedisLikeStore


def test_string_commands():
    store = RedisLikeStore()
    store.set("a", 1)
    assert store.get("a") == 1
    assert store.get("missing", "default") == "default"
    assert store.incr("counter") == 1
    assert store.incr("counter", 5) == 6
    store.delete("a")
    assert store.get("a") is None


def test_hash_commands():
    store = RedisLikeStore()
    store.hset("results", "job-1", {"passed": True})
    assert store.hget("results", "job-1") == {"passed": True}
    assert store.hget("results", "job-2", "none") == "none"
    assert store.hlen("results") == 1
    assert store.hgetall("results") == {"job-1": {"passed": True}}


def test_list_commands_fifo_order():
    store = RedisLikeStore()
    store.rpush("queue", "a", "b")
    store.rpush("queue", "c")
    assert store.llen("queue") == 3
    assert store.lpop("queue") == "a"
    assert store.lrange("queue") == ["b", "c"]
    assert store.lpop("queue") == "b"
    assert store.lpop("queue") == "c"
    assert store.lpop("queue") is None


def test_keys_lists_all_namespaces():
    store = RedisLikeStore()
    store.set("s", 1)
    store.hset("h", "f", 2)
    store.rpush("l", 3)
    assert store.keys() == ["h", "l", "s"]


def test_event_queue_runs_in_time_order():
    queue = EventQueue()
    order: list[str] = []
    queue.schedule(5.0, lambda: order.append("later"))
    queue.schedule(1.0, lambda: order.append("sooner"))
    end = queue.run()
    assert order == ["sooner", "later"]
    assert end == 5.0


def test_event_queue_supports_chained_scheduling():
    queue = EventQueue()
    ticks: list[float] = []

    def tick():
        ticks.append(queue.now)
        if len(ticks) < 3:
            queue.schedule(2.0, tick)

    queue.schedule(0.0, tick)
    queue.run()
    assert ticks == [0.0, 2.0, 4.0]


def test_event_queue_rejects_negative_delay():
    with pytest.raises(ValueError):
        EventQueue().schedule(-1.0, lambda: None)


def test_shared_link_serialises_transfers():
    link = SharedLink(bandwidth_mbps=100.0)
    first = link.request(125.0, now=0.0)  # 125 MB at 100 Mbps = 10 s
    second = link.request(125.0, now=0.0)
    assert first == pytest.approx(10.0)
    assert second == pytest.approx(20.0)
    assert link.total_mb == 250.0


def test_shared_link_idle_gap_respected():
    link = SharedLink(bandwidth_mbps=100.0)
    finish = link.request(12.5, now=100.0)  # 1 second transfer starting at t=100
    assert finish == pytest.approx(101.0)


def test_shared_link_zero_bytes_is_instant():
    link = SharedLink(bandwidth_mbps=10.0)
    assert link.request(0.0, now=7.0) == 7.0


def test_shared_link_requires_positive_bandwidth():
    with pytest.raises(ValueError):
        SharedLink(0.0)
