"""Safe YAML parsing helpers used across the benchmark.

Generated answers are untrusted text, so everything goes through
``yaml.safe_load``.  Answers frequently contain multiple documents (for
example a Service and a Deployment separated by ``---``), so the loaders in
this module always expose a multi-document view and the single-document
helper simply asserts there is exactly one.
"""

from __future__ import annotations

from typing import Any

import yaml

__all__ = [
    "YamlParseError",
    "load_document",
    "load_all_documents",
    "is_valid_yaml",
    "dump_document",
]


class YamlParseError(ValueError):
    """Raised when a YAML payload cannot be parsed or has the wrong shape."""


def load_all_documents(text: str) -> list[Any]:
    """Parse ``text`` into a list of YAML documents.

    Empty documents (for example a trailing ``---``) are dropped.  Raises
    :class:`YamlParseError` when the text is not valid YAML.
    """

    try:
        docs = list(yaml.safe_load_all(text))
    except yaml.YAMLError as exc:  # pragma: no cover - message formatting
        raise YamlParseError(f"invalid YAML: {exc}") from exc
    return [d for d in docs if d is not None]


def load_document(text: str) -> Any:
    """Parse ``text`` expecting exactly one YAML document."""

    docs = load_all_documents(text)
    if not docs:
        raise YamlParseError("no YAML document found")
    if len(docs) > 1:
        raise YamlParseError(f"expected a single YAML document, found {len(docs)}")
    return docs[0]


def is_valid_yaml(text: str, require_mapping: bool = False) -> bool:
    """Return True when ``text`` parses as YAML.

    With ``require_mapping`` every parsed document must be a mapping, which
    is the shape of every Kubernetes/Envoy/Istio configuration in the
    dataset; a bare scalar (for example a prose answer) does not count.
    """

    try:
        docs = load_all_documents(text)
    except YamlParseError:
        return False
    if not docs:
        return False
    if require_mapping:
        return all(isinstance(d, dict) for d in docs)
    return True


def dump_document(doc: Any) -> str:
    """Serialise a document back to YAML with stable formatting."""

    return yaml.safe_dump(doc, sort_keys=False, default_flow_style=False)
