"""Execute unit-test programs against the simulated substrate.

``execute_unit_test(program, answer_yaml)`` plays the role of running the
per-problem bash script: it creates a fresh cluster (or parses the Envoy
configuration), performs each step in order, and reports the first failing
step.  Any simulator exception (validation error, missing object, YAML
parse error) fails the test, exactly like a non-zero ``kubectl`` exit code
fails the bash script.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.envoysim import EnvoyConfig, EnvoyValidationError
from repro.kubesim import Cluster, KubeError, Kubectl
from repro.kubesim.selectors import matches_selector
from repro.testexec import steps as S
from repro.yamlkit.parsing import YamlParseError, load_all_documents

# Importing istiosim registers the Istio CRD validators with kubesim.
import repro.istiosim  # noqa: F401  (import for side effect)

__all__ = ["UnitTestResult", "execute_unit_test"]


@dataclass(frozen=True)
class UnitTestResult:
    """Outcome of running one unit-test program against one answer."""

    passed: bool
    failed_step: str | None = None
    message: str = ""
    steps_run: int = 0

    @property
    def score(self) -> float:
        """The paper's unit-test metric: 1.0 on pass, 0.0 otherwise."""

        return 1.0 if self.passed else 0.0


class _StepFailure(Exception):
    """Internal: a step's assertion did not hold."""


@lru_cache(maxsize=1024)
def _parsed_manifest(yaml_text: str) -> list:
    """Parse an ``ApplyManifest`` step's fixed YAML once per text.

    Step manifests are immutable dataset artifacts replayed on every
    execution of the same program; ``apply_parsed`` never mutates the
    documents, so the cached parse is safe to share.
    """

    return load_all_documents(yaml_text)


def execute_unit_test(
    program: S.UnitTestProgram,
    answer_yaml: str,
    parsed_answer: list | YamlParseError | None = None,
) -> UnitTestResult:
    """Run ``program`` with ``answer_yaml`` as the generated configuration.

    ``parsed_answer`` optionally carries the result of
    ``load_all_documents(answer_yaml)`` — or the :class:`YamlParseError` it
    raised — so batch scoring can parse each answer once and share the
    documents between the metrics and the executor.  When provided it must
    correspond to ``answer_yaml``; the executor never mutates the documents
    (applies deep-copy before namespace defaulting), preserving the exact
    semantics of re-parsing the text.
    """

    if program.target == "envoy":
        return _execute_envoy(program, answer_yaml, parsed_answer)
    return _execute_kubernetes(program, answer_yaml, parsed_answer)


# ---------------------------------------------------------------------------
# Kubernetes / Istio execution
# ---------------------------------------------------------------------------

def _execute_kubernetes(
    program: S.UnitTestProgram,
    answer_yaml: str,
    parsed_answer: list | YamlParseError | None = None,
) -> UnitTestResult:
    cluster = Cluster(nodes=[f"node-{i + 1}" for i in range(max(1, program.nodes))])
    kubectl = Kubectl(cluster)
    steps_run = 0
    for step in program.steps:
        try:
            _run_kubernetes_step(step, kubectl, answer_yaml, parsed_answer)
        except (_StepFailure, KubeError, YamlParseError, ValueError) as exc:
            return UnitTestResult(
                passed=False,
                failed_step=type(step).__name__,
                message=str(exc),
                steps_run=steps_run,
            )
        steps_run += 1
    return UnitTestResult(passed=True, steps_run=steps_run)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise _StepFailure(message)


def _run_kubernetes_step(
    step: S.Step,
    kubectl: Kubectl,
    answer_yaml: str,
    parsed_answer: list | YamlParseError | None = None,
) -> None:
    cluster = kubectl.cluster
    if isinstance(step, S.CreateNamespace):
        kubectl.create_namespace(step.name)
    elif isinstance(step, S.ApplyManifest):
        kubectl.apply_parsed(_parsed_manifest(step.yaml_text), namespace=step.namespace)
    elif isinstance(step, S.ApplyAnswer):
        _expect(bool(answer_yaml.strip()), "answer is empty")
        if parsed_answer is None:
            kubectl.apply(answer_yaml, namespace=step.namespace)
        elif isinstance(parsed_answer, YamlParseError):
            raise parsed_answer
        else:
            kubectl.apply_parsed(parsed_answer, namespace=step.namespace)
    elif isinstance(step, S.WaitFor):
        ok = kubectl.wait(
            step.kind,
            step.condition,
            name=step.name,
            namespace=step.namespace,
            selector=step.selector,
            timeout_seconds=step.timeout_seconds,
        )
        _expect(ok, f"condition {step.condition!r} not met for {step.kind} {step.name or step.selector}")
    elif isinstance(step, S.AssertExists):
        _expect(
            cluster.exists(step.kind, step.name, step.namespace),
            f"{step.kind} {step.name!r} not found in {step.namespace!r}",
        )
    elif isinstance(step, S.AssertJsonPath):
        value = kubectl.get(
            step.kind,
            name=step.name,
            namespace=step.namespace,
            selector=step.selector,
            jsonpath=step.jsonpath,
        )
        value = str(value)
        if step.expected is not None:
            _expect(
                value.strip() == step.expected.strip(),
                f"jsonpath {step.jsonpath} = {value!r}, expected {step.expected!r}",
            )
        if step.contains is not None:
            _expect(step.contains in value, f"jsonpath {step.jsonpath} = {value!r} does not contain {step.contains!r}")
        if step.one_of:
            _expect(
                value.strip() in [s.strip() for s in step.one_of],
                f"jsonpath {step.jsonpath} = {value!r} not in {list(step.one_of)}",
            )
    elif isinstance(step, S.AssertFieldAbsent):
        value = kubectl.get(step.kind, name=step.name, namespace=step.namespace, jsonpath=step.jsonpath)
        _expect(not str(value).strip(), f"jsonpath {step.jsonpath} unexpectedly set to {value!r}")
    elif isinstance(step, S.AssertPodCount):
        pods = [
            pod
            for pod in cluster.list_resources("Pod", namespace=step.namespace)
            if matches_selector(pod.labels, step.selector) and cluster.pod_is_ready(pod)
        ]
        _expect(
            len(pods) >= step.min_count,
            f"expected at least {step.min_count} ready pods matching {step.selector}, found {len(pods)}",
        )
    elif isinstance(step, S.AssertServiceReachable):
        _expect(
            cluster.service_reachable(step.name, step.namespace, step.port),
            f"service {step.name!r} is not reachable on port {step.port}",
        )
    elif isinstance(step, S.AssertHostPortReachable):
        _expect(
            cluster.host_port_reachable(step.host_port, namespace=step.namespace, selector=step.selector),
            f"host port {step.host_port} is not served by any ready pod",
        )
    elif isinstance(step, S.AssertDescribeContains):
        description = kubectl.describe(step.kind, step.name, step.namespace)
        _expect(step.substring in description, f"describe output does not contain {step.substring!r}")
    elif isinstance(step, S.AssertIstioLbPolicy):
        from repro.istiosim import destination_rule_lb_policy

        resource = cluster.get("DestinationRule", step.name, step.namespace)
        policy = destination_rule_lb_policy(resource, subset=step.subset)
        _expect(policy == step.policy, f"lb policy is {policy!r}, expected {step.policy!r}")
    elif isinstance(step, S.AssertIstioSubsetLabels):
        from repro.istiosim import destination_rule_subsets

        resource = cluster.get("DestinationRule", step.name, step.namespace)
        subsets = destination_rule_subsets(resource)
        _expect(step.subset in subsets, f"subset {step.subset!r} not found")
        actual = subsets[step.subset]
        for key, value in step.labels.items():
            _expect(actual.get(key) == value, f"subset label {key}={actual.get(key)!r}, expected {value!r}")
    elif isinstance(step, S.AssertIstioDestination):
        from repro.istiosim import virtual_service_destinations

        resource = cluster.get("VirtualService", step.name, step.namespace)
        destinations = virtual_service_destinations(resource)
        wanted = (step.host, step.subset)
        found = any(host == step.host and (step.subset is None or subset == step.subset) for host, subset in destinations)
        _expect(found, f"VirtualService does not route to {wanted}")
    elif isinstance(step, S.AssertGatewayServer):
        from repro.istiosim import gateway_servers

        resource = cluster.get("Gateway", step.name, step.namespace)
        servers = gateway_servers(resource)
        found = False
        for server in servers:
            port = server.get("port", {})
            hosts = [str(h) for h in server.get("hosts", [])]
            if (
                port.get("number") == step.port
                and str(port.get("protocol", "")).upper() == step.protocol.upper()
                and (step.host == "*" or step.host in hosts or "*" in hosts)
            ):
                found = True
        _expect(found, f"no Gateway server on port {step.port}/{step.protocol} for host {step.host!r}")
    elif isinstance(step, (S.AssertEnvoyListenerPort, S.AssertEnvoyRoute, S.AssertEnvoyClusterLb, S.AssertEnvoyClusterEndpoints)):
        raise _StepFailure(f"{type(step).__name__} is only valid in an envoy-target program")
    else:  # pragma: no cover - defensive
        raise _StepFailure(f"unknown step type {type(step).__name__}")


# ---------------------------------------------------------------------------
# Envoy execution
# ---------------------------------------------------------------------------

def _execute_envoy(
    program: S.UnitTestProgram,
    answer_yaml: str,
    parsed_answer: list | YamlParseError | None = None,
) -> UnitTestResult:
    steps_run = 0
    try:
        if parsed_answer is None:
            documents = load_all_documents(answer_yaml)
        elif isinstance(parsed_answer, YamlParseError):
            raise parsed_answer
        else:
            documents = parsed_answer
        if len(documents) != 1 or not isinstance(documents[0], dict):
            raise EnvoyValidationError("expected a single Envoy bootstrap configuration document")
        config = EnvoyConfig(documents[0])
    except (YamlParseError, EnvoyValidationError, ValueError) as exc:
        return UnitTestResult(passed=False, failed_step="ParseEnvoyConfig", message=str(exc))

    for step in program.steps:
        try:
            _run_envoy_step(step, config)
        except _StepFailure as exc:
            return UnitTestResult(passed=False, failed_step=type(step).__name__, message=str(exc), steps_run=steps_run)
        steps_run += 1
    return UnitTestResult(passed=True, steps_run=steps_run)


def _run_envoy_step(step: S.Step, config: EnvoyConfig) -> None:
    if isinstance(step, S.ApplyAnswer):
        return  # parsing/validation already happened
    if isinstance(step, S.AssertEnvoyListenerPort):
        _expect(step.port in config.listener_ports(), f"no listener on port {step.port}")
    elif isinstance(step, S.AssertEnvoyRoute):
        cluster = config.route(step.port, step.path, step.host)
        _expect(cluster == step.cluster, f"request to :{step.port}{step.path} routed to {cluster!r}, expected {step.cluster!r}")
        _expect(config.request_succeeds(step.port, step.path, step.host), f"cluster {step.cluster!r} has no endpoints")
    elif isinstance(step, S.AssertEnvoyClusterLb):
        policy = config.cluster_lb_policy(step.cluster)
        _expect(policy == step.policy, f"cluster {step.cluster!r} lb_policy is {policy!r}, expected {step.policy!r}")
    elif isinstance(step, S.AssertEnvoyClusterEndpoints):
        endpoints = config.cluster_endpoints(step.cluster)
        _expect(
            (step.address, step.port) in endpoints,
            f"cluster {step.cluster!r} has no endpoint {step.address}:{step.port} (has {endpoints})",
        )
    else:
        raise _StepFailure(f"{type(step).__name__} is only valid in a kubernetes-target program")
