"""Envoy problem templates (Table 2 column "Envoy").

Envoy problems ask for a full static bootstrap configuration; their
reference solutions are markedly longer than the Kubernetes ones (the paper
reports 85.85 lines on average for Envoy), which is what makes the category
the hardest in Figure 6.
"""

from __future__ import annotations

from repro.dataset.catalog.common import ProblemDraft, pick_source
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]

_BACKENDS = ["web_service", "api_service", "grpc_service", "auth_service", "static_service", "orders_service"]
_UPSTREAM_HOSTS = ["app", "backend.internal", "upstream.svc.cluster.local", "127.0.0.1"]


def _http_proxy(rng: DeterministicRNG, index: int) -> ProblemDraft:
    listener_port = rng.choice([10000, 8080, 15001, 9901 + 10])
    upstream_host = rng.choice(_UPSTREAM_HOSTS)
    upstream_port = rng.choice([8080, 3000, 5000, 8000])
    cluster = rng.choice(_BACKENDS)
    question = (
        f"Write an Envoy static configuration YAML with a listener on 0.0.0.0 port {listener_port} "
        f"that proxies all HTTP traffic (prefix \"/\") to a cluster named \"{cluster}\". The cluster "
        f"uses STRICT_DNS discovery and has a single endpoint at {upstream_host}:{upstream_port}."
    )
    reference = f"""static_resources:
  listeners:
  - name: listener_0  # *
    address:
      socket_address:
        address: 0.0.0.0
        port_value: {listener_port}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          "@type": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http  # *
          http_filters:
          - name: envoy.filters.http.router
            typed_config:
              "@type": type.googleapis.com/envoy.extensions.filters.http.router.v3.Router
          route_config:
            name: local_route  # *
            virtual_hosts:
            - name: backend  # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: {cluster}
  clusters:
  - name: {cluster}
    type: STRICT_DNS
    connect_timeout: 5s  # *
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: {cluster}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: {upstream_host}
                port_value: {upstream_port}
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertEnvoyListenerPort(listener_port),
        S.AssertEnvoyRoute(listener_port, cluster, path="/"),
        S.AssertEnvoyClusterEndpoints(cluster, upstream_host, upstream_port),
    ]
    return ProblemDraft(
        slug=f"envoy-http-proxy-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        target="envoy",
        source=pick_source(rng),
        primary_kind="EnvoyConfig",
        extra_difficulty=0.3,
    )


def _path_routing(rng: DeterministicRNG, index: int) -> ProblemDraft:
    listener_port = rng.choice([10000, 8080, 80])
    api_cluster, static_cluster = rng.sample(_BACKENDS, 2)
    api_port = rng.choice([8081, 9000, 5001])
    static_port = rng.choice([8082, 9001, 5002])
    question = (
        f"Write an Envoy static configuration with one listener on port {listener_port} that routes "
        f"requests with the path prefix \"/api\" to the cluster \"{api_cluster}\" and everything else "
        f"(prefix \"/\") to the cluster \"{static_cluster}\". {api_cluster} has an endpoint at "
        f"127.0.0.1:{api_port}; {static_cluster} has an endpoint at 127.0.0.1:{static_port}. Both "
        f"clusters use STATIC discovery."
    )
    reference = f"""static_resources:
  listeners:
  - name: main_listener  # *
    address:
      socket_address:
        address: 0.0.0.0
        port_value: {listener_port}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          "@type": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http  # *
          http_filters:
          - name: envoy.filters.http.router
            typed_config:
              "@type": type.googleapis.com/envoy.extensions.filters.http.router.v3.Router
          route_config:
            name: local_route  # *
            virtual_hosts:
            - name: services  # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /api
                route:
                  cluster: {api_cluster}
              - match:
                  prefix: /
                route:
                  cluster: {static_cluster}
  clusters:
  - name: {api_cluster}
    type: STATIC
    connect_timeout: 1s  # *
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: {api_cluster}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: {api_port}
  - name: {static_cluster}
    type: STATIC
    connect_timeout: 1s  # *
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: {static_cluster}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: {static_port}
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertEnvoyListenerPort(listener_port),
        S.AssertEnvoyRoute(listener_port, api_cluster, path="/api/users"),
        S.AssertEnvoyRoute(listener_port, static_cluster, path="/index.html"),
        S.AssertEnvoyClusterEndpoints(api_cluster, "127.0.0.1", api_port),
    ]
    return ProblemDraft(
        slug=f"envoy-path-routing-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        target="envoy",
        source=pick_source(rng),
        primary_kind="EnvoyConfig",
        extra_difficulty=0.35,
    )


def _least_request_lb(rng: DeterministicRNG, index: int) -> ProblemDraft:
    listener_port = rng.choice([10000, 8080])
    cluster = rng.choice(_BACKENDS)
    ports = rng.sample([8081, 8082, 8083, 9001, 9002, 9003], 3)
    question = (
        f"Write an Envoy static configuration with a listener on port {listener_port} forwarding all "
        f"HTTP traffic to the cluster \"{cluster}\". The cluster must use the LEAST_REQUEST load "
        f"balancing policy over three STATIC endpoints at 127.0.0.1 ports {ports[0]}, {ports[1]} "
        f"and {ports[2]}."
    )
    endpoints_yaml = "\n".join(
        f"""        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: {port}"""
        for port in ports
    )
    reference = f"""static_resources:
  listeners:
  - name: listener_0  # *
    address:
      socket_address:
        address: 0.0.0.0
        port_value: {listener_port}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          "@type": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http  # *
          http_filters:
          - name: envoy.filters.http.router
            typed_config:
              "@type": type.googleapis.com/envoy.extensions.filters.http.router.v3.Router
          route_config:
            name: local_route  # *
            virtual_hosts:
            - name: backend  # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: {cluster}
  clusters:
  - name: {cluster}
    type: STATIC
    connect_timeout: 2s  # *
    lb_policy: LEAST_REQUEST
    load_assignment:
      cluster_name: {cluster}
      endpoints:
      - lb_endpoints:
{endpoints_yaml}
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertEnvoyListenerPort(listener_port),
        S.AssertEnvoyClusterLb(cluster, "LEAST_REQUEST"),
        S.AssertEnvoyRoute(listener_port, cluster, path="/"),
        S.AssertEnvoyClusterEndpoints(cluster, "127.0.0.1", ports[0]),
        S.AssertEnvoyClusterEndpoints(cluster, "127.0.0.1", ports[2]),
    ]
    return ProblemDraft(
        slug=f"envoy-least-request-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        target="envoy",
        source=pick_source(rng),
        primary_kind="EnvoyConfig",
        extra_difficulty=0.35,
    )


def _domain_routing(rng: DeterministicRNG, index: int) -> ProblemDraft:
    listener_port = rng.choice([443 + 8000, 10000, 8080])
    internal_cluster, public_cluster = rng.sample(_BACKENDS, 2)
    domain = rng.choice(["internal.example.com", "admin.example.com", "partners.example.com"])
    question = (
        f"Write an Envoy static configuration with a listener on port {listener_port} and two virtual "
        f"hosts: requests with the Host header \"{domain}\" go to the cluster \"{internal_cluster}\" "
        f"and all other domains go to \"{public_cluster}\". Each cluster has one STATIC endpoint at "
        f"127.0.0.1 (ports 9100 for {internal_cluster}, 9200 for {public_cluster})."
    )
    reference = f"""static_resources:
  listeners:
  - name: listener_0  # *
    address:
      socket_address:
        address: 0.0.0.0
        port_value: {listener_port}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          "@type": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http  # *
          http_filters:
          - name: envoy.filters.http.router
            typed_config:
              "@type": type.googleapis.com/envoy.extensions.filters.http.router.v3.Router
          route_config:
            name: local_route  # *
            virtual_hosts:
            - name: internal  # *
              domains:
              - {domain}
              routes:
              - match:
                  prefix: /
                route:
                  cluster: {internal_cluster}
            - name: public  # *
              domains:
              - "*"
              routes:
              - match:
                  prefix: /
                route:
                  cluster: {public_cluster}
  clusters:
  - name: {internal_cluster}
    type: STATIC
    connect_timeout: 1s  # *
    load_assignment:
      cluster_name: {internal_cluster}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 9100
  - name: {public_cluster}
    type: STATIC
    connect_timeout: 1s  # *
    load_assignment:
      cluster_name: {public_cluster}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 9200
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertEnvoyListenerPort(listener_port),
        S.AssertEnvoyRoute(listener_port, internal_cluster, path="/", host=domain),
        S.AssertEnvoyRoute(listener_port, public_cluster, path="/", host="other.example.com"),
        S.AssertEnvoyClusterEndpoints(internal_cluster, "127.0.0.1", 9100),
    ]
    return ProblemDraft(
        slug=f"envoy-domain-routing-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        target="envoy",
        source=pick_source(rng),
        primary_kind="EnvoyConfig",
        extra_difficulty=0.4,
    )


_TEMPLATES = [_http_proxy, _path_routing, _least_request_lb, _domain_routing]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` Envoy problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("envoy", index), index))
    return drafts
