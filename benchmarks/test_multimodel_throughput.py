"""Interleaved multi-model leaderboard vs sequential per-model runs.

A leaderboard run evaluates several models over the same corpus.  Run
sequentially — one sharded run per model — every model pays its own
pipeline fill/drain bubble (a generation-only head and a scoring-only
tail) and its own executor spin-up, and while one model's tail is being
scored the endpoint sits idle.  The
:class:`~repro.pipeline.scheduler.MultiModelScheduler` interleaves all
models' shards through one shared async generation executor and one
shared process scoring pool, so the whole leaderboard pays a single
bubble and keeps both resources busy across model boundaries.

The models sit behind :class:`~repro.llm.remote.RemoteEndpointModel`
wrappers — identical answers, realistic per-request latency — and the
guard asserts both that the speedup lands (ratio-based, same machine,
same process: runner speed cannot flake it) and that interleaving moves
no record.

A second, deterministic guard covers the planning half of the subsystem:
on a heterogeneity-sorted corpus the cost planner must cut shards whose
predicted durations sit strictly closer together (max − min) than the
count planner's.
"""

from __future__ import annotations

import time

from benchmarks.common import FAST_MODE, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.schema import Category
from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest
from repro.llm.registry import available_models, get_model
from repro.llm.remote import RemoteEndpointModel
from repro.pipeline import (
    AsyncExecutor,
    ModelJob,
    MultiModelScheduler,
    ProcessExecutor,
    ShardedEvaluationPipeline,
)
from repro.pipeline.planner import CostPlanner, CountPlanner
from repro.scoring.compiled import ReferenceStore

MODEL_NAMES = tuple(available_models())  # the full Table 4 leaderboard

#: Per-request endpoint latency, sized so a model's generation head (the
#: first batch it must generate before anything can be scored) is a real
#: fraction of its wall-clock.  A sequential schedule pays that head once
#: per model — when a model starts, the previous one has already drained,
#: so there is nothing to score while its first batch generates.  The
#: interleaved scheduler pays it once per leaderboard: while one model's
#: batch generates, other models' batches are being scored.
LATENCY_SECONDS = 0.02 if FAST_MODE else 0.03
JITTER_SECONDS = LATENCY_SECONDS / 4

SHARDS = 2
GENERATE_CONCURRENCY = 8
SCORE_WORKERS = 2

#: How many batches the generation workers keep in flight: deep enough
#: that endpoint waits overlap across batches and models.
PREFETCH_BATCHES = 4

#: Streaming batch size: one batch per shard, so every model's run is
#: exactly two generate→score units and the generation head is one half
#: of the model's endpoint time.
BATCH_SIZE = 96 if FAST_MODE else 512

#: The guard: one interleaved leaderboard run must beat the sequential
#: per-model sharded runs end to end by at least this factor (measured
#: ~1.7x fast corpus, ~2x full corpus, on a single core).
MIN_SPEEDUP = 1.3


def _wrapped_models():
    return [
        RemoteEndpointModel(
            get_model(name),
            latency_seconds=LATENCY_SECONDS,
            jitter_seconds=JITTER_SECONDS,
            seed=11,
        )
        for name in MODEL_NAMES
    ]


def _jobs(driver: CloudEvalBenchmark) -> list[ModelJob]:
    jobs = []
    for model in _wrapped_models():
        resolved, requests = driver.requests(model)
        jobs.append(ModelJob(resolved, requests))
    return jobs


def test_multimodel_throughput(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    store = ReferenceStore()
    # Compile every reference up front so neither timed path pays the
    # one-time compilation cost (whichever ran first would otherwise eat
    # it and skew the ratio).
    for problem in dataset:
        store.get(problem)

    # --- sequential baseline: one sharded run per model, each with its
    # own executors — exactly what per-model evaluate_model calls pay ----
    start = time.perf_counter()
    sequential = {}
    for job in _jobs(driver):
        with ProcessExecutor(max_workers=SCORE_WORKERS) as score_executor:
            with ShardedEvaluationPipeline(
                job.model,
                shards=SHARDS,
                executor=score_executor,
                generate_executor=AsyncExecutor(max_concurrency=GENERATE_CONCURRENCY),
                store=store,
                batch_size=BATCH_SIZE,
                prefetch_batches=PREFETCH_BATCHES,
            ) as sharded:
                sequential[job.name] = sharded.run(job.requests)
    sequential_seconds = time.perf_counter() - start

    # --- interleaved leaderboard through the multi-model scheduler -------
    def run_interleaved():
        with ProcessExecutor(max_workers=SCORE_WORKERS) as score_executor:
            with MultiModelScheduler(
                _jobs(driver),
                shards=SHARDS,
                executor=score_executor,
                generate_executor=AsyncExecutor(max_concurrency=GENERATE_CONCURRENCY),
                store=store,
                batch_size=BATCH_SIZE,
                prefetch_batches=PREFETCH_BATCHES,
            ) as scheduler:
                return scheduler.run()

    result = benchmark.pedantic(run_interleaved, rounds=1, iterations=1)
    interleaved_seconds = benchmark.stats.stats.mean
    speedup = sequential_seconds / interleaved_seconds

    requests = sum(len(evaluation.records) for evaluation in sequential.values())
    benchmark.extra_info["models"] = len(MODEL_NAMES)
    benchmark.extra_info["requests"] = requests
    benchmark.extra_info["latency_ms"] = LATENCY_SECONDS * 1000
    benchmark.extra_info["sequential_seconds"] = round(sequential_seconds, 4)
    benchmark.extra_info["interleaved_seconds"] = round(interleaved_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nLeaderboard over {len(MODEL_NAMES)} models / {requests} requests "
        f"({LATENCY_SECONDS * 1000:.0f}ms endpoint, {SHARDS} shards each):"
        f"\n  sequential per-model runs : {sequential_seconds:6.2f} s"
        f"\n  interleaved scheduler     : {interleaved_seconds:6.2f} s"
        f"\n  speedup                   : {speedup:6.2f} x"
    )

    # Interleaving must not move a single record...
    for name, evaluation in sequential.items():
        assert result[name].records == evaluation.records

    # ...and must actually deliver the wall-clock win (ratio-based guard).
    assert speedup >= MIN_SPEEDUP, (
        f"interleaved leaderboard speedup {speedup:.2f}x fell below the "
        f"{MIN_SPEEDUP}x floor (sequential {sequential_seconds:.2f}s, "
        f"interleaved {interleaved_seconds:.2f}s)"
    )


def test_cost_planner_tightens_predicted_shard_durations():
    """Deterministic guard on the planning half: cost-balanced cuts must
    bring predicted shard durations strictly closer together than
    count-balanced cuts on a heterogeneous corpus."""

    dataset = bench_dataset()
    problems = sorted(
        dataset.originals(),
        key=lambda p: (p.category is not Category.POD, p.category.value),
    )
    requests = [GenerationRequest(problem=p) for p in problems]
    planner = CostPlanner(CostModel(dataset))
    for shards in (4, 8):
        cost_durations = planner.predicted_durations(
            requests, planner.plan(requests, shards)
        )
        count_durations = planner.predicted_durations(
            requests, CountPlanner().plan(requests, shards)
        )
        cost_spread = max(cost_durations) - min(cost_durations)
        count_spread = max(count_durations) - min(count_durations)
        print(
            f"\n{shards} shards over {len(requests)} problems: predicted spread "
            f"{cost_spread:.1f}s (cost) vs {count_spread:.1f}s (count)"
        )
        assert cost_spread < count_spread
        assert max(cost_durations) <= max(count_durations)
