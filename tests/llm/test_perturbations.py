"""Tests for the answer perturbation operators."""

from __future__ import annotations

from repro.llm import perturbations as P
from repro.scoring.function_level import unit_test_score
from repro.utils.rng import DeterministicRNG
from repro.yamlkit.parsing import is_valid_yaml


def _rng(seed=0):
    return DeterministicRNG(seed)


def test_critical_values_cover_assertions(small_original_problems):
    problem = small_original_problems[0]
    values = P.critical_values(problem)
    assert values
    assert all(isinstance(v, str) and v for v in values)


def test_correct_answer_exact_text_matches_reference(small_original_problems):
    problem = small_original_problems[0]
    assert P.correct_answer(problem, _rng(), exact_text=True) == problem.reference_plain()


def test_correct_answer_exact_keys_same_documents_different_text(small_original_problems):
    from repro.scoring.yaml_aware import key_value_exact_match

    problem = small_original_problems[0]
    answer = P.correct_answer(problem, _rng(), exact_keys=True)
    assert key_value_exact_match(answer, problem.reference_plain()) == 1.0


def test_correct_answers_pass_unit_tests(small_original_problems):
    for index, problem in enumerate(list(small_original_problems)[:20]):
        answer = P.correct_answer(problem, _rng(index), style_divergence=0.5)
        assert unit_test_score(problem, answer) == 1.0, problem.problem_id


def test_near_miss_answers_fail_unit_tests(small_original_problems):
    failures = 0
    sampled = list(small_original_problems)[:20]
    for index, problem in enumerate(sampled):
        answer = P.near_miss_answer(problem, _rng(index), intensity=1)
        failures += 1 - int(unit_test_score(problem, answer))
    assert failures >= len(sampled) - 1  # at most one accidental pass


def test_near_miss_answers_remain_valid_yaml(small_original_problems):
    for index, problem in enumerate(list(small_original_problems)[:10]):
        answer = P.near_miss_answer(problem, _rng(index), intensity=2)
        assert is_valid_yaml(answer, require_mapping=True)


def test_wrong_kind_answer_changes_kind(small_original_problems):
    problem = next(p for p in small_original_problems if p.unit_test.target == "kubernetes")
    answer = P.wrong_kind_answer(problem, _rng())
    original_kind = problem.metadata["primary_kind"]
    assert f"kind: {original_kind}\n" not in answer


def test_incomplete_answer_is_not_parsable_but_contains_kind(small_original_problems):
    problem = next(p for p in small_original_problems if p.unit_test.target == "kubernetes")
    answer = P.incomplete_answer(problem, _rng())
    assert "kind" in answer
    assert not is_valid_yaml(answer, require_mapping=True)


def test_prose_answer_contains_no_yaml(small_original_problems):
    answer = P.prose_answer(small_original_problems[0], _rng())
    assert "apiVersion" not in answer
    assert len(answer.splitlines()) <= 3


def test_empty_answer_is_short(small_original_problems):
    answer = P.empty_answer(small_original_problems[0], _rng())
    assert len([line for line in answer.splitlines() if line.strip()]) < 3


def test_generic_answer_is_valid_but_question_agnostic(small_original_problems):
    problem = next(p for p in small_original_problems if p.metadata["primary_kind"] == "Deployment")
    answer = P.generic_answer(problem, _rng())
    assert "kind: Deployment" in answer
    assert unit_test_score(problem, answer) == 0.0


def test_restyle_preserves_functionality(small_original_problems):
    problem = small_original_problems[0]
    plain = problem.reference_plain()
    restyled = P.restyle(plain, _rng(), strength=0.8)
    assert restyled != plain
    assert unit_test_score(problem, restyled) == 1.0


def test_restyle_force_structural_change_breaks_kv_exact(small_original_problems):
    from repro.scoring.yaml_aware import key_value_exact_match

    problem = small_original_problems[0]
    plain = problem.reference_plain()
    restyled = P.restyle(plain, _rng(), strength=0.0, force_structural_change=True)
    assert key_value_exact_match(restyled, plain) == 0.0


def test_restyle_leaves_invalid_yaml_untouched():
    broken = "kind: Pod\n  bad: [unclosed"
    assert P.restyle(broken, _rng(), strength=1.0) == broken


def test_wrap_response_styles_are_recoverable(small_original_problems):
    from repro.postprocess import extract_yaml
    from repro.scoring.yaml_aware import key_value_exact_match

    problem = small_original_problems[0]
    plain = problem.reference_plain()
    for seed in range(12):
        wrapped = P.wrap_response(plain, _rng(seed), chattiness=1.0)
        assert key_value_exact_match(extract_yaml(wrapped), plain) == 1.0


def test_wrap_response_zero_chattiness_is_identity(small_original_problems):
    plain = small_original_problems[0].reference_plain()
    assert P.wrap_response(plain, _rng(), chattiness=0.0) == plain
