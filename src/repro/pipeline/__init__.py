"""Staged evaluation pipeline (query → post-process → score → aggregate).

The paper's system is a pipeline of explicit components; this package
makes each one a typed, pluggable stage connected by an
:class:`EvaluationPipeline` that streams per-record results, checkpoints
partial runs and fans parallelisable work out over an executor — serial,
thread-pool, or the in-process evaluation-cluster runtime that shares its
job/claim/report protocol with the Figure 5 simulation.

Typical use::

    from repro.pipeline import EvaluationPipeline, PipelineCheckpoint
    from repro.llm.interface import GenerationRequest
    from repro.llm.registry import get_model

    pipeline = EvaluationPipeline(
        get_model("gpt-4"),
        executor="cluster",
        max_workers=8,
        checkpoint=PipelineCheckpoint("run.ckpt.jsonl"),
    )
    for record in pipeline.run_iter(
        GenerationRequest(problem=p) for p in dataset
    ):
        print(record.problem_id, record.scores.unit_test)
"""

from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.executors import (
    ClusterExecutor,
    Executor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from repro.pipeline.pipeline import EvaluationPipeline
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.stages import (
    AggregateStage,
    ExtractStage,
    GenerateStage,
    PromptStage,
    ScoreStage,
    Stage,
    StageContext,
    WorkItem,
    default_stages,
)

__all__ = [
    "AggregateStage",
    "ClusterExecutor",
    "EvaluationPipeline",
    "EvaluationRecord",
    "Executor",
    "ExtractStage",
    "GenerateStage",
    "ModelEvaluation",
    "PipelineCheckpoint",
    "PromptStage",
    "ScoreStage",
    "SerialExecutor",
    "Stage",
    "StageContext",
    "ThreadedExecutor",
    "WorkItem",
    "default_stages",
    "resolve_executor",
]
