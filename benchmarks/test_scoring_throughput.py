"""Scoring throughput — the compiled-reference batch engine vs the legacy loop.

The legacy path re-derives every reference artifact (label stripping,
normalisation, tokenisation, n-gram counting, YAML parsing, labeled-tree
construction) on each ``score_answer`` call; the compiled engine computes
them once per problem, parses each candidate exactly once, and dedupes
repeated responses.  This module records both timings so BENCH_*.json
tracks the scoring-performance trajectory, and acts as the regression
guard: batch scoring must never be slower than the legacy loop, and on a
cleanly compiled corpus it must be at least 2x faster.
"""

from __future__ import annotations

import time

from benchmarks.common import FAST_MODE, zero_shot_scoring_pairs
from repro.scoring.aggregate import score_answer_legacy
from repro.scoring.compiled import ReferenceStore, score_batch


def test_scoring_throughput(benchmark):
    pairs = zero_shot_scoring_pairs()

    # Legacy baseline: one fully string-based score_answer call per pair.
    start = time.perf_counter()
    legacy_cards = [score_answer_legacy(problem, response) for problem, response in pairs]
    legacy_seconds = time.perf_counter() - start

    def run_batch():
        return score_batch(pairs, store=ReferenceStore())

    batch_cards = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    batch_seconds = benchmark.stats.stats.mean

    speedup = legacy_seconds / batch_seconds
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["legacy_seconds"] = round(legacy_seconds, 4)
    benchmark.extra_info["speedup_vs_legacy"] = round(speedup, 2)

    print(
        f"\nScoring throughput over {len(pairs)} zero-shot (problem, response) pairs:"
        f"\n  legacy per-call loop : {legacy_seconds:6.2f} s ({len(pairs) / legacy_seconds:7.0f} answers/s)"
        f"\n  compiled score_batch : {batch_seconds:6.2f} s ({len(pairs) / batch_seconds:7.0f} answers/s)"
        f"\n  speedup              : {speedup:5.2f} x"
    )

    # The optimisation must be invisible in the scores themselves.
    assert batch_cards == legacy_cards

    # Regression guard: the batch path must never lose to the legacy loop.
    assert speedup >= 1.0, f"batch scoring slower than legacy loop ({speedup:.2f}x)"
    if not FAST_MODE:
        # Acceptance threshold on the full corpus.
        assert speedup >= 2.0, f"expected >= 2x speedup, measured {speedup:.2f}x"
