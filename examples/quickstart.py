"""Quickstart: evaluate one model on a slice of the CloudEval-YAML dataset.

Run with::

    python examples/quickstart.py

The script builds the dataset, picks a model from the registry, streams
answers for a handful of problems through the staged evaluation pipeline
(prompt -> generate -> extract -> score), and prints a small report.  Swap
``MODEL_NAME`` for any entry of ``repro.available_models()`` — or wire in
a real LLM endpoint by passing any object implementing
:class:`repro.llm.interface.Model`.
"""

from __future__ import annotations

from repro import CloudEvalBenchmark, available_models, build_dataset
from repro.core import BenchmarkConfig
from repro.dataset.schema import Variant

MODEL_NAME = "gpt-4"
PROBLEM_BUDGET = 40


def main() -> None:
    print("Available models:", ", ".join(available_models()))

    print("\nBuilding the dataset (337 originals -> 1011 problems)...")
    dataset = build_dataset()
    originals = list(dataset.by_variant(Variant.ORIGINAL))[:PROBLEM_BUDGET]
    print(f"Evaluating {MODEL_NAME!r} on {len(originals)} original problems.\n")

    benchmark = CloudEvalBenchmark(dataset, BenchmarkConfig())

    # Stream records through the pipeline: results arrive incrementally,
    # which is how a dashboard would watch a long benchmark run progress.
    model, requests = benchmark.requests(MODEL_NAME, problems=originals)
    pipeline = benchmark.pipeline(model)
    records = []
    for record in pipeline.run_iter(requests):
        records.append(record)
        if len(records) % 10 == 0:
            passed = sum(1 for r in records if r.scores.unit_test >= 1.0)
            print(f"  ... {len(records):>3}/{len(requests)} scored, {passed} passing so far")
    evaluation = pipeline.aggregate.finalize(model.name, records)

    scores = evaluation.mean_scores()
    print("Average scores (the six metrics of Table 4):")
    for metric, value in scores.items():
        print(f"  {metric:<14} {value:.3f}")
    print(f"\nUnit-test passes: {evaluation.pass_count()} / {len(originals)}")

    # Show one concrete problem, the model's answer and its score card.
    sample = evaluation.records[0]
    problem = dataset.get(sample.problem_id)
    print("\n--- sample problem ------------------------------------------")
    print(problem.question)
    print("--- model answer (post-processed) ----------------------------")
    print(sample.scores.extracted_yaml.rstrip() or "<empty>")
    print("--- verdict ---------------------------------------------------")
    verdict = "PASSED" if sample.scores.unit_test >= 1.0 else f"FAILED ({sample.scores.failure_message})"
    print(f"unit test: {verdict}")


if __name__ == "__main__":
    main()
