"""Unit-test programs and their executor.

The original benchmark ships a bash script per problem that drives
``kubectl``/``docker`` and prints ``unit_test_passed`` when every check
holds.  Offline we express the same tests as *structured step programs*
(:mod:`repro.testexec.steps`) executed against the simulated substrate
(:mod:`repro.testexec.executor`).  The structure keeps tests machine-
checkable, serialisable with the dataset, and lets the statistics module
report "lines of unit test" the same way the paper does (each step renders
to one or more script lines).
"""

from repro.testexec.executor import UnitTestResult, execute_unit_test
from repro.testexec.steps import (
    ApplyAnswer,
    ApplyManifest,
    AssertDescribeContains,
    AssertEnvoyClusterEndpoints,
    AssertEnvoyClusterLb,
    AssertEnvoyListenerPort,
    AssertEnvoyRoute,
    AssertExists,
    AssertFieldAbsent,
    AssertGatewayServer,
    AssertHostPortReachable,
    AssertIstioDestination,
    AssertIstioLbPolicy,
    AssertIstioSubsetLabels,
    AssertJsonPath,
    AssertPodCount,
    AssertServiceReachable,
    CreateNamespace,
    Step,
    UnitTestProgram,
    WaitFor,
)

__all__ = [
    "ApplyAnswer",
    "ApplyManifest",
    "AssertDescribeContains",
    "AssertEnvoyClusterEndpoints",
    "AssertEnvoyClusterLb",
    "AssertEnvoyListenerPort",
    "AssertEnvoyRoute",
    "AssertExists",
    "AssertFieldAbsent",
    "AssertGatewayServer",
    "AssertHostPortReachable",
    "AssertIstioDestination",
    "AssertIstioLbPolicy",
    "AssertIstioSubsetLabels",
    "AssertJsonPath",
    "AssertPodCount",
    "AssertServiceReachable",
    "CreateNamespace",
    "Step",
    "UnitTestProgram",
    "UnitTestResult",
    "WaitFor",
    "execute_unit_test",
]
