"""Shared retry backoff policy with caps, deterministic jitter and a budget.

Before this module, every retry loop in the library grew its own backoff
by hand: ``RemoteStore`` retried a fixed 0.2s forever-ish (20 attempts at
a constant delay — a reconnect *spin* during a long store outage), and
``LiveEndpointModel`` exponentiated without a cap.  :class:`BackoffPolicy`
is the one place that logic lives now:

* **capped exponential growth** — ``initial_seconds * multiplier**i``,
  clamped to ``max_seconds`` so a long outage doesn't produce hour-long
  sleeps;
* **deterministic jitter** — optional, seeded through
  :class:`~repro.utils.rng.DeterministicRNG` rather than wall-clock
  randomness, so two runs of the same scenario sleep the same schedule
  (jitter exists to de-synchronise *different* retriers, which the seed
  context provides, not to be unpredictable);
* **a retry budget** — ``attempts`` bounds the loop; the caller surfaces
  a typed error (e.g. ``FleetUnavailableError``) when the budget is
  spent instead of hanging forever.

The policy is pure (``delay(i)`` is a function of its arguments) and the
caller owns the actual :func:`time.sleep`, which keeps it trivially
testable and lets tests monkeypatch sleeping without touching policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.utils.rng import DeterministicRNG

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """A capped exponential backoff schedule with a finite attempt budget.

    ``delay(i)`` is the sleep *before* retry ``i`` (0-based): attempt 0 is
    the initial try and charges no delay; retry ``i`` sleeps
    ``min(initial_seconds * multiplier**i, max_seconds)``, widened by up
    to ``jitter`` (a fraction) drawn from a seeded stream keyed by the
    retry index and the caller-supplied context.
    """

    initial_seconds: float = 0.2
    multiplier: float = 2.0
    max_seconds: float = 2.0
    attempts: int = 10
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_seconds < 0:
            raise ValueError("initial_seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff never shrinks)")
        if self.max_seconds < 0:
            raise ValueError("max_seconds must be non-negative")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1 (one initial try)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter is a fraction in [0, 1)")

    def delay(self, retry_index: int, *context: object) -> float:
        """Seconds to sleep before the ``retry_index``-th retry (0-based)."""

        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        base = min(self.initial_seconds * self.multiplier**retry_index, self.max_seconds)
        if base <= 0 or self.jitter <= 0:
            return base
        rng = DeterministicRNG(self.seed).child("backoff", retry_index, *context)
        return base * (1.0 + rng.uniform(-self.jitter, self.jitter))

    def delays(self, *context: object) -> Iterator[float]:
        """The full schedule: one delay per retry within the budget.

        Yields ``attempts - 1`` values (the initial attempt needs none).
        """

        for retry_index in range(self.attempts - 1):
            yield self.delay(retry_index, *context)

    def sleep(
        self,
        retry_index: int,
        *context: object,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> float:
        """Sleep the scheduled delay; returns the seconds slept."""

        seconds = self.delay(retry_index, *context)
        if seconds > 0:
            sleeper(seconds)
        return seconds
