"""Unit-test outcome prediction from cheap scores (Figure 9, §4.4).

The experiment: collect the text-level and YAML-aware scores of thousands
of generated answers from the 12 models, then train a gradient-boosted
tree classifier to predict whether an answer passes the unit test without
running it.  New models are simulated with leave-one-model-out evaluation:
the classifier is trained on the other 11 models and used to predict the
held-out model's unit-test score.  SHAP values over the five input features
explain which cheap metric carries the signal (the paper finds key-value
wildcard match to be the most informative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.benchmark import BenchmarkResult
from repro.mlkit.gbdt import GradientBoostingClassifier
from repro.mlkit.metrics import relative_error
from repro.mlkit.shap import exact_shap_values, mean_abs_shap

__all__ = [
    "FEATURE_NAMES",
    "PredictionOutcome",
    "build_feature_matrix",
    "predict_unit_test_scores",
    "shap_feature_importance",
]

#: Input features, in the order used throughout this module.
FEATURE_NAMES: tuple[str, ...] = ("bleu", "edit_distance", "exact_match", "kv_match", "kv_wildcard")


@dataclass(frozen=True)
class PredictionOutcome:
    """Predicted vs ground-truth unit-test score for one held-out model."""

    model_name: str
    predicted_passes: float
    actual_passes: int
    sample_count: int

    @property
    def error_percent(self) -> float:
        return relative_error(self.predicted_passes, self.actual_passes)


def build_feature_matrix(result: BenchmarkResult, variant: str | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack (features, labels, model indices) over every scored answer."""

    features: list[list[float]] = []
    labels: list[int] = []
    model_indices: list[int] = []
    for model_index, model_name in enumerate(result.models()):
        for record in result[model_name].first_samples():
            if variant is not None and record.variant != variant:
                continue
            features.append(record.scores.text_features())
            labels.append(1 if record.scores.unit_test >= 1.0 else 0)
            model_indices.append(model_index)
    return np.asarray(features, dtype=float), np.asarray(labels, dtype=int), np.asarray(model_indices, dtype=int)


def predict_unit_test_scores(
    result: BenchmarkResult,
    variant: str | None = "original",
    n_estimators: int = 60,
    max_depth: int = 3,
    random_state: int = 0,
) -> list[PredictionOutcome]:
    """Leave-one-model-out prediction of unit-test pass counts (Figure 9a)."""

    X, y, model_indices = build_feature_matrix(result, variant=variant)
    outcomes: list[PredictionOutcome] = []
    for model_index, model_name in enumerate(result.models()):
        held_out = model_indices == model_index
        if not held_out.any() or held_out.all():
            continue
        classifier = GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=max_depth, random_state=random_state
        )
        classifier.fit(X[~held_out], y[~held_out])
        probabilities = classifier.predict_proba(X[held_out])
        outcomes.append(
            PredictionOutcome(
                model_name=model_name,
                predicted_passes=float(probabilities.sum()),
                actual_passes=int(y[held_out].sum()),
                sample_count=int(held_out.sum()),
            )
        )
    return outcomes


def shap_feature_importance(
    result: BenchmarkResult,
    variant: str | None = "original",
    max_samples: int = 400,
    n_estimators: int = 60,
    random_state: int = 0,
) -> dict[str, float]:
    """Mean |SHAP| per feature for a classifier trained on every model (Figure 9b)."""

    X, y, _ = build_feature_matrix(result, variant=variant)
    if len(X) == 0:
        return {name: 0.0 for name in FEATURE_NAMES}
    classifier = GradientBoostingClassifier(n_estimators=n_estimators, max_depth=3, random_state=random_state)
    classifier.fit(X, y)

    # SHAP on a subsample keeps the exact enumeration cheap while remaining
    # representative; the subsample is deterministic.
    rng = np.random.default_rng(random_state)
    if len(X) > max_samples:
        index = rng.choice(len(X), size=max_samples, replace=False)
        X_explain = X[index]
    else:
        X_explain = X
    shap_values = exact_shap_values(classifier.predict_proba, X_explain)
    return mean_abs_shap(shap_values, FEATURE_NAMES)
