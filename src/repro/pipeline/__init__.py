"""Staged evaluation pipeline (query → post-process → score → aggregate).

The paper's system is a pipeline of explicit components; this package
makes each one a typed, pluggable stage connected by an
:class:`EvaluationPipeline` that streams per-record results, checkpoints
partial runs and fans parallelisable work out over an executor — serial,
thread-pool, the in-process evaluation-cluster runtime that shares its
job/claim/report protocol with the Figure 5 simulation, an asyncio
backend with token-bucket rate limiting for remote endpoints, or a
process pool for CPU-bound scoring.

For wall-clock-bound runs, :class:`ShardedEvaluationPipeline` splits the
requests across ``N`` sub-pipelines (one checkpoint file each) and
streams them: generation of shard *k+1* overlaps scoring of shard *k*,
and the merged result is bit-identical to an unsharded run.

Typical use::

    from repro.pipeline import EvaluationPipeline, PipelineCheckpoint
    from repro.llm.interface import GenerationRequest
    from repro.llm.registry import get_model

    pipeline = EvaluationPipeline(
        get_model("gpt-4"),
        executor="cluster",
        max_workers=8,
        checkpoint=PipelineCheckpoint("run.ckpt.jsonl"),
    )
    for record in pipeline.run_iter(
        GenerationRequest(problem=p) for p in dataset
    ):
        print(record.problem_id, record.scores.unit_test)
"""

from repro.pipeline.checkpoint import PipelineCheckpoint, shard_checkpoint_path
from repro.pipeline.executors import (
    AsyncExecutor,
    ClusterExecutor,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    close_executor,
    resolve_executor,
)
from repro.pipeline.pipeline import EvaluationPipeline, PreparedBatch
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.sharding import ShardPlan, ShardedEvaluationPipeline, merge_evaluations
from repro.pipeline.stages import (
    AggregateStage,
    ExtractStage,
    GenerateStage,
    PromptStage,
    ScoreStage,
    Stage,
    StageContext,
    WorkItem,
    default_stages,
)

__all__ = [
    "AggregateStage",
    "AsyncExecutor",
    "ClusterExecutor",
    "EvaluationPipeline",
    "EvaluationRecord",
    "Executor",
    "ExtractStage",
    "GenerateStage",
    "ModelEvaluation",
    "PipelineCheckpoint",
    "PreparedBatch",
    "ProcessExecutor",
    "PromptStage",
    "ScoreStage",
    "SerialExecutor",
    "ShardPlan",
    "ShardedEvaluationPipeline",
    "Stage",
    "StageContext",
    "ThreadedExecutor",
    "WorkItem",
    "close_executor",
    "default_stages",
    "merge_evaluations",
    "resolve_executor",
    "shard_checkpoint_path",
]
