"""Tests for practical data augmentation (simplification and translation)."""

from __future__ import annotations

import pytest

from repro.dataset.augmentation import augment_problem, simplify_question, translate_question
from repro.dataset.schema import Variant
from repro.utils.text import count_words


def test_simplify_shortens_typical_questions():
    question = (
        "Write a YAML file to create a Kubernetes Deployment named \"web\" in the production "
        "namespace. Ensure that the CPU request is set to 100m and the memory request is set to 200Mi."
    )
    simplified = simplify_question(question)
    assert count_words(simplified) < count_words(question)
    assert "k8s" in simplified


def test_simplify_preserves_quoted_names():
    question = 'Create a Service named "payments-service" in the production namespace.'
    simplified = simplify_question(question)
    assert '"payments-service"' in simplified


def test_simplify_is_idempotent_enough_to_stay_short():
    question = "Please write a YAML file that defines firstly a Service and then a Deployment."
    once = simplify_question(question)
    twice = simplify_question(once)
    assert count_words(twice) <= count_words(once)


def test_translate_produces_chinese_text():
    question = "Create a Deployment named \"web\" in the production namespace running nginx."
    translated = translate_question(question)
    assert any("一" <= ch <= "鿿" for ch in translated)


def test_translate_preserves_quoted_and_backtick_segments():
    question = 'Create a ConfigMap named "app-config" with the key `LOG_LEVEL`.'
    translated = translate_question(question)
    assert '"app-config"' in translated
    assert "`LOG_LEVEL`" in translated


def test_augment_problem_produces_two_variants(small_original_problems):
    problem = small_original_problems[0]
    variants = augment_problem(problem)
    assert {v.variant for v in variants} == {Variant.SIMPLIFIED, Variant.TRANSLATED}
    for variant in variants:
        assert variant.base_id == problem.base_id
        assert variant.reference_yaml == problem.reference_yaml
        assert variant.unit_test == problem.unit_test
        assert variant.question != problem.question


def test_augment_problem_rejects_non_original(small_dataset):
    simplified = next(p for p in small_dataset if p.variant is Variant.SIMPLIFIED)
    with pytest.raises(ValueError):
        augment_problem(simplified)


def test_augmented_dataset_reduces_word_count(small_dataset):
    originals = small_dataset.by_variant(Variant.ORIGINAL)
    simplified = small_dataset.by_variant(Variant.SIMPLIFIED)
    original_words = sum(p.question_words() for p in originals)
    simplified_words = sum(p.question_words() for p in simplified)
    assert simplified_words < original_words
