"""Published numbers from the paper, used for comparison and sanity checks.

Benchmarks and EXPERIMENTS.md compare this repository's measured values
against these reference values.  Absolute agreement is not expected (the
substrate is a simulator and the models are calibrated profiles); what must
hold are the qualitative claims — ranking, gaps, trends — which the tests
under ``tests/analysis`` assert.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_FIGURE5_HOURS",
    "PAPER_FIGURE7",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
]

# Table 4: model -> (bleu, edit_distance, exact_match, kv_exact, kv_wildcard, unit_test)
PAPER_TABLE4: dict[str, tuple[float, float, float, float, float, float]] = {
    "gpt-4": (0.629, 0.538, 0.092, 0.198, 0.641, 0.515),
    "gpt-3.5": (0.612, 0.511, 0.075, 0.154, 0.601, 0.412),
    "palm-2-bison": (0.537, 0.432, 0.040, 0.092, 0.506, 0.322),
    "llama-2-70b-chat": (0.355, 0.305, 0.000, 0.020, 0.276, 0.085),
    "llama-2-13b-chat": (0.341, 0.298, 0.000, 0.016, 0.265, 0.067),
    "wizardcoder-34b-v1.0": (0.238, 0.247, 0.007, 0.013, 0.230, 0.056),
    "llama-2-7b-chat": (0.289, 0.231, 0.000, 0.009, 0.177, 0.027),
    "wizardcoder-15b-v1.0": (0.217, 0.255, 0.002, 0.002, 0.226, 0.026),
    "llama-7b": (0.106, 0.058, 0.004, 0.005, 0.069, 0.023),
    "llama-13b-lora": (0.101, 0.054, 0.001, 0.003, 0.065, 0.021),
    "codellama-7b-instruct": (0.154, 0.174, 0.001, 0.001, 0.124, 0.015),
    "codellama-13b-instruct": (0.179, 0.206, 0.002, 0.002, 0.142, 0.012),
}

# Table 5: model -> (original, simplified, translated) unit-test pass counts.
PAPER_TABLE5: dict[str, tuple[int, int, int | None]] = {
    "gpt-4": (179, 164, 178),
    "gpt-3.5": (142, 143, 132),
    "palm-2-bison": (120, 97, None),
    "llama-2-70b-chat": (30, 24, 32),
    "llama-2-13b-chat": (26, 17, 25),
    "wizardcoder-34b-v1.0": (24, 31, 2),
    "llama-2-7b-chat": (13, 9, 5),
    "wizardcoder-15b-v1.0": (12, 11, 3),
    "llama-7b": (12, 7, 4),
    "llama-13b-lora": (8, 9, 4),
    "codellama-7b-instruct": (5, 6, 4),
    "codellama-13b-instruct": (5, 2, 5),
}

# Table 6: model -> pass counts at 0/1/2/3 shots on the original dataset.
PAPER_TABLE6: dict[str, tuple[int, int, int, int]] = {
    "gpt-3.5": (142, 150, 143, 154),
    "llama-2-70b-chat": (30, 23, 26, 29),
    "llama-2-7b-chat": (13, 14, 13, 15),
}

# Figure 5: caching -> {workers: hours} for all 1011 problems.
PAPER_FIGURE5_HOURS: dict[bool, dict[int, float]] = {
    False: {1: 10.4, 4: 4.4, 16: 1.5, 64: 0.80},
    True: {1: 10.3, 4: 4.2, 16: 1.3, 64: 0.50},
}

# Figure 7: model -> counts for categories 1..6 over the 337 original problems.
PAPER_FIGURE7: dict[str, tuple[int, int, int, int, int, int]] = {
    "gpt-4": (8, 1, 42, 30, 77, 179),
    "llama-2-70b-chat": (0, 2, 88, 37, 180, 30),
    "llama-2-7b-chat": (2, 2, 97, 42, 181, 13),
}

# Table 1: variant -> (count, avg words, avg tokens).
PAPER_TABLE1: dict[str, tuple[int, float, float]] = {
    "original": (337, 99.40, 508.9),
    "simplified": (337, 73.86, 402.5),
    "translated": (337, 57.18, 378.5),
}

# Table 3: cost line items in dollars.
PAPER_TABLE3: dict[str, float] = {
    "inference:gpt-3.5": 0.60,
    "inference:llama-7b": 2.90,
    "evaluation:gcp-spot-x1": 0.71,
    "evaluation:gcp-spot-x64": 2.20,
    "evaluation:gcp-standard-x64": 5.51,
    "total:min": 1.31,
    "total:max": 8.41,
}
