"""Cross-process JSONL writer exclusion: the fleet-sharing guarantee.

A fleet of worker processes may share one score cache or calibration
store on a shared filesystem.  The advisory sidecar flock must keep two
processes' appends from interleaving bytes — every line of both writers
lands whole and parseable.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")

LINES_PER_WRITER = 200

_APPEND_SCRIPT = """
import json, sys
from repro.utils.jsonl import JsonlLog

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
log = JsonlLog(path)
for index in range(count):
    # One line per append maximises lock contention: every write races
    # the other process for the sidecar.
    payload = {"writer": tag, "index": index, "padding": tag * 50}
    log.append([json.dumps(payload) + "\\n"])
"""

_CACHE_SCRIPT = """
import sys
from repro.scoring.aggregate import ScoreCard
from repro.scoring.cache import ScoreCache

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = ScoreCache(path)
for index in range(count):
    card = ScoreCard(
        problem_id=f"{tag}-{index}",
        bleu=0.5, edit_distance=0.5, exact_match=0.0,
        kv_exact=0.0, kv_wildcard=0.0, unit_test=1.0,
    )
    cache.put(f"ref-{tag}-{index}", f"ans-{tag}-{index}", card, True)
"""


def _run_writers(script, path, count):
    processes = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(path), tag, str(count)],
            env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
        )
        for tag in ("alpha", "beta")
    ]
    for process in processes:
        assert process.wait(timeout=120) == 0


def test_concurrent_appends_from_two_processes_never_tear(tmp_path):
    path = tmp_path / "shared.jsonl"
    _run_writers(_APPEND_SCRIPT, path, LINES_PER_WRITER)

    entries = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    assert len(entries) == 2 * LINES_PER_WRITER  # nothing torn, nothing lost
    for tag in ("alpha", "beta"):
        indices = [entry["index"] for entry in entries if entry["writer"] == tag]
        assert sorted(indices) == list(range(LINES_PER_WRITER))


def test_concurrent_score_cache_put_batch_from_two_processes(tmp_path):
    """The satellite regression: two processes sharing one ScoreCache file
    write through JsonlLog's lock, and a fresh load sees every entry."""

    from repro.scoring.cache import ScoreCache

    path = tmp_path / "scores.jsonl"
    _run_writers(_CACHE_SCRIPT, path, 50)

    reloaded = ScoreCache(path)
    for tag in ("alpha", "beta"):
        for index in range(50):
            card = reloaded.peek(f"ref-{tag}-{index}", f"ans-{tag}-{index}", True)
            assert card is not None, f"lost entry {tag}-{index}"
            assert card.problem_id == f"{tag}-{index}"
