"""Distributed evaluation fleet: the cluster protocol over a real wire.

Everything the in-process cluster runtime does — job queue, atomic
claims, results hash, leases with re-enqueue-once — already speaks
through the :class:`~repro.evalcluster.kvstore.RedisLikeStore` command
surface.  This module puts that surface on a socket so the *same*
:class:`~repro.evalcluster.master.Master` drives real out-of-process
workers:

* :class:`StoreServer` — a threaded TCP server wrapping one locked
  ``RedisLikeStore``.  Commands travel as length-prefixed pickle frames
  (``send_frame``/``recv_frame``); two blocking extensions, ``blpop``
  and ``claim``, park the connection on a condition variable until a
  push arrives.  ``claim`` pops the next pending job id *and* registers
  the claim in one locked step, so a worker that dies between pop and
  registration cannot orphan a job invisibly.
* :class:`RemoteStore` — the client half: the full store surface as
  methods over one socket, with reconnect-and-retry on connection loss
  (every command is either idempotent or covered by lease recovery).
* :class:`FleetWorker` / ``python -m repro.evalcluster.fleet worker``
  — the worker loop: claim a job id, fetch its pickled payload, run it,
  write the result first-write-wins (``hsetnx``), push a completion
  event.  A heartbeat thread on its *own* connection reports liveness
  plus the job currently executing; on startup the worker warms its
  per-process :class:`~repro.scoring.compiled.ReferenceStore` from the
  problems the executor published.
* :class:`FleetExecutor` — the :class:`~repro.pipeline.executors.Executor`
  backend.  It either self-hosts (in-process server thread + ``N``
  spawned worker subprocesses) or attaches to an external store, and its
  ``map`` runs the coordinator loop: submit payloads + jobs, observe
  claims and heartbeats (stamping leases on the *master's* monotonic
  clock — worker clocks are never compared), reap expired leases through
  :meth:`Master.reap_expired`, and collect results in task order.

Timing flows back with the work: per-record scoring seconds are measured
inside the worker (``run_timed_score_task`` rides along in the pickled
payload), so the master-side pipeline feeds its
:class:`~repro.evalcluster.calibration.CalibrationStore` with true
cross-machine durations and the steal policy sees remote skew live.
Score-cache hits never ship: the score stage resolves them in the parent
process and the fleet — ``requires_picklable_tasks`` like the process
pool — only ever sees miss envelopes.

The protocol trusts its peers (pickle over TCP): bind to localhost or a
private network you control, exactly like an unauthenticated Redis.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

from repro.evalcluster.kvstore import RedisLikeStore
from repro.evalcluster.master import EvaluationJob, Master, MasterStats
from repro.utils.jsonl import JsonlLog

__all__ = [
    "FrameError",
    "StoreCommandError",
    "send_frame",
    "recv_frame",
    "StoreServer",
    "RemoteStore",
    "FleetWorker",
    "FleetExecutor",
    "run_worker",
    "main",
]

T = TypeVar("T")
R = TypeVar("R")

#: Hash of in-flight claims: job id -> (worker id, claim sequence number).
CLAIMS_KEY = "jobs:claims"
#: Completion events the coordinator blocks on (list of finished job ids).
DONE_KEY = "jobs:done"
#: Heartbeat hash: worker id -> (sequence number, job id being executed).
HEARTBEATS_KEY = "workers:heartbeat"
#: Workers exit their claim loop when this key becomes truthy.
STOP_KEY = "fleet:stop"
#: Pickled problem tuple workers warm their reference store from.
WARMUP_KEY = "fleet:warmup"

#: Job payloads are stored per job under this prefix as pickled bytes the
#: server never unpickles — only the claiming worker does.
_PAYLOAD_PREFIX = "jobs:payload:"

_HEADER = struct.Struct(">I")

#: Upper bound on one frame; anything larger is protocol corruption, not
#: data (a full-corpus payload is tens of kilobytes).
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(ConnectionError):
    """The wire produced a torn or malformed frame."""


class StoreCommandError(RuntimeError):
    """The server executed the command and it raised."""


#: Sentinel :func:`recv_frame` returns on a clean end-of-stream (the peer
#: closed exactly on a frame boundary) — distinct from a frame carrying None.
_EOF = object()


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Write one length-prefixed pickle frame."""

    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; None on clean EOF *before* any byte,
    :class:`FrameError` on EOF after some bytes (a torn frame)."""

    buffer = bytearray()
    while len(buffer) < size:
        chunk = sock.recv(size - len(buffer))
        if not chunk:
            if not buffer:
                return None
            raise FrameError(f"connection closed mid-frame ({len(buffer)}/{size} bytes)")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; the module-private EOF sentinel on clean close.

    A peer that disappears half-way through a frame — the header without
    its payload, or a short payload — raises :class:`FrameError`: the
    fragment is torn, never delivered as data.
    """

    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return _EOF
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame header announces {length} bytes (cap {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between frame header and payload")
    return pickle.loads(payload)


class StoreServer:
    """Serve one :class:`RedisLikeStore` to many connections over TCP.

    Every connection gets its own handler thread; commands execute under
    one lock, so multi-step commands (``claim``) are atomic exactly as a
    single-threaded Redis would make them.  ``blpop`` and ``claim`` park
    their connection on a condition variable notified by every ``rpush``,
    so blocked workers wake the instant work arrives instead of polling.

    A torn frame (a worker killed mid-write, a reset) drops only that
    connection; the store and every other connection keep serving.
    """

    #: Plain store commands forwarded verbatim under the lock.
    _COMMANDS = frozenset(
        {
            "set",
            "get",
            "incr",
            "delete",
            "hset",
            "hget",
            "hgetall",
            "hlen",
            "hsetnx",
            "hdel",
            "rpush",
            "lpop",
            "llen",
            "lrange",
            "keys",
        }
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store: RedisLikeStore | None = None,
    ) -> None:
        self.store = store or RedisLikeStore()
        self._lock = threading.RLock()
        self._pushed = threading.Condition(self._lock)
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closing = threading.Event()
        self._accept_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "StoreServer":
        """Begin accepting connections on a background thread."""

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-store-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                connection, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="fleet-store-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._closing.is_set():
                try:
                    frame = recv_frame(connection)
                except (FrameError, OSError):
                    return  # torn frame or reset: this connection only
                if frame is _EOF:
                    return
                try:
                    response: tuple[str, Any] = ("ok", self._execute(frame))
                except Exception as exc:  # noqa: BLE001 - relayed to the client
                    response = ("err", f"{type(exc).__name__}: {exc}")
                try:
                    send_frame(connection, response)
                except OSError:
                    return

    def _execute(self, frame: Any) -> Any:
        if not isinstance(frame, tuple) or not frame or not isinstance(frame[0], str):
            raise ValueError("malformed command frame")
        command, *args = frame
        if command == "ping":
            return "pong"
        if command == "blpop":
            return self._blpop(*args)
        if command == "claim":
            return self._claim(*args)
        if command not in self._COMMANDS:
            raise ValueError(f"unknown command {command!r}")
        with self._lock:
            result = getattr(self.store, command)(*args)
            if command == "rpush":
                self._pushed.notify_all()
            return result

    def _blpop(self, key: str, timeout: float) -> Any:
        """Blocking left-pop: wait up to ``timeout`` seconds for an item."""

        deadline = time.monotonic() + timeout
        with self._pushed:
            while True:
                value = self.store.lpop(key)
                if value is not None:
                    return value
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closing.is_set():
                    return None
                self._pushed.wait(remaining)

    def _claim(self, queue_key: str, claims_key: str, worker_id: str, timeout: float) -> Any:
        """Atomically pop the next job id *and* register who claimed it.

        Pop and registration happen under one lock: there is no instant
        at which a job has left the queue without its claim being
        visible, so a worker killed right after claiming is always
        discoverable by the lease reaper.  The claim value carries a
        server-wide sequence number so a re-claim of a re-enqueued job is
        distinguishable from the stale original.
        """

        deadline = time.monotonic() + timeout
        with self._pushed:
            while True:
                job_id = self.store.lpop(queue_key)
                if job_id is not None:
                    sequence = self.store.incr("fleet:claim-seq")
                    self.store.hset(claims_key, job_id, (worker_id, sequence))
                    return job_id
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closing.is_set():
                    return None
                self._pushed.wait(remaining)

    def close(self) -> None:
        """Stop accepting and wake every parked waiter."""

        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pushed:
            self._pushed.notify_all()

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteStore:
    """The store surface over one socket, with reconnect-and-resume.

    Implements every :class:`RedisLikeStore` method (so a
    :class:`~repro.evalcluster.master.Master` runs against it unmodified)
    plus the two blocking commands.  A lost connection is re-dialled with
    backoff and the command retried: every command here is either
    idempotent (``set``/``hset``/``hgetall``/…), first-write-wins by
    construction (``hsetnx``), or — for ``claim`` — covered by lease
    recovery: a claim that succeeded server-side but whose reply was lost
    is never heartbeat-renewed (the worker executes a different job), so
    its lease expires and the job is re-enqueued once.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 30.0,
        reconnect_attempts: int = 20,
        reconnect_delay: float = 0.2,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    # -- wire ---------------------------------------------------------------
    def _dial(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def call(self, command: str, *args: Any, wait: float = 0.0) -> Any:
        """Execute one command, reconnecting on connection loss.

        ``wait`` is how long the *server* may legitimately sit on the
        command (blocking pops); it widens the socket timeout so patience
        is not mistaken for a dead peer.
        """

        last_error: Exception | None = None
        with self._lock:
            for _attempt in range(self.reconnect_attempts + 1):
                if self._sock is None:
                    try:
                        self._sock = self._dial()
                    except OSError as exc:
                        last_error = exc
                        time.sleep(self.reconnect_delay)
                        continue
                try:
                    self._sock.settimeout(self.timeout + wait)
                    send_frame(self._sock, (command, *args))
                    reply = recv_frame(self._sock)
                except (OSError, FrameError, EOFError, pickle.UnpicklingError) as exc:
                    last_error = exc
                    self._drop()
                    time.sleep(self.reconnect_delay)
                    continue
                if reply is _EOF:
                    last_error = ConnectionError("server closed the connection")
                    self._drop()
                    time.sleep(self.reconnect_delay)
                    continue
                status, payload = reply
                if status == "err":
                    raise StoreCommandError(payload)
                return payload
        raise ConnectionError(
            f"lost connection to fleet store at {self.address[0]}:{self.address[1]}: {last_error}"
        )

    def close(self) -> None:
        with self._lock:
            self._drop()

    # -- the RedisLikeStore surface -----------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.call("set", key, value)

    def get(self, key: str, default: Any = None) -> Any:
        value = self.call("get", key)
        return default if value is None else value

    def incr(self, key: str, amount: int = 1) -> int:
        return self.call("incr", key, amount)

    def delete(self, key: str) -> None:
        self.call("delete", key)

    def hset(self, key: str, field: str, value: Any) -> None:
        self.call("hset", key, field, value)

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        value = self.call("hget", key, field)
        return default if value is None else value

    def hgetall(self, key: str) -> dict[str, Any]:
        return self.call("hgetall", key)

    def hlen(self, key: str) -> int:
        return self.call("hlen", key)

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        return self.call("hsetnx", key, field, value)

    def hdel(self, key: str, field: str) -> bool:
        return self.call("hdel", key, field)

    def rpush(self, key: str, *values: Any) -> int:
        return self.call("rpush", key, *values)

    def lpop(self, key: str) -> Any:
        return self.call("lpop", key)

    def llen(self, key: str) -> int:
        return self.call("llen", key)

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        return self.call("lrange", key, start, stop)

    def keys(self) -> list[str]:
        return self.call("keys")

    # -- blocking extensions -------------------------------------------------
    def ping(self) -> str:
        return self.call("ping")

    def blpop(self, key: str, timeout: float) -> Any:
        return self.call("blpop", key, timeout, wait=timeout)

    def claim(self, queue_key: str, claims_key: str, worker_id: str, timeout: float) -> Any:
        return self.call("claim", queue_key, claims_key, worker_id, timeout, wait=timeout)


class FleetWorker:
    """One out-of-process worker: claim, execute, report, repeat.

    The loop claims job ids through the server's atomic ``claim``,
    unpickles the job's ``(function, tasks)`` payload, applies the
    function to every task in the chunk, and writes the result list
    first-write-wins — a job a slow worker finishes *after* its lease
    was re-assigned cannot overwrite the authoritative result.
    Results are followed by a completion event on ``jobs:done`` so the
    coordinator never polls the results hash.

    A daemon heartbeat thread on a second connection publishes
    ``(sequence, current job id)`` every ``heartbeat_seconds``; the
    coordinator renews exactly the named job's lease, on its own clock.
    Losing the store connection mid-run is survivable on both
    connections: :meth:`RemoteStore.call` re-dials and resumes.

    ``die_after_claims`` is the fault-injection hook the kill tests use:
    the worker SIGKILLs itself immediately after its Nth successful claim
    — after the claim is registered, before any execution or report — the
    exact window lease reaping exists for.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker_id: str | None = None,
        heartbeat_seconds: float = 1.0,
        claim_timeout: float = 0.5,
        die_after_claims: int | None = None,
    ) -> None:
        self.store = RemoteStore(address)
        self.beat_store = RemoteStore(address)
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.heartbeat_seconds = heartbeat_seconds
        self.claim_timeout = claim_timeout
        self.die_after_claims = die_after_claims
        self._job_lock = threading.Lock()
        self._current_job: str | None = None
        self._beat_sequence = 0

    def _warm(self) -> None:
        payload = self.store.get(WARMUP_KEY)
        if payload is None:
            return
        from repro.scoring.compiled import warm_reference_store

        warm_reference_store(pickle.loads(payload))

    def _beat_once(self) -> None:
        self._beat_sequence += 1
        with self._job_lock:
            current = self._current_job
        try:
            self.beat_store.hset(HEARTBEATS_KEY, self.worker_id, (self._beat_sequence, current))
        except (ConnectionError, StoreCommandError):
            pass  # a fully lost store ends the claim loop anyway

    def _beat_loop(self, stop: threading.Event) -> None:
        while not stop.is_set():
            self._beat_once()
            stop.wait(self.heartbeat_seconds)

    def _execute(self, job_id: str) -> None:
        with self._job_lock:
            self._current_job = job_id
        try:
            payload = self.store.get(_PAYLOAD_PREFIX + job_id)
            if payload is None:
                return  # stale re-enqueue of an already-collected job
            try:
                function, tasks = pickle.loads(payload)
                result = [function(task) for task in tasks]
                row = {
                    "worker": self.worker_id,
                    "finished_at": time.time(),
                    "passed": True,
                    "result": result,
                }
            except Exception as exc:  # noqa: BLE001 - failures are results
                row = {
                    "worker": self.worker_id,
                    "finished_at": time.time(),
                    "passed": False,
                    "result": f"{type(exc).__name__}: {exc}",
                }
            self.store.hsetnx(Master.RESULTS_KEY, job_id, row)
            self.store.rpush(DONE_KEY, job_id)
        finally:
            with self._job_lock:
                self._current_job = None

    def run(self) -> None:
        """Claim and execute jobs until the stop flag is raised."""

        self._warm()
        self._beat_once()
        stop = threading.Event()
        threading.Thread(
            target=self._beat_loop, args=(stop,), name="fleet-heartbeat", daemon=True
        ).start()
        claims = 0
        try:
            while True:
                job_id = self.store.claim(
                    Master.QUEUE_KEY, CLAIMS_KEY, self.worker_id, self.claim_timeout
                )
                if job_id is None:
                    if self.store.get(STOP_KEY):
                        return
                    continue
                claims += 1
                if self.die_after_claims is not None and claims >= self.die_after_claims:
                    # Fault injection: vanish as a power cut would — claim
                    # registered, no report, no further heartbeats.
                    os.kill(os.getpid(), signal.SIGKILL)
                self._execute(job_id)
        finally:
            stop.set()
            self.store.close()
            self.beat_store.close()


def run_worker(
    address: tuple[str, int],
    worker_id: str | None = None,
    heartbeat_seconds: float = 1.0,
    claim_timeout: float = 0.5,
    die_after_claims: int | None = None,
) -> None:
    """Module-level worker entry (importable for ``multiprocessing``)."""

    FleetWorker(
        address,
        worker_id=worker_id,
        heartbeat_seconds=heartbeat_seconds,
        claim_timeout=claim_timeout,
        die_after_claims=die_after_claims,
    ).run()


class FleetExecutor:
    """Ordered map over picklable tasks executed by out-of-process workers.

    Two deployment shapes:

    * **Self-hosted** (``num_workers=N``): the first ``map`` starts an
      in-process :class:`StoreServer` on an ephemeral port and spawns
      ``N`` worker subprocesses (``python -m repro.evalcluster.fleet
      worker``); ``close()`` raises the stop flag and reaps them.
    * **Attached** (``address=(host, port)``): an external store is
      already serving and workers were started by hand (possibly on
      other machines); ``close()`` leaves both alone.

    ``map`` submits tasks in contiguous *chunks* — one fleet job carries
    ``chunk_size`` tasks (auto-sized to roughly four jobs per worker, the
    same amortisation :class:`~repro.pipeline.executors.ProcessExecutor`
    uses) so the handful of store round-trips a job costs is paid once
    per chunk, not once per task.  Then a loop
    blocks on completion events while observing claims and heartbeats —
    every lease is stamped and renewed on *this* process's monotonic
    clock at the moment the observation arrives, so worker clock skew
    cannot corrupt lease arithmetic — and reaps expired leases through
    the master's re-enqueue-once protocol.  A job abandoned twice
    surfaces as a raised error, exactly like the in-process cluster
    backend.  Results return in task order; identical inputs produce
    identical ScoreCards regardless of which worker ran them, so the
    fleet is bit-identical to the serial backend.

    ``event_log`` (a JSONL path) records submit/claim/done/requeue/
    abandon events for run forensics; the CI benchmark uploads it.
    """

    name = "fleet"
    #: The score stage switches to picklable task envelopes for this backend.
    requires_picklable_tasks = True

    def __init__(
        self,
        num_workers: int | None = None,
        address: tuple[str, int] | None = None,
        lease_seconds: float | None = 30.0,
        heartbeat_seconds: float | None = None,
        claim_timeout: float = 0.5,
        poll_seconds: float = 0.05,
        chunk_size: int | None = None,
        event_log: str | os.PathLike[str] | None = None,
    ) -> None:
        if (num_workers is None) == (address is None):
            raise ValueError(
                "pass exactly one of num_workers (self-hosted fleet) or address (attach)"
            )
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.num_workers = num_workers
        self.address = (address[0], int(address[1])) if address is not None else None
        self.lease_seconds = lease_seconds
        if heartbeat_seconds is None:
            heartbeat_seconds = (lease_seconds / 4.0) if lease_seconds is not None else 1.0
        self.heartbeat_seconds = heartbeat_seconds
        self.claim_timeout = claim_timeout
        self.poll_seconds = poll_seconds
        self.chunk_size = chunk_size
        self._events = JsonlLog(event_log) if event_log is not None else None
        self._event_buffer: list[str] = []
        self._epoch = time.monotonic()
        self._lock = threading.RLock()
        self._server: StoreServer | None = None
        self._store: RemoteStore | None = None
        self._master: Master | None = None
        self._procs: list[subprocess.Popen[bytes]] = []
        self._warm_problems: tuple[Any, ...] | None = None
        self._job_counter = 0
        self._job_prefix = f"job-{os.getpid()}"
        self._seen_claims: dict[str, Any] = {}
        self._seen_beats: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------
    def warm(self, problems: Sequence[Any]) -> "FleetExecutor":
        """Precompile ``problems``' references in every worker process.

        Must be called before the first ``map`` (workers read the warmup
        key at startup); returns self for chaining.
        """

        if self._store is not None:
            raise RuntimeError("warm() must be called before the first map()")
        self._warm_problems = tuple(problems)
        return self

    def _ensure_started(self) -> None:
        if self._store is not None:
            return
        if self.address is None:
            self._server = StoreServer().start()
            connect = self._server.address
        else:
            connect = self.address
        store = RemoteStore(connect)
        store.ping()  # fail fast when attaching to nothing
        if self._warm_problems is not None:
            store.set(
                WARMUP_KEY,
                pickle.dumps(self._warm_problems, protocol=pickle.HIGHEST_PROTOCOL),
            )
        self._store = store
        self._master = Master(store=store, lease_seconds=self.lease_seconds)
        if self.num_workers is not None:
            host, port = connect
            src_root = str(Path(__file__).resolve().parents[2])
            env = dict(os.environ)
            env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
            for index in range(self.num_workers):
                self._procs.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.evalcluster.fleet",
                            "worker",
                            "--connect",
                            f"{host}:{port}",
                            "--worker-id",
                            f"worker-{os.getpid()}-{index}",
                            "--heartbeat",
                            str(self.heartbeat_seconds),
                            "--claim-timeout",
                            str(self.claim_timeout),
                        ],
                        env=env,
                    )
                )
                self._log_event("spawn", worker=f"worker-{os.getpid()}-{index}")

    def close(self) -> None:
        """Stop managed workers and the self-hosted server, flush events."""

        with self._lock:
            if self._procs and self._store is not None:
                try:
                    self._store.set(STOP_KEY, True)
                except ConnectionError:
                    pass
            for proc in self._procs:
                try:
                    proc.wait(timeout=2.0 + 4.0 * self.claim_timeout)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            self._procs = []
            if self._server is not None:
                self._server.close()
                self._server = None
            if self._store is not None:
                self._store.close()
                self._store = None
            self._master = None
            self._seen_claims.clear()
            self._seen_beats.clear()
            self._flush_events()

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -------------------------------------------------------
    def stats(self) -> MasterStats | None:
        """The master's queue/fleet snapshot (None before the first map)."""

        with self._lock:
            if self._master is None:
                return None
            return self._master.stats(time.monotonic())

    def _log_event(self, event: str, **fields: Any) -> None:
        if self._events is None:
            return
        payload = {"event": event, "t": round(time.monotonic() - self._epoch, 6), **fields}
        self._event_buffer.append(json.dumps(payload, sort_keys=True) + "\n")

    def _flush_events(self) -> None:
        if self._events is None or not self._event_buffer:
            return
        self._events.append(self._event_buffer)
        self._event_buffer = []

    # -- the executor protocol ----------------------------------------------
    def _chunk_size_for(self, task_count: int) -> int:
        """Tasks per job: explicit override, else ~4 jobs per worker.

        In attach mode the fleet size is whatever has heartbeated so far
        (workers beat once before their first claim); an empty roster —
        workers still booting — falls back to single-task jobs, which is
        always correct, just less amortised.
        """

        if self.chunk_size is not None:
            return self.chunk_size
        if self.num_workers is not None:
            fleet_size = self.num_workers
        else:
            assert self._store is not None
            fleet_size = self._store.hlen(HEARTBEATS_KEY)
            if fleet_size < 1:
                return 1
        return max(1, task_count // (fleet_size * 4))

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        with self._lock:
            self._ensure_started()
            assert self._store is not None and self._master is not None
            size = self._chunk_size_for(len(tasks))
            chunks = [tasks[start : start + size] for start in range(0, len(tasks), size)]
            jobs: list[EvaluationJob] = []
            job_ids: list[str] = []
            for chunk in chunks:
                self._job_counter += 1
                job_id = f"{self._job_prefix}-{self._job_counter:08d}"
                job_ids.append(job_id)
                problem = getattr(chunk[0], "problem", None)
                problem_id = (
                    getattr(chunk[0], "problem_id", None)
                    or getattr(problem, "problem_id", None)
                    or job_id
                )
                self._store.set(
                    _PAYLOAD_PREFIX + job_id,
                    pickle.dumps((fn, chunk), protocol=pickle.HIGHEST_PROTOCOL),
                )
                jobs.append(EvaluationJob(job_id=job_id, problem_id=problem_id))
            # Payloads are durably in the store before any id is queued, so
            # no worker can ever claim an id whose payload is not there yet.
            self._master.submit(jobs)
            self._log_event("submit", count=len(jobs), tasks=len(tasks), chunk=size)
            rows = self._drive(set(job_ids))
            self._flush_events()
        results: list[R] = []
        for job_id in job_ids:
            row = rows[job_id]
            if not row["passed"]:
                raise RuntimeError(f"fleet job {job_id} failed: {row['result']}")
            results.extend(row["result"])
        return results

    # -- the coordinator loop ------------------------------------------------
    def _drive(self, outstanding: set[str]) -> dict[str, dict[str, Any]]:
        """Block until every outstanding job has a result row.

        One loop: drain completion events (the hot path), and — at most
        once per poll interval — observe claims and heartbeats, reap
        expired leases, and verify the managed workers still exist.
        """

        assert self._store is not None and self._master is not None
        rows: dict[str, dict[str, Any]] = {}
        last_sync = -1.0
        while outstanding:
            job_id = self._store.blpop(DONE_KEY, self.poll_seconds)
            now = time.monotonic()
            if job_id is not None and job_id in outstanding:
                row = self._store.hget(Master.RESULTS_KEY, job_id)
                if row is not None:
                    self._collect(job_id, row, rows, outstanding)
            if now - last_sync >= self.poll_seconds:
                last_sync = now
                self._sync_claims(now, outstanding)
                self._sync_heartbeats(now)
                self._reap(now, rows, outstanding)
                self._check_workers(outstanding)
        # One last observation pass: a short map can drain entirely within a
        # single sync window, and stats()/the leaderboard footer should still
        # see every worker that participated.
        self._sync_heartbeats(time.monotonic())
        return rows

    def _collect(
        self,
        job_id: str,
        row: dict[str, Any],
        rows: dict[str, dict[str, Any]],
        outstanding: set[str],
    ) -> None:
        assert self._store is not None and self._master is not None
        rows[job_id] = row
        outstanding.discard(job_id)
        self._master.note_completed(job_id)
        self._store.hdel(CLAIMS_KEY, job_id)
        self._seen_claims.pop(job_id, None)
        self._store.delete(_PAYLOAD_PREFIX + job_id)
        self._log_event("done", job=job_id, worker=row.get("worker"), passed=row.get("passed"))

    def _sync_claims(self, now: float, outstanding: set[str]) -> None:
        assert self._store is not None and self._master is not None
        for job_id, value in self._store.hgetall(CLAIMS_KEY).items():
            if job_id not in outstanding or self._seen_claims.get(job_id) == value:
                continue
            self._seen_claims[job_id] = value
            worker_id, _sequence = value
            self._master.note_claim(job_id, worker_id, now)
            self._log_event("claim", job=job_id, worker=worker_id)

    def _sync_heartbeats(self, now: float) -> None:
        assert self._store is not None and self._master is not None
        for worker_id, value in self._store.hgetall(HEARTBEATS_KEY).items():
            sequence, current_job = value
            if self._seen_beats.get(worker_id) == sequence:
                continue  # no fresh beat: do NOT renew from a stale value
            self._seen_beats[worker_id] = sequence
            self._master.record_heartbeat(
                worker_id, now, jobs=(current_job,) if current_job is not None else ()
            )

    def _reap(self, now: float, rows: dict[str, dict[str, Any]], outstanding: set[str]) -> None:
        assert self._store is not None and self._master is not None
        if self.lease_seconds is None:
            return
        expiry = self._master.next_lease_expiry()
        if expiry is None or now < expiry:
            return
        requeued = self._master.reap_expired(now)
        for job_id in requeued:
            self._store.hdel(CLAIMS_KEY, job_id)
            self._seen_claims.pop(job_id, None)
            self._log_event("requeue", job=job_id)
        # A job reaped twice was reported failed by the master itself; no
        # completion event will ever arrive for it, so collect it here.
        for job_id in self._master.abandoned_jobs() & outstanding:
            row = self._store.hget(Master.RESULTS_KEY, job_id)
            if row is not None:
                self._collect(job_id, row, rows, outstanding)
                self._log_event("abandon", job=job_id)

    def _check_workers(self, outstanding: set[str]) -> None:
        """Self-hosted mode: fail fast when every worker process is gone.

        In attach mode the coordinator cannot know the fleet's size, so it
        keeps waiting — leases still requeue work for whoever shows up.
        """

        if not self._procs:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        raise RuntimeError(
            f"all {len(self._procs)} fleet worker processes exited with "
            f"{len(outstanding)} jobs outstanding"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``fleet store`` serves a store, ``fleet worker`` joins a fleet."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.evalcluster.fleet",
        description="Run a fleet store server or a fleet worker.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    store_cmd = commands.add_parser("store", help="serve a RedisLikeStore over TCP")
    store_cmd.add_argument("--host", default="127.0.0.1")
    store_cmd.add_argument("--port", type=int, default=6399)

    worker_cmd = commands.add_parser("worker", help="claim and execute jobs from a store")
    worker_cmd.add_argument("--connect", required=True, metavar="HOST:PORT")
    worker_cmd.add_argument("--worker-id", default=None)
    worker_cmd.add_argument("--heartbeat", type=float, default=1.0)
    worker_cmd.add_argument("--claim-timeout", type=float, default=0.5)
    worker_cmd.add_argument(
        "--die-after-claims",
        type=int,
        default=None,
        help="fault injection: SIGKILL self right after the Nth claim",
    )

    args = parser.parse_args(argv)
    if args.command == "store":
        server = StoreServer(host=args.host, port=args.port).start()
        print(f"fleet store serving on {server.host}:{server.port}", flush=True)
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            server.close()
        return 0

    host, _, port = args.connect.rpartition(":")
    run_worker(
        (host, int(port)),
        worker_id=args.worker_id,
        heartbeat_seconds=args.heartbeat,
        claim_timeout=args.claim_timeout,
        die_after_claims=args.die_after_claims,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
