"""Calibration-aware batch sizing: equal predicted seconds, same records."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest
from repro.pipeline.planner import BatchSizer

MODEL = "gpt-3.5"


@pytest.fixture(scope="module")
def requests(small_dataset):
    return [
        GenerationRequest(problem=problem, shots=0, sample_index=0)
        for problem in list(small_dataset)[:48]
    ]


class TestCut:
    def test_batches_are_contiguous_and_cover_everything(self, requests):
        sizer = BatchSizer(batch_size=8)
        batches = sizer.cut(requests)
        assert [request for batch in batches for request in batch] == requests
        assert all(batches)

    def test_never_more_batches_than_fixed_slicing(self, requests):
        for batch_size in (1, 5, 8, 32, 100):
            sizer = BatchSizer(batch_size=batch_size)
            fixed_count = -(-len(requests) // batch_size)
            assert 1 <= len(sizer.cut(requests)) <= fixed_count

    def test_predicted_spread_no_worse_than_fixed_counts(self, requests):
        sizer = BatchSizer(batch_size=8)
        batches = sizer.cut(requests)
        fixed = [requests[start : start + 8] for start in range(0, len(requests), 8)]
        cost_spread = _spread(sizer.predicted_seconds(batches))
        fixed_spread = _spread(sizer.predicted_seconds(fixed))
        assert cost_spread <= fixed_spread

    def test_empty_and_tiny_inputs(self, requests):
        sizer = BatchSizer(batch_size=8)
        assert sizer.cut([]) == []
        assert sizer.cut(requests[:3]) == [requests[:3]]

    def test_degenerate_zero_cost_model_falls_back_to_fixed_slices(self, requests):
        class FreeModel(CostModel):
            def predict_base_seconds(self, problem):
                return 0.0

            def problem_charge_images(self, problem):
                return ()

            def problem_pull_images(self, problem):
                return ()

        sizer = BatchSizer(cost_model=FreeModel(), batch_size=8)
        batches = sizer.cut(requests)
        assert [len(batch) for batch in batches] == [
            len(requests[start : start + 8]) for start in range(0, len(requests), 8)
        ]

    def test_rejects_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchSizer(batch_size=0)


def _spread(seconds):
    return max(seconds) - min(seconds)


class TestEquivalence:
    def test_cost_batching_records_identical_to_count_batching(self, small_dataset):
        problems = list(small_dataset)[:24]
        count = CloudEvalBenchmark(
            small_dataset, BenchmarkConfig(seed=7, shards=2, batch_size=6)
        ).evaluate_model(MODEL, problems=problems)
        cost = CloudEvalBenchmark(
            small_dataset, BenchmarkConfig(seed=7, shards=2, batch_size=6, batch_by="cost")
        ).evaluate_model(MODEL, problems=problems)
        assert count.records == cost.records

    def test_config_rejects_unknown_batch_by(self):
        with pytest.raises(ValueError, match="batch_by"):
            BenchmarkConfig(batch_by="alphabetical")
