"""The CloudEval-YAML benchmark driver.

``CloudEvalBenchmark`` is a thin convenience layer over the staged
evaluation pipeline (:mod:`repro.pipeline`): for every requested model it
builds the generation requests, assembles an
:class:`~repro.pipeline.pipeline.EvaluationPipeline` (prompt → generate →
extract → score) and aggregates the streamed records into per-model and
per-benchmark summaries that the analysis layer turns into the paper's
tables and figures.  ``evaluate_models`` runs the whole leaderboard
through the :class:`~repro.pipeline.scheduler.MultiModelScheduler` —
every model's shards interleaved over one shared generation executor and
one shared scoring pool — and is bit-identical to sequential
``evaluate_model`` calls.  The ScoreCard output is unchanged from the
pre-pipeline driver.

:class:`EvaluationRecord` and :class:`ModelEvaluation` live in
:mod:`repro.pipeline.records` and are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import os

from repro.core.config import BenchmarkConfig
from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Variant
from repro.evalcluster.calibration import (
    CalibratedCostModel,
    CalibrationStore,
    resolve_calibration,
)
from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest, Model
from repro.llm.registry import ENGLISH_ONLY_MODELS, available_models, calibrate_models, get_model
from repro.llm.remote import ModelSpec
from repro.llm.simulated import SimulatedModel
from repro.pipeline.checkpoint import PipelineCheckpoint, model_checkpoint_base
from repro.pipeline.pipeline import EvaluationPipeline
from repro.pipeline.planner import BatchSizer, ShardPlanner, resolve_planner
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.scheduler import ModelJob, MultiModelScheduler
from repro.pipeline.sharding import ShardedEvaluationPipeline
from repro.scoring.cache import ScoreCache, resolve_score_cache
from repro.scoring.compiled import ReferenceStore

__all__ = ["EvaluationRecord", "ModelEvaluation", "BenchmarkResult", "CloudEvalBenchmark"]


@dataclass
class BenchmarkResult:
    """Results of evaluating several models on the same dataset."""

    evaluations: dict[str, ModelEvaluation] = field(default_factory=dict)

    def models(self) -> list[str]:
        return list(self.evaluations)

    def __getitem__(self, model_name: str) -> ModelEvaluation:
        return self.evaluations[model_name]

    def leaderboard(self) -> list[tuple[str, dict[str, float]]]:
        """(model, mean scores) rows sorted by descending unit-test score.

        Ties break deterministically on the model name, so a leaderboard
        rendered from the same evaluations is stable across runs and
        across the sequential/interleaved evaluation paths.
        """

        rows = [(name, evaluation.mean_scores()) for name, evaluation in self.evaluations.items()]
        return sorted(rows, key=lambda row: (-row[1]["unit_test"], row[0]))

    def all_records(self) -> list[EvaluationRecord]:
        return [record for evaluation in self.evaluations.values() for record in evaluation.records]


class CloudEvalBenchmark:
    """End-to-end benchmark runner over a :class:`ProblemSet`."""

    def __init__(self, dataset: ProblemSet, config: BenchmarkConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or BenchmarkConfig()
        # Compiled references are shared across every model evaluated by
        # this benchmark: each problem's reference is parsed exactly once.
        self._references = ReferenceStore()
        # One calibration store per benchmark: every run's measured
        # durations accumulate in it, and every cost model predicts from it.
        self._calibration = resolve_calibration(self.config.calibration)
        # One score cache per benchmark: every model's pipelines look up and
        # write back through the same content-addressed store.
        self._score_cache = resolve_score_cache(self.config.score_cache)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def calibration_store(self) -> CalibrationStore | None:
        """The store measured durations flow into (None when disabled)."""

        return self._calibration

    def score_cache(self) -> ScoreCache | None:
        """The shared content-addressed score cache (None when disabled)."""

        return self._score_cache

    def cost_model(self) -> CostModel:
        """The Figure 5 / Table 3 cost model over this benchmark's dataset.

        With ``config.calibration`` set this is a
        :class:`~repro.evalcluster.calibration.CalibratedCostModel` whose
        predictions blend the store's observed durations toward the
        Figure 5 prior — the planner and the stealing scheduler then cut
        and steal on what previous runs actually measured.
        """

        if self._calibration is not None:
            return CalibratedCostModel(
                self.dataset,
                store=self._calibration,
                prior_weight=self.config.calibration_prior_weight,
            )
        return CostModel(self.dataset)

    def planner(self) -> ShardPlanner:
        """The shard planner the configuration selects.

        An explicit ``config.planner`` wins; otherwise ``shard_by``
        chooses count balance or predicted-cost balance seeded with this
        benchmark's cost model.
        """

        return resolve_planner(
            self.config.planner, self.config.shard_by, cost_model=self.cost_model()
        )

    def batch_sizer(self) -> BatchSizer | None:
        """The calibration-aware batch sizer, or None under fixed counts.

        With ``config.batch_by == "cost"`` the scheduler's batch cuts
        land on roughly equal *predicted seconds* (the calibrated
        predictions when ``config.calibration`` is set) instead of equal
        counts — same records, steadier progress ticks.
        """

        if self.config.batch_by != "cost":
            return None
        return BatchSizer(cost_model=self.cost_model(), batch_size=self.config.batch_size)

    # ------------------------------------------------------------------
    # Model resolution
    # ------------------------------------------------------------------
    def _resolve_model(self, model: Model | str) -> Model:
        resolved = get_model(model, seed=self.config.seed) if isinstance(model, str) else model
        if self.config.calibrate and isinstance(resolved, SimulatedModel):
            resolved = calibrate_models([resolved], self.dataset)[0]
        return resolved

    def _model_spec(self, resolved: Model) -> "ModelSpec | None":
        """The offload envelope for ``resolved``, or None when offload is off.

        With ``config.offload_generation`` every pipeline ships the whole
        generate→extract→score chain to the executor as picklable tasks
        built from this :class:`~repro.llm.remote.ModelSpec` — fleet
        workers then reconstruct the model out of process, pacing
        themselves through the store's distributed token bucket when
        ``config.rate_limit`` is set.
        """

        if not self.config.offload_generation:
            return None
        return ModelSpec.of(resolved)

    def _problems(self, variants: Sequence[Variant] | None = None) -> list[Problem]:
        selected = tuple(variants) if variants is not None else self.config.variants
        return [p for p in self.dataset if p.variant in selected]

    # ------------------------------------------------------------------
    # Pipeline assembly
    # ------------------------------------------------------------------
    def requests(
        self,
        model: Model | str,
        problems: Iterable[Problem] | None = None,
        shots: int | None = None,
        samples: int | None = None,
    ) -> tuple[Model, list[GenerationRequest]]:
        """Resolve the model and build its generation requests."""

        resolved = self._resolve_model(model)
        shots = self.config.shots if shots is None else shots
        samples = self.config.samples if samples is None else samples
        problem_list = list(problems) if problems is not None else self._problems()

        # English-only models skip translated questions, as in the paper.
        if resolved.name in ENGLISH_ONLY_MODELS:
            problem_list = [p for p in problem_list if p.variant is not Variant.TRANSLATED]

        requests = [
            GenerationRequest(problem=problem, shots=shots, sample_index=sample)
            for problem in problem_list
            for sample in range(samples)
        ]
        return resolved, requests

    def pipeline(
        self,
        model: Model,
        checkpoint: PipelineCheckpoint | str | None = None,
    ) -> EvaluationPipeline:
        """An evaluation pipeline for ``model`` wired to this benchmark's
        configuration (executor, worker count, unit tests, shared references)."""

        return EvaluationPipeline(
            model,
            executor=self.config.executor,
            generate_executor=self.config.generate_executor,
            max_workers=self.config.max_workers,
            rate_limit=self.config.rate_limit,
            lease_seconds=self.config.lease_seconds,
            store=self._references,
            run_unit_tests=self.config.run_unit_tests,
            checkpoint=checkpoint,
            batch_size=self.config.batch_size,
            calibration=self._calibration,
            score_cache=self._score_cache,
            model_spec=self._model_spec(model),
        )

    def sharded_pipeline(
        self,
        model: Model,
        checkpoint: str | None = None,
    ) -> ShardedEvaluationPipeline:
        """A sharded, overlapped pipeline for ``model`` wired to this
        benchmark's configuration; ``checkpoint`` is the per-shard base path."""

        return ShardedEvaluationPipeline(
            model,
            shards=self.config.shards,
            planner=self.planner(),
            executor=self.config.executor,
            generate_executor=self.config.generate_executor,
            max_workers=self.config.max_workers,
            rate_limit=self.config.rate_limit,
            lease_seconds=self.config.lease_seconds,
            store=self._references,
            run_unit_tests=self.config.run_unit_tests,
            checkpoint=checkpoint,
            batch_size=self.config.batch_size,
            steal=self.config.steal,
            cost_model=self.cost_model(),
            calibration=self._calibration,
            score_cache=self._score_cache,
            batch_sizer=self.batch_sizer(),
            model_spec=self._model_spec(model),
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_model(
        self,
        model: Model | str,
        problems: Iterable[Problem] | None = None,
        shots: int | None = None,
        samples: int | None = None,
        checkpoint: PipelineCheckpoint | str | None = None,
    ) -> ModelEvaluation:
        """Evaluate one model and return its scored records.

        With ``config.shards > 1`` the requests are split across that many
        overlapped sub-pipelines (``checkpoint``, if given, must then be a
        base path — each shard keeps its own file); the records are
        identical to an unsharded run either way.
        """

        resolved, requests = self.requests(model, problems=problems, shots=shots, samples=samples)
        if self.config.shards > 1:
            if isinstance(checkpoint, PipelineCheckpoint):
                raise TypeError(
                    "a sharded run derives one checkpoint file per shard; pass the "
                    "base path instead of a PipelineCheckpoint instance"
                )
            pipeline = self.sharded_pipeline(resolved, checkpoint=checkpoint)
        else:
            pipeline = self.pipeline(resolved, checkpoint=checkpoint)
        try:
            return pipeline.run(requests)
        finally:
            pipeline.close()

    def evaluate_models(
        self,
        models: Sequence[Model | str] | None = None,
        problems: Iterable[Problem] | None = None,
        shots: int | None = None,
        samples: int | None = None,
        checkpoint: str | os.PathLike[str] | None = None,
        steal: bool | None = None,
    ) -> BenchmarkResult:
        """Evaluate several models (default: all twelve from the registry).

        The whole leaderboard runs through one
        :class:`~repro.pipeline.scheduler.MultiModelScheduler`: every
        model's planned shards interleave over one shared generation
        executor and one shared scoring pool, so the endpoint and the CPU
        stay busy simultaneously instead of one model at a time.  With
        ``steal`` (default: ``config.steal``, i.e. on) idle capacity
        dynamically steals batches from the model with the longest
        predicted remaining seconds instead of following the static
        round-robin.  Each ``(model, shard)`` pair keeps its own
        checkpoint file derived from the ``checkpoint`` base path, making
        a killed leaderboard run resumable.  The per-model evaluations are
        bit-identical to sequential :meth:`evaluate_model` calls for every
        executor backend, every planner, and either scheduling policy.
        """

        names = list(models) if models is not None else available_models()
        problem_list = list(problems) if problems is not None else None
        jobs: list[ModelJob] = []
        scheduled: set[str] = set()
        for model in names:
            resolved, requests = self.requests(
                model, problems=problem_list, shots=shots, samples=samples
            )
            if resolved.name in scheduled:
                # Evaluation is deterministic, so a repeated model would
                # reproduce the same records; schedule it once (the
                # pre-scheduler driver evaluated it twice and kept one).
                continue
            scheduled.add(resolved.name)
            base = (
                model_checkpoint_base(checkpoint, resolved.name)
                if checkpoint is not None
                else None
            )
            jobs.append(
                ModelJob(
                    resolved,
                    requests,
                    checkpoint=base,
                    model_spec=self._model_spec(resolved),
                )
            )
        scheduler = MultiModelScheduler(
            jobs,
            shards=self.config.shards,
            planner=self.planner(),
            executor=self.config.executor,
            generate_executor=self.config.generate_executor,
            max_workers=self.config.max_workers,
            rate_limit=self.config.rate_limit,
            lease_seconds=self.config.lease_seconds,
            store=self._references,
            run_unit_tests=self.config.run_unit_tests,
            batch_size=self.config.batch_size,
            steal=self.config.steal if steal is None else steal,
            cost_model=self.cost_model(),
            calibration=self._calibration,
            score_cache=self._score_cache,
            batch_sizer=self.batch_sizer(),
        )
        try:
            evaluations = scheduler.run()
        finally:
            scheduler.close()
        result = BenchmarkResult()
        result.evaluations.update(evaluations)
        return result
