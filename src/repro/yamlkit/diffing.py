"""Line-level diffing used by the edit-distance metric.

The paper computes the edit-distance score as::

    1 - edit_distance / len(reference_YAML)

where the edit distance counts the number of line edits reported by
``difflib.Differ`` between the generated and the reference YAML.  We keep
that definition, clamping to [0, 1] so pathological answers (much longer
than the reference) do not produce negative scores.
"""

from __future__ import annotations

import difflib

__all__ = ["line_edit_distance", "scaled_edit_similarity", "changed_lines"]


def _significant_lines(text: str) -> list[str]:
    """Split into lines, dropping blank lines and trailing whitespace."""

    return [line.rstrip() for line in text.splitlines() if line.strip()]


def line_edit_distance(generated: str, reference: str) -> int:
    """Number of added/removed lines between the two texts.

    A changed line counts as one removal plus one addition, matching the
    behaviour of ``difflib.Differ`` which reports ``-`` and ``+`` entries.
    """

    gen_lines = _significant_lines(generated)
    ref_lines = _significant_lines(reference)
    differ = difflib.Differ()
    distance = 0
    for entry in differ.compare(ref_lines, gen_lines):
        if entry.startswith(("- ", "+ ")):
            distance += 1
    return distance


def changed_lines(generated: str, reference: str) -> tuple[list[str], list[str]]:
    """Return (missing_from_generated, extra_in_generated) line lists."""

    gen_lines = _significant_lines(generated)
    ref_lines = _significant_lines(reference)
    differ = difflib.Differ()
    missing: list[str] = []
    extra: list[str] = []
    for entry in differ.compare(ref_lines, gen_lines):
        if entry.startswith("- "):
            missing.append(entry[2:])
        elif entry.startswith("+ "):
            extra.append(entry[2:])
    return missing, extra


def scaled_edit_similarity(generated: str, reference: str) -> float:
    """Edit-distance similarity scaled by the size of the reference.

    Returns a score in [0, 1]; 1 means the generated text is line-identical
    to the reference (ignoring blank lines), 0 means the edit distance is at
    least as large as the reference itself.
    """

    ref_lines = _significant_lines(reference)
    if not ref_lines:
        return 1.0 if not _significant_lines(generated) else 0.0
    # Paper formula: 1 - edit_distance / len(reference_YAML).  A fully
    # rewritten answer can exceed the reference length in line edits, so the
    # score is clamped at 0 to stay within [0, 1].
    distance = line_edit_distance(generated, reference)
    return max(0.0, 1.0 - distance / float(len(ref_lines)))
