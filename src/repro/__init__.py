"""CloudEval-YAML reproduction library.

This package reproduces the CloudEval-YAML benchmark (MLSys 2024): a
practical benchmark for cloud configuration generation.  It provides

* a deterministic dataset of cloud-configuration problems with labeled
  reference YAML files and executable unit-test programs
  (:mod:`repro.dataset`),
* a scoring pipeline with text-level, YAML-aware and function-level
  metrics (:mod:`repro.scoring`),
* an in-memory Kubernetes / Envoy / Istio substrate used for functional
  evaluation (:mod:`repro.kubesim`, :mod:`repro.envoysim`,
  :mod:`repro.istiosim`),
* simulated LLM model profiles calibrated to the paper's Table 4
  (:mod:`repro.llm`),
* a staged evaluation pipeline — prompt, generate, extract, score,
  aggregate — with streaming, checkpoint/resume and pluggable executors
  (:mod:`repro.pipeline`),
* the distributed evaluation cluster: one master/worker job protocol
  driving both real in-process execution and the discrete-event Figure 5
  simulation with shared Docker image caching (:mod:`repro.evalcluster`),
  and
* analysis utilities that regenerate every table and figure in the
  paper's evaluation section (:mod:`repro.analysis`).

The top-level namespace lazily re-exports the most commonly used entry
points so that downstream users can write::

    from repro import build_dataset, CloudEvalBenchmark, get_model

    dataset = build_dataset()
    bench = CloudEvalBenchmark(dataset)
    result = bench.evaluate_model(get_model("gpt-4"))

Imports are resolved on first attribute access (PEP 562) so that light
uses of one subsystem (for example only the Kubernetes simulator) do not
pay the import cost of the whole benchmark stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

__version__ = "1.0.0"

# attribute name -> (module, attribute)
_LAZY_EXPORTS: dict[str, tuple[str, str]] = {
    "BenchmarkConfig": ("repro.core.config", "BenchmarkConfig"),
    "BenchmarkResult": ("repro.core.benchmark", "BenchmarkResult"),
    "CloudEvalBenchmark": ("repro.core.benchmark", "CloudEvalBenchmark"),
    "ClusterExecutor": ("repro.pipeline.executors", "ClusterExecutor"),
    "CompiledReference": ("repro.scoring.compiled", "CompiledReference"),
    "EvaluationPipeline": ("repro.pipeline.pipeline", "EvaluationPipeline"),
    "PipelineCheckpoint": ("repro.pipeline.checkpoint", "PipelineCheckpoint"),
    "Problem": ("repro.dataset.problem", "Problem"),
    "ProblemSet": ("repro.dataset.problem", "ProblemSet"),
    "ReferenceStore": ("repro.scoring.compiled", "ReferenceStore"),
    "ScoreCard": ("repro.scoring.aggregate", "ScoreCard"),
    "SerialExecutor": ("repro.pipeline.executors", "SerialExecutor"),
    "ThreadedExecutor": ("repro.pipeline.executors", "ThreadedExecutor"),
    "available_models": ("repro.llm.registry", "available_models"),
    "build_dataset": ("repro.dataset.builder", "build_dataset"),
    "get_model": ("repro.llm.registry", "get_model"),
    "score_answer": ("repro.scoring.aggregate", "score_answer"),
    "score_batch": ("repro.scoring.compiled", "score_batch"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    """Resolve the lazy top-level exports on first access."""

    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return __all__


if TYPE_CHECKING:  # pragma: no cover - static typing aid only
    from repro.core.benchmark import BenchmarkResult, CloudEvalBenchmark
    from repro.core.config import BenchmarkConfig
    from repro.dataset.builder import build_dataset
    from repro.dataset.problem import Problem, ProblemSet
    from repro.llm.registry import available_models, get_model
    from repro.pipeline.checkpoint import PipelineCheckpoint
    from repro.pipeline.executors import ClusterExecutor, SerialExecutor, ThreadedExecutor
    from repro.pipeline.pipeline import EvaluationPipeline
    from repro.scoring.aggregate import ScoreCard, score_answer
    from repro.scoring.compiled import CompiledReference, ReferenceStore, score_batch
