"""Benchmark orchestration: run models over the dataset and collect scores."""

from repro.core.benchmark import (
    BenchmarkResult,
    CloudEvalBenchmark,
    EvaluationRecord,
    ModelEvaluation,
)
from repro.core.config import BenchmarkConfig
from repro.core.report import format_leaderboard

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "CloudEvalBenchmark",
    "EvaluationRecord",
    "ModelEvaluation",
    "format_leaderboard",
]
