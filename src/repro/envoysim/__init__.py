"""Envoy configuration simulator.

Envoy problems in the dataset ask for a static bootstrap configuration
(``static_resources`` with listeners and clusters).  The real benchmark
boots an Envoy container and curls through it; offline we validate the
configuration structurally and simulate the routing wiring: a request to a
listener port is resolved through its HTTP connection manager's route
config to a cluster, and succeeds only when that cluster exists and has a
healthy endpoint.
"""

from repro.envoysim.config import EnvoyConfig
from repro.envoysim.validation import EnvoyValidationError, validate_envoy_config

__all__ = ["EnvoyConfig", "EnvoyValidationError", "validate_envoy_config"]
