"""Static comparison data: related benchmarks (Table 7) and the YAML survey (Table 8).

Both tables report survey data rather than experiment outputs, so the
reproduction ships the data as structured constants together with the small
aggregations the paper derives from them (e.g. "90 out of the top 100
cloud-native applications use more than 10 YAML files").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RelatedBenchmark",
    "RepoYamlStats",
    "RELATED_BENCHMARKS",
    "TOP_CLOUD_NATIVE_REPOS",
    "repos_with_more_than",
    "format_table7",
]


@dataclass(frozen=True)
class RelatedBenchmark:
    """One row of Table 7."""

    name: str
    problem_domain: str
    special_eval_metric: str
    num_problems: str
    data_source: str
    natural_languages: tuple[str, ...]


RELATED_BENCHMARKS: tuple[RelatedBenchmark, ...] = (
    RelatedBenchmark("HumanEval", "Python algorithm", "Unit tests", "164", "Hand-written", ("EN",)),
    RelatedBenchmark("MBPP", "Basic Python", "Unit tests", "974", "Hand-verified", ("EN",)),
    RelatedBenchmark("WikiSQL", "SQL query", "Execution Accuracy", "88k", "Hand-annotated", ("EN",)),
    RelatedBenchmark("CodeApex", "C++ algorithm", "Unit tests", "476", "Online judge system", ("EN", "ZH")),
    RelatedBenchmark("MCoNaLa", "Python", "-", "896", "StackOverflow", ("EN", "ES", "JA", "RU")),
    RelatedBenchmark("Lyra", "Python w/ embed. SQL", "Code exec./AST", "2000", "GitHub", ("EN", "ZH")),
    RelatedBenchmark("APPS", "Python", "Unit tests", "10k", "Codeforces, Kattis", ("EN",)),
    RelatedBenchmark("CoNaLa", "Python, Java", "-", "2879", "StackOverflow", ("EN",)),
    RelatedBenchmark("Django", "Python Django", "Human study", "19k", "Django codebase", ("EN",)),
    RelatedBenchmark("Shellcode_IA32", "Assembly", "-", "3200", "shell-storm, Exploit", ("EN",)),
    RelatedBenchmark("CodeXGLUE", "Python, Java", "-", "645k", "Various sources", ("EN",)),
    RelatedBenchmark("CONCODE", "Java classes", "-", "100k", "GitHub repositories", ("EN",)),
    RelatedBenchmark("DS-1000", "Python data science", "Unit tests", "1000", "StackOverflow", ("EN",)),
    RelatedBenchmark("Ansible", "YAML for Ansible", "K-V match", "112k", "GitHub, GitLab", ("EN",)),
    RelatedBenchmark(
        "CloudEval-YAML",
        "YAML for Cloud apps",
        "Unit tests, K-V wildcard",
        "1011",
        "Hand-written (337/1011)",
        ("EN", "ZH"),
    ),
)


@dataclass(frozen=True)
class RepoYamlStats:
    """One entry of the Appendix A survey (Table 8)."""

    name: str
    github_stars: int
    total_files: int
    yaml_files: int


TOP_CLOUD_NATIVE_REPOS: tuple[RepoYamlStats, ...] = (
    RepoYamlStats("GitLab", 23368, 58372, 4721),
    RepoYamlStats("Kubernetes", 101881, 29662, 4715),
    RepoYamlStats("Elastic", 65213, 35747, 3143),
    RepoYamlStats("GraphQL", 30135, 13667, 2169),
    RepoYamlStats("Istio", 33694, 6261, 2081),
    RepoYamlStats("Ansible", 58659, 7236, 1914),
    RepoYamlStats("ShardingSphere", 18807, 21945, 1632),
    RepoYamlStats("llvm", 21975, 148442, 1202),
    RepoYamlStats("Argo", 14145, 4172, 1118),
    RepoYamlStats("Skaffold", 14219, 16345, 1044),
    RepoYamlStats("Kubespray", 14472, 2093, 900),
    RepoYamlStats("SkyWalking", 22442, 5999, 802),
    RepoYamlStats("Cilium", 16516, 19972, 780),
    RepoYamlStats("MongoDB", 24425, 49784, 743),
    RepoYamlStats("Backstage", 23285, 12300, 613),
    RepoYamlStats("Grafana Loki", 20163, 15520, 554),
    RepoYamlStats("Helm", 24953, 1784, 540),
    RepoYamlStats("Envoy", 22759, 13470, 520),
    RepoYamlStats("Pulumi", 17622, 8179, 467),
    RepoYamlStats("Teleport", 14225, 8884, 419),
    RepoYamlStats("Traefik", 44719, 1870, 339),
    RepoYamlStats("minikube", 27261, 2368, 316),
    RepoYamlStats("SlimToolkit", 17269, 6545, 305),
    RepoYamlStats("Prometheus", 49987, 1389, 255),
    RepoYamlStats("Grafana", 57207, 15782, 242),
    RepoYamlStats("Podman", 19128, 10589, 203),
    RepoYamlStats("ClickHouse", 30874, 27331, 200),
    RepoYamlStats("Rancher K8s", 21560, 3655, 196),
    RepoYamlStats("Netdata", 65199, 3069, 190),
    RepoYamlStats("Dapr", 22320, 2027, 186),
    RepoYamlStats("Trivy", 18709, 2250, 178),
    RepoYamlStats("Vector", 14432, 9320, 174),
    RepoYamlStats("JHipster", 20853, 3874, 173),
    RepoYamlStats("RethinkDB", 26257, 2121, 165),
    RepoYamlStats("Dgraph", 19620, 2231, 161),
    RepoYamlStats("Salt Project", 13513, 7242, 153),
    RepoYamlStats("Docker Compose", 30543, 466, 147),
    RepoYamlStats("Vitess", 16897, 5579, 142),
    RepoYamlStats("containerd", 14857, 6523, 138),
    RepoYamlStats("Serverless", 45187, 1805, 131),
    RepoYamlStats("CockroachDB", 27828, 18499, 118),
    RepoYamlStats("k3s", 24517, 750, 97),
    RepoYamlStats("Logstash", 13639, 3835, 88),
    RepoYamlStats("Apache Spark", 36800, 24415, 85),
    RepoYamlStats("Kong", 35947, 1888, 75),
    RepoYamlStats("SST", 17715, 4683, 73),
    RepoYamlStats("Rust", 85579, 46998, 69),
    RepoYamlStats("gRPC", 39066, 12629, 68),
    RepoYamlStats("Vault", 27546, 9175, 66),
    RepoYamlStats("DragonflyDB", 21064, 615, 64),
    RepoYamlStats("Consul", 26921, 13084, 62),
    RepoYamlStats("Keycloak", 17472, 14535, 59),
    RepoYamlStats("Presto", 15087, 13493, 57),
    RepoYamlStats("InfluxData", 26133, 2007, 56),
    RepoYamlStats("ORY Hydra", 14434, 2556, 56),
    RepoYamlStats("OpenAPI", 27136, 181, 55),
    RepoYamlStats("Sentry", 35169, 14388, 54),
    RepoYamlStats("TDengine", 21762, 4620, 51),
    RepoYamlStats("Jaeger", 18318, 1469, 48),
    RepoYamlStats("MinIO", 40904, 1391, 46),
    RepoYamlStats("Zipkin", 16425, 1076, 43),
    RepoYamlStats("k6", 21566, 3382, 40),
    RepoYamlStats("Nomad", 13968, 6080, 39),
    RepoYamlStats("Timescale", 15534, 2289, 39),
    RepoYamlStats("etcd", 44537, 1600, 38),
    RepoYamlStats("Gradle Build Tool", 15205, 35647, 38),
    RepoYamlStats("Terraform", 38875, 5704, 36),
    RepoYamlStats("Apache RocketMQ", 19814, 2985, 36),
    RepoYamlStats("Flink", 21993, 27228, 30),
    RepoYamlStats("Apollo", 28360, 1512, 28),
    RepoYamlStats("gVisor", 14172, 3723, 26),
    RepoYamlStats("Sentinel", 21422, 3487, 25),
    RepoYamlStats("go-zero", 25550, 1382, 22),
    RepoYamlStats("Seata", 24226, 3904, 21),
    RepoYamlStats("Packer", 14612, 1450, 20),
    RepoYamlStats("Wasmer", 16300, 2007, 19),
    RepoYamlStats("Portainer", 26644, 3063, 19),
    RepoYamlStats("Golang", 114620, 14022, 18),
    RepoYamlStats("SOPS", 13823, 190, 18),
    RepoYamlStats("Redis", 61572, 1679, 16),
    RepoYamlStats("kratos", 21387, 861, 16),
    RepoYamlStats("NATS", 24451, 580, 16),
    RepoYamlStats("Zig", 26009, 16173, 15),
    RepoYamlStats("Jenkins", 21453, 13139, 15),
    RepoYamlStats("Apache Hadoop", 13858, 9562, 14),
    RepoYamlStats("Dubbo", 39400, 5399, 14),
    RepoYamlStats("TiDB", 34880, 6235, 14),
    RepoYamlStats("OpenFaaS", 23512, 1100, 14),
    RepoYamlStats("emscripten", 24266, 9596, 11),
    RepoYamlStats("OpenCV", 71360, 8613, 10),
    RepoYamlStats("Caddy", 49844, 465, 9),
    RepoYamlStats("Apache bRPC", 15290, 1632, 9),
    RepoYamlStats("Firecracker", 22578, 822, 8),
    RepoYamlStats("Nacos", 27577, 3501, 6),
    RepoYamlStats("Kotlin", 45845, 98293, 5),
    RepoYamlStats("TiKV", 13617, 1705, 3),
    RepoYamlStats("Kafka", 25883, 7020, 2),
    RepoYamlStats("V8", 21722, 14237, 1),
    RepoYamlStats("FFmpeg", 38520, 8287, 1),
    RepoYamlStats("NGINX(Wasm)", 19089, 559, 0),
)


def repos_with_more_than(yaml_files: int, repos: tuple[RepoYamlStats, ...] = TOP_CLOUD_NATIVE_REPOS) -> int:
    """Number of surveyed repositories with more than ``yaml_files`` YAML files."""

    return sum(1 for repo in repos if repo.yaml_files > yaml_files)


def format_table7(benchmarks: tuple[RelatedBenchmark, ...] = RELATED_BENCHMARKS) -> str:
    """Render Table 7 as aligned text."""

    lines = ["Table 7: Comparison to other code-generation benchmarks", ""]
    header = f"{'Dataset':<16}{'Problem domain':<24}{'Special metric':<26}{'# problems':<12}{'Source':<24}{'Languages':<14}"
    lines.append(header)
    for row in benchmarks:
        lines.append(
            f"{row.name:<16}{row.problem_domain:<24}{row.special_eval_metric:<26}"
            f"{row.num_problems:<12}{row.data_source:<24}{', '.join(row.natural_languages):<14}"
        )
    return "\n".join(lines)
