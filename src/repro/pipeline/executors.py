"""Executor backends the pipeline stages fan work out over.

An executor is a deliberately tiny abstraction — ordered ``map`` over pure
tasks — so stages stay oblivious to *where* their work runs:

* :class:`SerialExecutor` — in-line, zero overhead, the default.
* :class:`ThreadedExecutor` — a persistent ``concurrent.futures`` thread
  pool, mirroring the paper's ray-parallel querying of rate-limited APIs.
* :class:`ClusterExecutor` — dispatches each task as an
  :class:`~repro.evalcluster.master.EvaluationJob` payload through the
  master/worker job-claim-report protocol, i.e. the same queue the
  Figure 5 simulation exercises, but with workers in
  :class:`~repro.evalcluster.worker.RealExecution` mode actually running
  the work.
* :class:`AsyncExecutor` — an asyncio event loop with bounded concurrency
  and a deterministic token-bucket rate limiter, built for the I/O axis:
  rate-limited remote endpoints whose per-request latency can be
  overlapped.  The generate stage routes its batch through
  ``QueryModule.query_batch_async`` when this executor is configured.
* :class:`ProcessExecutor` — a persistent ``ProcessPoolExecutor`` with
  chunked submission and an optional per-process initializer (used to
  warm a :class:`~repro.scoring.compiled.ReferenceStore` in every
  worker), built for the CPU axis: scoring and unit-test execution.
* :class:`~repro.evalcluster.fleet.FleetExecutor` (``"fleet"``) — the
  cluster protocol over a real wire: a socket-served store, spawned
  worker *processes* claiming jobs through it, leases + heartbeats for
  fault tolerance.  The distributed deployment the others simulate.

All backends are deterministic: tasks are pure functions of their inputs
and results always come back in submission order, so the backend choice
can never change a ScoreCard.
"""

from __future__ import annotations

import asyncio
import inspect
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Coroutine, Protocol, Sequence, TypeVar, runtime_checkable

from repro.evalcluster.master import EvaluationJob
from repro.evalcluster.runtime import run_jobs
from repro.utils.pools import LazyPool
from repro.utils.ratelimit import TokenBucket

__all__ = [
    "EXECUTOR_NAMES",
    "GENERATE_EXECUTOR_NAMES",
    "DegradedResult",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ClusterExecutor",
    "AsyncExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "close_executor",
]

#: Executor specs accepted by :func:`resolve_executor` (and therefore by
#: ``BenchmarkConfig.executor``), in the order they should be documented.
EXECUTOR_NAMES: tuple[str, ...] = ("serial", "thread", "cluster", "async", "process", "fleet")

#: Specs valid for ``BenchmarkConfig.generate_executor``.  ``"process"`` is
#: excluded: generation closes over the model object, which is not a
#: picklable contract, and endpoint querying is I/O-bound anyway.
GENERATE_EXECUTOR_NAMES: tuple[str, ...] = ("serial", "thread", "cluster", "async")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class DegradedResult:
    """A result slot the *infrastructure* could not fill.

    Executors that tolerate partial failure (the fleet, when a job's
    lease expired twice or the job was quarantined by the strike rule)
    return one of these per lost task instead of raising, so a single
    poisoned or abandoned job degrades only its own records.  Stages
    convert a degraded slot into an error-marked
    :class:`~repro.pipeline.records.EvaluationRecord` — the run always
    terminates, and the loss is visible in its coverage stat rather
    than silently averaged away.
    """

    reason: str


@runtime_checkable
class Executor(Protocol):
    """Ordered map over independent tasks."""

    name: str

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:  # pragma: no cover
        ...


class SerialExecutor:
    """Run every task in-line, in order."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ThreadedExecutor:
    """Fan tasks out over a persistent thread pool, results in order.

    The pool is created lazily on the first parallel ``map`` and reused by
    every later call (the previous incarnation built and tore down a pool
    per call, paying thread spawn/join on every batch of a streaming run).
    ``close()`` — or use as a context manager — shuts it down; a later
    ``map`` transparently builds a fresh one.
    """

    name = "thread"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = LazyPool(
            lambda: ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="pipeline-thread"
            )
        )

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if self.max_workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return list(self._pool.get().map(fn, tasks))

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ClusterExecutor:
    """Run tasks as real jobs on the in-process evaluation cluster.

    Every task becomes an :class:`EvaluationJob` whose payload closes over
    ``fn`` and the task; jobs are submitted to a fresh master, claimed by
    ``num_workers`` in-process workers and their results collected from
    the job reports — one protocol for simulation and execution.  A task
    that raises surfaces its exception here (executors must not silently
    swallow failures into result slots).
    """

    name = "cluster"

    def __init__(self, num_workers: int = 4, lease_seconds: float | None = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.lease_seconds = lease_seconds

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        jobs = [
            EvaluationJob(
                job_id=f"job-{index:06d}",
                problem_id=getattr(task, "problem_id", f"task-{index:06d}"),
                payload=lambda fn=fn, task=task: fn(task),
            )
            for index, task in enumerate(tasks)
        ]
        reports = run_jobs(jobs, num_workers=self.num_workers, lease_seconds=self.lease_seconds)
        results: list[R] = []
        for job in jobs:
            report = reports[job.job_id]
            if not report.passed:
                raise RuntimeError(f"cluster job {job.job_id} failed: {report.result}")
            results.append(report.result)
        return results


class AsyncExecutor:
    """Bounded-concurrency asyncio executor with token-bucket rate limiting.

    Built for the I/O-bound half of evaluation: querying rate-limited
    remote endpoints.  ``map`` accepts either plain callables (awaited
    inline — ordered, deterministic) or ``async`` callables, and the
    generate stage hands its whole batch to
    :meth:`~repro.llm.interface.QueryModule.query_batch_async` through
    :meth:`run` so an :class:`~repro.llm.interface.AsyncModel`'s request
    latencies overlap up to ``max_concurrency`` deep.

    The :class:`~repro.utils.ratelimit.TokenBucket` is deterministic: with
    the default virtual clock it fast-forwards through throttle waits
    (simulated endpoints finish in milliseconds while the accounted wait
    matches what a real endpoint would have imposed); against live
    endpoints construct it with ``virtual_clock=False`` to actually pace
    requests.
    """

    name = "async"

    def __init__(
        self,
        max_concurrency: int = 8,
        rate_limit: float | None = None,
        burst: int = 1,
        virtual_clock: bool = True,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.max_concurrency = max_concurrency
        self.limiter = (
            TokenBucket(rate_limit, burst=burst, virtual_clock=virtual_clock)
            if rate_limit is not None
            else None
        )

    def run(self, coro: Coroutine[Any, Any, R]) -> R:
        """Drive a coroutine to completion on a fresh event loop."""

        return asyncio.run(coro)

    async def _map_async(self, fn: Callable[[T], Any], tasks: Sequence[T]) -> list[Any]:
        semaphore = asyncio.Semaphore(self.max_concurrency)
        is_coroutine_fn = inspect.iscoroutinefunction(fn)

        async def one(task: T) -> Any:
            async with semaphore:
                if is_coroutine_fn:
                    return await fn(task)
                return fn(task)

        return list(await asyncio.gather(*(one(task) for task in tasks)))

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Ordered map under the concurrency bound.

        The token bucket deliberately does NOT apply here: it meters
        *endpoint requests* (the generate stage consumes it through
        ``query_batch_async``), and charging generic stage work — e.g.
        CPU-bound scoring when this executor backs the whole pipeline —
        would double-count every record against the endpoint's budget.
        """

        return self.run(self._map_async(fn, tasks))


class ProcessExecutor:
    """Fan tasks out over a persistent process pool, results in order.

    Built for the CPU-bound half of evaluation: scoring and in-process
    unit-test execution, which hold the GIL and gain nothing from threads.
    Tasks and the mapped function must be picklable (the score stage ships
    :class:`~repro.scoring.compiled.ScoreTask` envelopes); submission is
    chunked so large batches amortise IPC.

    ``initializer``/``initargs`` run once in every worker process —
    :func:`repro.scoring.compiled.warm_reference_store` is the intended
    initializer, giving each worker a pre-warmed
    :class:`~repro.scoring.compiled.ReferenceStore` so references compile
    once per process instead of once per task.  Call :meth:`warm` before
    the first ``map`` to install it with a problem list.
    """

    name = "process"
    #: The score stage switches to picklable task envelopes for this backend.
    requires_picklable_tasks = True

    def __init__(
        self,
        max_workers: int = 2,
        initializer: Callable[..., object] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.initializer = initializer
        self.initargs = initargs
        self._pool = LazyPool(
            lambda: ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        )

    def warm(self, problems: Sequence[Any]) -> "ProcessExecutor":
        """Precompile ``problems``' references in every worker process.

        Must be called before the pool exists (the initializer runs at
        worker start); returns self for chaining.
        """

        from repro.scoring.compiled import warm_reference_store

        if self._pool.raw is not None:
            raise RuntimeError("warm() must be called before the first map()")
        self.initializer = warm_reference_store
        self.initargs = (tuple(problems),)
        return self

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if not tasks:
            return []
        chunksize = max(1, len(tasks) // (self.max_workers * 4))
        return list(self._pool.get().map(fn, tasks, chunksize=chunksize))

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resolve_executor(
    executor: str | Executor,
    max_workers: int = 1,
    rate_limit: float | None = None,
    lease_seconds: float | None = None,
) -> Executor:
    """Turn a config spec (one of :data:`EXECUTOR_NAMES` or an executor
    instance) into an executor.

    ``max_workers`` sizes the thread/cluster/process/fleet pools and the
    async concurrency bound; ``rate_limit`` (requests per second) only
    applies to the async backend's token bucket, ``lease_seconds`` to the
    cluster and fleet backends' job leases.
    """

    if not isinstance(executor, str):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadedExecutor(max_workers=max(1, max_workers))
    if executor == "cluster":
        return ClusterExecutor(num_workers=max(1, max_workers), lease_seconds=lease_seconds)
    if executor == "async":
        return AsyncExecutor(max_concurrency=max(1, max_workers), rate_limit=rate_limit)
    if executor == "process":
        return ProcessExecutor(max_workers=max(1, max_workers))
    if executor == "fleet":
        # Imported lazily: the fleet module pulls in sockets/subprocess
        # machinery that in-process runs never need.
        from repro.evalcluster.fleet import FleetExecutor

        return FleetExecutor(num_workers=max(1, max_workers), lease_seconds=lease_seconds)
    raise ValueError(f"unknown executor {executor!r} (expected one of {EXECUTOR_NAMES})")


def close_executor(executor: Executor) -> None:
    """Release an executor's pooled resources, if it holds any."""

    close = getattr(executor, "close", None)
    if callable(close):
        close()
