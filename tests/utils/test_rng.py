"""Tests for the deterministic RNG utilities."""

from __future__ import annotations

import pytest

from repro.utils.rng import DeterministicRNG, derive_seed, stable_hash


def test_stable_hash_is_deterministic_across_calls():
    assert stable_hash("a", 1, "b") == stable_hash("a", 1, "b")


def test_stable_hash_differs_for_different_inputs():
    assert stable_hash("a") != stable_hash("b")


def test_stable_hash_is_non_negative_63_bit():
    value = stable_hash("anything", 42)
    assert 0 <= value < 2**63


def test_derive_seed_changes_with_context():
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_same_seed_produces_identical_streams():
    a = DeterministicRNG(123)
    b = DeterministicRNG(123)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_child_streams_are_independent_of_parent_consumption():
    parent1 = DeterministicRNG(5)
    parent2 = DeterministicRNG(5)
    parent2.random()  # consuming from the parent must not affect children
    assert parent1.child("x").random() == parent2.child("x").random()


def test_randint_bounds_inclusive():
    rng = DeterministicRNG(0)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_randint_rejects_empty_range():
    with pytest.raises(ValueError):
        DeterministicRNG(0).randint(5, 4)


def test_bernoulli_extremes():
    rng = DeterministicRNG(1)
    assert not any(rng.bernoulli(0.0) for _ in range(50))
    assert all(rng.bernoulli(1.0) for _ in range(50))


def test_choice_weighted_never_picks_zero_weight():
    rng = DeterministicRNG(2)
    picks = {rng.choice(["a", "b", "c"], weights=[1.0, 0.0, 1.0]) for _ in range(100)}
    assert "b" not in picks


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        DeterministicRNG(0).choice([])


def test_choice_weights_length_mismatch_raises():
    with pytest.raises(ValueError):
        DeterministicRNG(0).choice(["a", "b"], weights=[1.0])


def test_sample_without_replacement_is_distinct():
    rng = DeterministicRNG(3)
    sample = rng.sample(list(range(20)), 10)
    assert len(sample) == len(set(sample)) == 10


def test_sample_caps_at_population_size():
    rng = DeterministicRNG(3)
    assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]


def test_shuffle_returns_permutation():
    rng = DeterministicRNG(4)
    items = list(range(15))
    shuffled = rng.shuffle(items)
    assert sorted(shuffled) == items
    assert items == list(range(15))  # input not mutated
