"""A Redis-like in-memory key-value store, with optional durability.

The master node of the paper's evaluation cluster keeps unit-test contexts,
inputs and outputs in Redis.  :class:`RedisLikeStore` provides the handful
of commands the scheduler needs (strings, hashes and lists with
blocking-free pops) so the master/worker code reads like the real thing
while staying in-process.

:class:`JournaledStore` wraps it with a write-ahead journal over
:class:`~repro.utils.jsonl.JsonlLog` — every effective mutation is fsynced
to an append-only JSONL file before the caller sees the result, and the
journal periodically compacts to a single snapshot line.  That is what
lets the fleet's :class:`~repro.evalcluster.fleet.StoreServer` be killed
and restarted mid-run: a fresh server pointed at the same journal replays
to the exact pre-crash state and reattaching workers and coordinators
resume where they left off.
"""

from __future__ import annotations

import base64
import json
import pickle
from collections import deque
from pathlib import Path
from typing import Any

from repro.utils.jsonl import JsonlLog

__all__ = ["RedisLikeStore", "JournaledStore"]


class RedisLikeStore:
    """In-memory subset of the Redis command surface."""

    def __init__(self) -> None:
        self._strings: dict[str, Any] = {}
        self._hashes: dict[str, dict[str, Any]] = {}
        self._lists: dict[str, deque[Any]] = {}

    # -- strings -----------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self._strings[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._strings.get(key, default)

    def incr(self, key: str, amount: int = 1) -> int:
        value = int(self._strings.get(key, 0)) + amount
        self._strings[key] = value
        return value

    def delete(self, key: str) -> None:
        self._strings.pop(key, None)
        self._hashes.pop(key, None)
        self._lists.pop(key, None)

    # -- hashes --------------------------------------------------------------
    def hset(self, key: str, field: str, value: Any) -> None:
        self._hashes.setdefault(key, {})[field] = value

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        """Set ``field`` only if it is absent; True when the write happened.

        First-write-wins is what makes duplicate job executions harmless:
        a re-enqueued job whose original worker turns out to have finished
        after all cannot overwrite the recorded result.
        """

        bucket = self._hashes.setdefault(key, {})
        if field in bucket:
            return False
        bucket[field] = value
        return True

    def hdel(self, key: str, field: str) -> bool:
        """Remove ``field`` from the hash; True when it existed."""

        bucket = self._hashes.get(key)
        if bucket is None or field not in bucket:
            return False
        del bucket[field]
        return True

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        return self._hashes.get(key, {}).get(field, default)

    def hgetall(self, key: str) -> dict[str, Any]:
        return dict(self._hashes.get(key, {}))

    def hlen(self, key: str) -> int:
        return len(self._hashes.get(key, {}))

    # -- lists ----------------------------------------------------------------
    def rpush(self, key: str, *values: Any) -> int:
        queue = self._lists.setdefault(key, deque())
        queue.extend(values)
        return len(queue)

    def lpop(self, key: str) -> Any:
        queue = self._lists.get(key)
        if not queue:
            return None
        return queue.popleft()

    def llen(self, key: str) -> int:
        return len(self._lists.get(key, ()))

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        items = list(self._lists.get(key, ()))
        if stop == -1:
            return items[start:]
        return items[start : stop + 1]

    # -- inspection --------------------------------------------------------------
    def keys(self) -> list[str]:
        return sorted(set(self._strings) | set(self._hashes) | set(self._lists))

    # -- snapshots ----------------------------------------------------------------
    def snapshot(self) -> bytes:
        """The whole store state as one pickled blob (for journal compaction)."""

        return pickle.dumps(
            {
                "strings": dict(self._strings),
                "hashes": {k: dict(v) for k, v in self._hashes.items()},
                "lists": {k: list(v) for k, v in self._lists.items()},
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_snapshot(cls, blob: bytes) -> "RedisLikeStore":
        """Rebuild a store from a :meth:`snapshot` blob."""

        state = pickle.loads(blob)
        store = cls()
        store._strings = dict(state["strings"])
        store._hashes = {k: dict(v) for k, v in state["hashes"].items()}
        store._lists = {k: deque(v) for k, v in state["lists"].items()}
        return store


def _encode_args(args: tuple[Any, ...]) -> str:
    return base64.b64encode(pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _decode_args(text: str) -> tuple[Any, ...]:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class JournaledStore:
    """A :class:`RedisLikeStore` with a write-ahead journal on disk.

    Same command surface as the plain store; reads pass straight through,
    and every mutation that actually changed state is appended (fsynced,
    via :class:`JsonlLog`) to the journal *before* the call returns —
    so once a client has seen an acknowledgement, a crash cannot lose
    that write.  Ineffective mutations (an ``hsetnx`` that lost the
    first-write race, an ``lpop`` of an empty list, an ``hdel`` of a
    missing field) are not journaled: replay applies exactly the effects
    the live run applied, in the same order.

    Every ``compact_every`` journaled operations the journal is
    atomically rewritten as a single ``snapshot`` line, so it stays
    bounded and replay stays fast.  Construction replays any existing
    journal at ``path`` — a restart is just "build a new JournaledStore
    on the same path".

    Not itself thread-safe, by design: the fleet's ``StoreServer``
    already executes every command under one lock, and that same lock
    must cover the journal append or replay order could diverge from
    the order clients observed.
    """

    def __init__(self, path: str | Path, compact_every: int = 1000) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.path = Path(path)
        self.compact_every = compact_every
        self._log = JsonlLog(self.path)
        self._store = RedisLikeStore()
        self._ops_since_snapshot = 0
        self.replayed_ops = 0  # journal lines applied at construction
        self._replay()

    # -- durability machinery ------------------------------------------------
    def _replay(self) -> None:
        for entry in self._log.scan(json.loads):
            if not isinstance(entry, dict) or "op" not in entry:
                continue
            op = entry["op"]
            try:
                if op == "snapshot":
                    self._store = RedisLikeStore.from_snapshot(
                        base64.b64decode(entry["state"].encode("ascii"))
                    )
                else:
                    getattr(self._store, op)(*_decode_args(entry["args"]))
            except Exception:  # noqa: BLE001 - a junk line must not kill replay
                continue
            self.replayed_ops += 1

    def _journal(self, op: str, *args: Any) -> None:
        self._log.append([json.dumps({"op": op, "args": _encode_args(args)}) + "\n"])
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line (atomic, kill-safe)."""

        line = json.dumps(
            {"op": "snapshot", "state": base64.b64encode(self._store.snapshot()).decode("ascii")}
        )
        self._log.rewrite([line + "\n"])
        self._ops_since_snapshot = 0

    # -- strings -----------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self._store.set(key, value)
        self._journal("set", key, value)

    def get(self, key: str, default: Any = None) -> Any:
        return self._store.get(key, default)

    def incr(self, key: str, amount: int = 1) -> int:
        value = self._store.incr(key, amount)
        self._journal("incr", key, amount)
        return value

    def delete(self, key: str) -> None:
        self._store.delete(key)
        self._journal("delete", key)

    # -- hashes --------------------------------------------------------------
    def hset(self, key: str, field: str, value: Any) -> None:
        self._store.hset(key, field, value)
        self._journal("hset", key, field, value)

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        written = self._store.hsetnx(key, field, value)
        if written:
            # Journal as a plain hset: by the time replay runs, the
            # first-write race is already decided — this write won.
            self._journal("hset", key, field, value)
        return written

    def hdel(self, key: str, field: str) -> bool:
        removed = self._store.hdel(key, field)
        if removed:
            self._journal("hdel", key, field)
        return removed

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        return self._store.hget(key, field, default)

    def hgetall(self, key: str) -> dict[str, Any]:
        return self._store.hgetall(key)

    def hlen(self, key: str) -> int:
        return self._store.hlen(key)

    # -- lists ----------------------------------------------------------------
    def rpush(self, key: str, *values: Any) -> int:
        length = self._store.rpush(key, *values)
        self._journal("rpush", key, *values)
        return length

    def lpop(self, key: str) -> Any:
        value = self._store.lpop(key)
        if value is not None:
            self._journal("lpop", key)
        return value

    def llen(self, key: str) -> int:
        return self._store.llen(key)

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        return self._store.lrange(key, start, stop)

    # -- inspection --------------------------------------------------------------
    def keys(self) -> list[str]:
        return self._store.keys()

    def snapshot(self) -> bytes:
        return self._store.snapshot()
