"""Tests for the resource model, kind registry and label selectors."""

from __future__ import annotations

import pytest

from repro.kubesim.errors import UnsupportedKindError, ValidationError
from repro.kubesim.resources import KIND_REGISTRY, Resource, resolve_kind
from repro.kubesim.selectors import matches_label_map, matches_selector, parse_kubectl_selector


def _pod_manifest(name="web", namespace=None, labels=None):
    manifest = {
        "apiVersion": "v1",
        "kind": "Pod",
        "metadata": {"name": name},
        "spec": {"containers": [{"name": "c", "image": "nginx"}]},
    }
    if namespace:
        manifest["metadata"]["namespace"] = namespace
    if labels:
        manifest["metadata"]["labels"] = labels
    return manifest


def test_resource_accessors():
    resource = Resource.from_manifest(_pod_manifest(namespace="prod", labels={"app": "web"}))
    assert resource.kind == "Pod"
    assert resource.namespace == "prod"
    assert resource.labels == {"app": "web"}
    assert resource.name == "web"


def test_resource_defaults_to_default_namespace():
    assert Resource.from_manifest(_pod_manifest()).namespace == "default"


def test_resource_requires_kind_and_name():
    with pytest.raises(ValidationError):
        Resource.from_manifest({"apiVersion": "v1", "metadata": {"name": "x"}})
    with pytest.raises(ValidationError):
        Resource.from_manifest({"apiVersion": "v1", "kind": "Pod", "metadata": {}})
    with pytest.raises(ValidationError):
        Resource.from_manifest({"kind": "Pod", "metadata": {"name": "x"}})


def test_key_uses_empty_namespace_for_cluster_scoped_kinds():
    cluster_role = Resource.from_manifest(
        {
            "apiVersion": "rbac.authorization.k8s.io/v1",
            "kind": "ClusterRole",
            "metadata": {"name": "admin", "namespace": "ignored"},
            "rules": [{"verbs": ["get"]}],
        }
    )
    assert cluster_role.key() == ("ClusterRole", "", "admin")


def test_resolve_kind_known_and_unknown():
    assert resolve_kind("Deployment").workload
    with pytest.raises(UnsupportedKindError):
        resolve_kind("FooBar")


def test_registry_contains_istio_crds():
    for kind in ("VirtualService", "DestinationRule", "Gateway"):
        assert kind in KIND_REGISTRY


def test_pod_template_extraction_for_workloads():
    deployment = Resource.from_manifest(
        {
            "apiVersion": "apps/v1",
            "kind": "Deployment",
            "metadata": {"name": "d"},
            "spec": {
                "selector": {"matchLabels": {"app": "d"}},
                "template": {"metadata": {"labels": {"app": "d"}}, "spec": {"containers": [{"name": "c", "image": "nginx"}]}},
            },
        }
    )
    template = deployment.pod_template()
    assert template["spec"]["containers"][0]["image"] == "nginx"
    assert deployment.containers()[0]["name"] == "c"


def test_cronjob_template_extraction():
    cronjob = Resource.from_manifest(
        {
            "apiVersion": "batch/v1",
            "kind": "CronJob",
            "metadata": {"name": "cj"},
            "spec": {
                "schedule": "0 0 * * *",
                "jobTemplate": {"spec": {"template": {"spec": {"containers": [{"name": "x", "image": "busybox"}]}}}},
            },
        }
    )
    assert cronjob.containers()[0]["image"] == "busybox"


# -- selectors --------------------------------------------------------------

def test_matches_label_map():
    assert matches_label_map({"app": "web", "tier": "front"}, {"app": "web"})
    assert not matches_label_map({"app": "web"}, {"app": "db"})
    assert not matches_label_map({}, {"app": "web"})


def test_matches_selector_match_labels():
    assert matches_selector({"app": "web"}, {"matchLabels": {"app": "web"}})
    assert not matches_selector({"app": "web"}, {"matchLabels": {"app": "db"}})


def test_matches_selector_bare_map():
    assert matches_selector({"app": "web"}, {"app": "web"})


def test_empty_selector_matches_nothing():
    assert not matches_selector({"app": "web"}, {})
    assert not matches_selector({"app": "web"}, None)


def test_match_expressions_in_and_notin():
    labels = {"env": "prod"}
    assert matches_selector(labels, {"matchExpressions": [{"key": "env", "operator": "In", "values": ["prod", "stage"]}]})
    assert not matches_selector(labels, {"matchExpressions": [{"key": "env", "operator": "NotIn", "values": ["prod"]}]})


def test_match_expressions_exists():
    assert matches_selector({"env": "x"}, {"matchExpressions": [{"key": "env", "operator": "Exists"}]})
    assert matches_selector({}, {"matchExpressions": [{"key": "env", "operator": "DoesNotExist"}]})


def test_match_expressions_unknown_operator_raises():
    with pytest.raises(ValidationError):
        matches_selector({"a": "b"}, {"matchExpressions": [{"key": "a", "operator": "Weird"}]})


def test_parse_kubectl_selector():
    assert parse_kubectl_selector("app=web,tier=front") == {"app": "web", "tier": "front"}
    with pytest.raises(ValidationError):
        parse_kubectl_selector("not-a-selector")
