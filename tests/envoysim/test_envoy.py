"""Tests for the Envoy configuration simulator."""

from __future__ import annotations

import pytest
import yaml

from repro.envoysim import EnvoyConfig, EnvoyValidationError, validate_envoy_config

BASIC_CONFIG = yaml.safe_load(
    """
static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: 10000
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          route_config:
            virtual_hosts:
            - name: internal
              domains: ["internal.example.com"]
              routes:
              - match: {prefix: /}
                route: {cluster: internal_service}
            - name: public
              domains: ["*"]
              routes:
              - match: {prefix: /api}
                route: {cluster: api_service}
              - match: {prefix: /}
                route: {cluster: web_service}
  clusters:
  - name: internal_service
    lb_policy: LEAST_REQUEST
    load_assignment:
      endpoints:
      - lb_endpoints:
        - endpoint:
            address: {socket_address: {address: 127.0.0.1, port_value: 9100}}
  - name: api_service
    load_assignment:
      endpoints:
      - lb_endpoints:
        - endpoint:
            address: {socket_address: {address: 127.0.0.1, port_value: 9200}}
  - name: web_service
    load_assignment:
      endpoints:
      - lb_endpoints:
        - endpoint:
            address: {socket_address: {address: 127.0.0.1, port_value: 9300}}
"""
)


def test_valid_config_accepted():
    validate_envoy_config(BASIC_CONFIG)


def test_missing_static_resources_rejected():
    with pytest.raises(EnvoyValidationError, match="static_resources"):
        validate_envoy_config({"admin": {}})


def test_listener_requires_port():
    broken = yaml.safe_load(yaml.safe_dump(BASIC_CONFIG))
    del broken["static_resources"]["listeners"][0]["address"]["socket_address"]["port_value"]
    with pytest.raises(EnvoyValidationError, match="port_value"):
        validate_envoy_config(broken)


def test_listener_requires_filter_chains():
    broken = yaml.safe_load(yaml.safe_dump(BASIC_CONFIG))
    broken["static_resources"]["listeners"][0]["filter_chains"] = []
    with pytest.raises(EnvoyValidationError, match="filter_chains"):
        validate_envoy_config(broken)


def test_cluster_unknown_lb_policy_rejected():
    broken = yaml.safe_load(yaml.safe_dump(BASIC_CONFIG))
    broken["static_resources"]["clusters"][0]["lb_policy"] = "FASTEST"
    with pytest.raises(EnvoyValidationError, match="lb_policy"):
        validate_envoy_config(broken)


def test_cluster_endpoint_requires_address():
    broken = yaml.safe_load(yaml.safe_dump(BASIC_CONFIG))
    broken["static_resources"]["clusters"][0]["load_assignment"]["endpoints"][0]["lb_endpoints"][0]["endpoint"] = {}
    with pytest.raises(EnvoyValidationError):
        validate_envoy_config(broken)


def test_listener_ports_listed():
    assert EnvoyConfig(BASIC_CONFIG).listener_ports() == [10000]


def test_route_prefix_matching_prefers_first_match():
    config = EnvoyConfig(BASIC_CONFIG)
    assert config.route(10000, "/api/users") == "api_service"
    assert config.route(10000, "/index.html") == "web_service"


def test_route_host_matching():
    config = EnvoyConfig(BASIC_CONFIG)
    assert config.route(10000, "/", host="internal.example.com") == "internal_service"
    assert config.route(10000, "/", host="other.example.com") == "web_service"


def test_route_unknown_port_returns_none():
    assert EnvoyConfig(BASIC_CONFIG).route(9999, "/") is None


def test_request_succeeds_requires_endpoints():
    config = EnvoyConfig(BASIC_CONFIG)
    assert config.request_succeeds(10000, "/api")
    broken = yaml.safe_load(yaml.safe_dump(BASIC_CONFIG))
    broken["static_resources"]["clusters"][1]["load_assignment"]["endpoints"][0]["lb_endpoints"][0][
        "endpoint"
    ]["address"]["socket_address"]["port_value"] = 9201
    # still has an endpoint, so it succeeds; now remove load_assignment entirely
    del broken["static_resources"]["clusters"][1]["load_assignment"]
    assert not EnvoyConfig(broken).request_succeeds(10000, "/api")


def test_cluster_lb_policy_and_endpoints_queries():
    config = EnvoyConfig(BASIC_CONFIG)
    assert config.cluster_lb_policy("internal_service") == "LEAST_REQUEST"
    assert config.cluster_lb_policy("api_service") == "ROUND_ROBIN"  # default
    assert config.cluster_lb_policy("missing") is None
    assert ("127.0.0.1", 9100) in config.cluster_endpoints("internal_service")
