"""The multi-model leaderboard scheduler.

A leaderboard run evaluates many models over the same corpus, and running
them strictly one after another wastes both wall-clock sinks: while model
A's last shard is being scored (CPU), the endpoint sits idle; while model
B's first shard is being generated (I/O), the scoring pool sits idle —
one fill/drain bubble *per model*.  :class:`MultiModelScheduler` removes
all but one of those bubbles: it splits every model's requests into
planned shards (:mod:`repro.pipeline.planner`), cuts the shards into
batch units, and drives them all through **one** shared generation
executor and **one** shared scoring executor, so a leaderboard run
saturates the endpoint and the scoring pool simultaneously.

How the units are *ordered* is the scheduling policy:

* **Work stealing** (``steal=True``, the default): units live in per-job
  deques behind one shared claim point.  Whenever a generation worker —
  or the scoring consumer itself — goes idle, it steals the next batch
  from the job with the longest **predicted remaining seconds**
  (:class:`StealPolicy`), so a straggler model is attacked early and its
  bubbles are filled with other models' work.  Predictions come from the
  configured :class:`~repro.evalcluster.cost.CostModel`; with a
  :class:`~repro.evalcluster.calibration.CalibratedCostModel` they are
  *re-predicted as measurements arrive* — the store's version bump
  invalidates the remaining-seconds estimates, so the steal order adapts
  mid-run to observed rather than modelled durations.  Claims are also
  weighted by the *claimant*: with per-worker relative speeds known
  (``worker_speeds``, or a fleet backend's heartbeat-observed
  throughput), a markedly slow worker takes the cheapest next batch
  instead of the straggler's — the critical path stays with fast
  workers (:class:`StealPolicy`'s ``slow_worker_threshold``).
* **Static round-robin** (``steal=False``): the PR 4 behaviour — batch k
  of every job before batch k+1 of any job, released in exactly that
  order.  Kept as the baseline the stealing benchmark measures against.

Determinism of *results* is preserved under both policies: a model's
batches are claimed and released in request order (stealing only reorders
*between* models), every stage is a pure function, and records are folded
back per model — so each model's
:class:`~repro.pipeline.records.ModelEvaluation` is bit-identical to a
sequential ``evaluate_model`` run, for every executor backend, every
planner, and either scheduling policy.  Stealing reorders execution,
never record identity.

Each ``(model, shard)`` pair keeps its own checkpoint file derived from
the job's base path, so a killed leaderboard run resumes exactly where
every model's every shard stopped.

Under a degraded fleet backend the scheduler still terminates: a batch
whose fleet job was abandoned or quarantined comes back as error-marked
records (:class:`~repro.pipeline.executors.DegradedResult` slots, scores
zeroed and excluded from the means) rather than an exception, those
records are skipped by both the checkpoint and the calibration feed
(``finish_batch`` filters on ``record.error``), and the loss surfaces in
each :class:`~repro.pipeline.records.ModelEvaluation`'s ``coverage`` —
so a chaos run degrades the leaderboard's coverage column, never the
cost model or a resume.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest, Model
from repro.pipeline.checkpoint import PipelineCheckpoint, shard_checkpoint_path
from repro.pipeline.executors import Executor, close_executor, resolve_executor
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE, EvaluationPipeline
from repro.pipeline.planner import BatchSizer, CountPlanner, ShardPlan, ShardPlanner
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.scoring.cache import ScoreCache
from repro.scoring.compiled import ReferenceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evalcluster.calibration import CalibrationStore
    from repro.llm.remote import ModelSpec

__all__ = ["ModelJob", "MultiModelScheduler", "StealPolicy"]

#: A batch unit: the sub-pipeline owning the shard plus the requests of
#: one streaming batch within it.
Unit = tuple[EvaluationPipeline, list[GenerationRequest]]


class _ProducerFailure:
    """An exception captured on the producer thread, re-raised on the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


@dataclass
class ModelJob:
    """One model's slice of a leaderboard run.

    ``checkpoint`` is the per-job base path; every shard of the job derives
    its own file from it (``<base>.shard-ii-of-nn``).  Jobs in one
    scheduler must have distinct model names — the name keys the results.

    ``model_spec``, when set, offloads this job's whole
    generate→extract→score chain to the run's executor (see
    :class:`~repro.pipeline.stages.FleetGenerationStage`): the spec must
    name the same model.
    """

    model: Model
    requests: list[GenerationRequest] = field(default_factory=list)
    checkpoint: str | os.PathLike[str] | None = None
    model_spec: "ModelSpec | None" = None

    @property
    def name(self) -> str:
        return self.model.name


class StealPolicy:
    """Choose which job an idle worker steals its next batch from.

    The policy is a pure function of the schedule state, which is what
    makes steal order testable and deterministic: given the same remaining
    predictions and the same claim history, every run steals in the same
    sequence.

    The default picks the claimable job with the longest predicted
    remaining seconds — the job most likely to straggle — breaking ties on
    the lowest job index.  Jobs whose generation lock is currently held
    are deprioritised when any free-lock alternative exists: stealing from
    a busy job would serialise behind its in-flight batch instead of
    adding parallelism.

    With heterogeneous workers the *claimant* matters too: remaining
    seconds scale uniformly with the claimer's speed, so the argmax is
    unchanged — but handing the straggler's next batch to a slow worker
    stretches exactly the tail the steal exists to shorten.  A claimant
    whose observed relative speed (fleet throughput, normalised to the
    fleet mean) falls below ``slow_worker_threshold`` therefore takes the
    *cheapest* predicted next batch instead — enough to stay busy without
    camping on the critical path — whenever per-unit predictions are
    available.
    """

    #: Claimants slower than this fraction of the mean worker switch from
    #: longest-remaining to cheapest-next-batch picks.
    slow_worker_threshold = 0.75

    def choose(
        self,
        remaining: Sequence[float],
        claimable: Sequence[bool],
        busy: Sequence[bool] | None = None,
        worker_speed: float = 1.0,
        next_unit_seconds: Sequence[float] | None = None,
    ) -> int | None:
        """The job to claim from next, or None when nothing is claimable."""

        if worker_speed < self.slow_worker_threshold and next_unit_seconds is not None:
            def best(candidates: list[int]) -> int | None:
                if not candidates:
                    return None
                return min(candidates, key=lambda j: (next_unit_seconds[j], j))
        else:
            def best(candidates: list[int]) -> int | None:
                if not candidates:
                    return None
                return max(candidates, key=lambda j: (remaining[j], -j))

        candidates = [j for j in range(len(claimable)) if claimable[j]]
        if busy is not None:
            free = [j for j in candidates if not busy[j]]
            chosen = best(free)
            if chosen is not None:
                return chosen
        return best(candidates)

    def choose_for_consumer(
        self,
        next_unit_seconds: Sequence[float],
        claimable: Sequence[bool],
    ) -> int | None:
        """The job the *scoring consumer* should steal from, or None.

        The consumer's goal is the opposite of a generation worker's: it
        is the only scoring thread, so every second it spends preparing a
        batch is a second the CPU pipeline stalls.  It therefore grabs the
        *cheapest* predicted next batch — just enough work to stay busy —
        and leaves the stragglers to the dedicated workers.
        """

        candidates = [j for j in range(len(claimable)) if claimable[j]]
        if not candidates:
            return None
        return min(candidates, key=lambda j: (next_unit_seconds[j], j))


class MultiModelScheduler:
    """Interleave planned shards of several models over shared executors.

    Parameters mirror :class:`~repro.pipeline.sharding.ShardedEvaluationPipeline`
    — which is now the single-model client of this class — with two
    generalisations: ``jobs`` is a sequence of :class:`ModelJob`s instead
    of one model, and ``planner`` decides where each job's requests are
    cut (:class:`~repro.pipeline.planner.CountPlanner` by default,
    :class:`~repro.pipeline.planner.CostPlanner` to balance by predicted
    seconds).

    ``steal`` selects the scheduling policy (see the module docstring);
    ``cost_model`` prices batches for the steal policy's remaining-seconds
    estimates, ``calibration`` is the
    :class:`~repro.evalcluster.calibration.CalibrationStore` every
    sub-pipeline feeds measured durations into (when the cost model is a
    :class:`~repro.evalcluster.calibration.CalibratedCostModel` over the
    same store, stealing re-predicts as those measurements arrive).

    ``batch_sizer`` swaps the fixed-count batch cuts for
    :class:`~repro.pipeline.planner.BatchSizer`'s equal-predicted-seconds
    cuts — same request order, same number of batches or fewer, identical
    records; only where one batch ends and the next begins moves.

    Executors resolved here from spec strings are owned by (and torn down
    with) this scheduler; instances passed in belong to the caller.
    """

    def __init__(
        self,
        jobs: Sequence[ModelJob],
        *,
        shards: int = 1,
        planner: ShardPlanner | None = None,
        executor: str | Executor = "serial",
        generate_executor: str | Executor | None = None,
        max_workers: int = 1,
        rate_limit: float | None = None,
        lease_seconds: float | None = None,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        prefetch_batches: int = 2,
        steal: bool = True,
        steal_policy: StealPolicy | None = None,
        cost_model: CostModel | None = None,
        calibration: "CalibrationStore | None" = None,
        score_cache: ScoreCache | None = None,
        batch_sizer: BatchSizer | None = None,
        worker_speeds: Sequence[float] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")
        self.jobs = list(jobs)
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"jobs must have distinct model names; duplicated: {duplicates}")
        for job in self.jobs:
            if isinstance(job.checkpoint, PipelineCheckpoint):
                raise TypeError(
                    "scheduled runs derive one checkpoint file per (model, shard); pass "
                    "the base path (str or PathLike), not a PipelineCheckpoint instance"
                )
        self.shards = shards
        self.planner: ShardPlanner = planner if planner is not None else CountPlanner()
        self.max_workers = max_workers
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests
        self.batch_size = batch_size
        self.batch_sizer = batch_sizer
        self.prefetch_batches = prefetch_batches
        self.steal = steal
        self.steal_policy = steal_policy if steal_policy is not None else StealPolicy()
        if worker_speeds is not None and not worker_speeds:
            worker_speeds = None
        self.worker_speeds = list(worker_speeds) if worker_speeds is not None else None
        self.calibration = calibration
        # One score cache for every sub-pipeline of every model: different
        # models frequently emit identical answers, and the shared store is
        # what lets model B's lookups hit cards model A just wrote.
        self.score_cache = score_cache
        if cost_model is None:
            if calibration is not None:
                from repro.evalcluster.calibration import CalibratedCostModel

                cost_model = CalibratedCostModel(store=calibration)
            else:
                cost_model = CostModel()
        self.cost_model = cost_model
        # Executors are shared across every sub-pipeline of every model so
        # pools (threads, processes, the event-loop rate limiter) are built
        # once per leaderboard run.
        self._owns_executor = isinstance(executor, str)
        self._owns_generate_executor = isinstance(generate_executor, str)
        self.executor = resolve_executor(executor, max_workers, rate_limit, lease_seconds)
        self.generate_executor = (
            resolve_executor(generate_executor, max_workers, rate_limit, lease_seconds)
            if generate_executor is not None
            else None
        )
        self._pipelines: list[EvaluationPipeline] = []

    # ------------------------------------------------------------------
    # Sub-pipeline assembly
    # ------------------------------------------------------------------
    def plan_job(self, job: ModelJob) -> ShardPlan:
        """The shard plan the configured planner picks for ``job``."""

        return self.planner.plan(job.requests, self.shards)

    def job_shard_checkpoint(
        self, job: ModelJob, index: int, num_shards: int
    ) -> PipelineCheckpoint | None:
        """The checkpoint of ``job``'s shard ``index`` (None when disabled)."""

        if job.checkpoint is None:
            return None
        return PipelineCheckpoint(shard_checkpoint_path(job.checkpoint, index, num_shards))

    def _build_units(self) -> list[list[Unit]]:
        """Per-job batch units, in request order within each job.

        Empty shards (a job with zero requests) build no pipeline and no
        checkpoint file — there is nothing to resume and nothing to score.
        """

        per_job: list[list[Unit]] = []
        for job in self.jobs:
            plan = self.plan_job(job)
            units: list[Unit] = []
            for index, shard_requests in enumerate(plan.split(job.requests)):
                if not shard_requests:
                    continue
                pipeline = EvaluationPipeline(
                    job.model,
                    executor=self.executor,
                    generate_executor=self.generate_executor,
                    max_workers=self.max_workers,
                    store=self.store,
                    run_unit_tests=self.run_unit_tests,
                    checkpoint=self.job_shard_checkpoint(job, index, plan.num_shards),
                    batch_size=self.batch_size,
                    calibration=self.calibration,
                    score_cache=self.score_cache,
                    model_spec=job.model_spec,
                )
                self._pipelines.append(pipeline)
                if self.batch_sizer is not None:
                    # Calibration-aware cuts: contiguous batches of roughly
                    # equal predicted seconds, never more batches than the
                    # fixed-count split would make.  Contiguity keeps the
                    # merged records — and every ScoreCard — bit-identical.
                    for batch in self.batch_sizer.cut(shard_requests):
                        units.append((pipeline, batch))
                else:
                    for start in range(0, len(shard_requests), self.batch_size):
                        units.append((pipeline, shard_requests[start : start + self.batch_size]))
            per_job.append(units)
        return per_job

    # ------------------------------------------------------------------
    # Shared scheduling plumbing
    # ------------------------------------------------------------------
    def _generation_workers(self, units: int) -> int:
        """How many generation workers may prepare batches concurrently.

        Up to ``prefetch_batches`` batches are in flight at once, so their
        endpoint waits overlap *across* batches (and models) instead of
        serialising in one producer loop — this is what actually saturates
        a latency-bound endpoint.  A shared token-bucket rate limiter
        forces a single worker: the bucket globally paces requests, and
        draining it from several event loops at once would race its clock.
        """

        # The generate stage falls back to the scoring executor when no
        # dedicated generation backend is configured, so check whichever
        # executor will actually carry the batches.
        if self._limited_generation():
            return 1
        return max(1, min(self.prefetch_batches, units))

    def _limited_generation(self) -> bool:
        """Whether a shared token bucket paces generation (single drainer)."""

        generation_backend = self.generate_executor or self.executor
        return getattr(generation_backend, "limiter", None) is not None

    def _worker_speed(self, worker_index: int) -> float:
        """The relative speed of generation worker ``worker_index``.

        Explicit ``worker_speeds`` win; otherwise a fleet backend's
        heartbeat-observed relative speeds
        (:meth:`~repro.evalcluster.fleet.FleetExecutor.worker_relative_speeds`)
        are cycled onto the scheduler's worker threads.  ``1.0`` — the
        homogeneous assumption, and the exact pre-weighting behaviour —
        when nothing has been observed yet.
        """

        speeds: Sequence[float] | None = self.worker_speeds
        if speeds is None:
            generation_backend = self.generate_executor or self.executor
            observed = getattr(generation_backend, "worker_relative_speeds", None)
            if observed is not None:
                speeds = observed() or None
        if not speeds:
            return 1.0
        return float(speeds[worker_index % len(speeds)])

    def _job_cost_model(self, job: ModelJob) -> CostModel:
        """The cost model pricing ``job``'s batches.

        A calibrated model is scoped to the job's endpoint via
        ``for_model`` so per-model latency skew (a ``per_model``
        calibration store records it) steers the steal order; with a
        single-key store the scoped copy predicts identically to the
        shared model, and a plain :class:`CostModel` is used as-is.
        """

        for_model = getattr(self.cost_model, "for_model", None)
        if callable(for_model):
            return for_model(job.name)
        return self.cost_model

    def _predict_unit_seconds(
        self, batch: Sequence[GenerationRequest], cost_model: CostModel | None = None
    ) -> float:
        """Predicted seconds of one batch unit (cold cache, warm within)."""

        model = cost_model if cost_model is not None else self.cost_model
        return model.predict_problems_seconds(request.problem for request in batch)

    def _prediction_version(self) -> int:
        """The cost model's input version — bumps force re-prediction."""

        store = getattr(self.cost_model, "store", None)
        return getattr(store, "version", 0)

    def run_iter(self) -> Iterator[tuple[str, EvaluationRecord]]:
        """Stream ``(model_name, record)`` pairs across all jobs.

        Within a job, records arrive strictly in request order (each
        sub-pipeline's checkpoint and the per-model fold rely on it);
        between jobs the stream weaves according to the configured
        scheduling policy.  Generation workers run the generation-side
        half of every batch — at most ``prefetch_batches`` in flight —
        while this thread scores and yields.  A per-job lock keeps one
        model's batches from generating *concurrently* (models need not
        be thread-safe), though under the in-flight window a job's batches
        may prepare out of claim order; that is safe because generation is
        per-request deterministic — the same contract the async backend's
        within-batch overlap already relies on.
        """

        per_job = self._build_units()
        if self.steal:
            yield from self._run_iter_steal(per_job)
        else:
            yield from self._run_iter_static(per_job)

    # ------------------------------------------------------------------
    # Static round-robin (the steal=False baseline)
    # ------------------------------------------------------------------
    def _run_iter_static(
        self, per_job: list[list[Unit]]
    ) -> Iterator[tuple[str, EvaluationRecord]]:
        """Batch k of every job before batch k+1 of any job, released in
        exactly that order — deterministic, fair, and per-job ordered."""

        order: list[tuple[int, EvaluationPipeline, list[GenerationRequest]]] = [
            (job_index, *per_job[job_index][unit_index])
            for unit_index in range(max((len(units) for units in per_job), default=0))
            for job_index in range(len(per_job))
            if unit_index < len(per_job[job_index])
        ]

        stop = threading.Event()
        ready = threading.Condition()
        results: dict[int, object] = {}
        next_claim = [0]
        in_flight = threading.Semaphore(self.prefetch_batches)
        job_locks = [threading.Lock() for _ in self.jobs]

        def produce() -> None:
            while not stop.is_set():
                if not in_flight.acquire(timeout=0.05):
                    continue  # re-check stop while the window is full
                with ready:
                    if next_claim[0] >= len(order):
                        in_flight.release()
                        return
                    index = next_claim[0]
                    next_claim[0] += 1
                job_index, pipeline, batch = order[index]
                try:
                    with job_locks[job_index]:
                        entry: object = (job_index, pipeline, pipeline.prepare_batch(batch))
                except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                    entry = _ProducerFailure(exc)
                with ready:
                    results[index] = entry
                    ready.notify_all()
                if isinstance(entry, _ProducerFailure):
                    return

        workers = [
            threading.Thread(target=produce, name=f"leaderboard-generator-{i}", daemon=True)
            for i in range(self._generation_workers(len(order)))
        ]
        for worker in workers:
            worker.start()
        try:
            for index in range(len(order)):
                with ready:
                    while index not in results:
                        if not any(worker.is_alive() for worker in workers):
                            break
                        ready.wait(timeout=0.05)
                    entry = results.pop(index, None)
                if entry is None:
                    raise RuntimeError(
                        "generation workers exited without producing batch "
                        f"{index} of {len(order)}"
                    )  # pragma: no cover - defensive; a failure entry is the normal path
                if isinstance(entry, _ProducerFailure):
                    raise entry.error
                job_index, pipeline, prepared = entry
                name = self.jobs[job_index].name
                for record in pipeline.finish_batch(prepared):
                    yield name, record
                in_flight.release()
        finally:
            # Reached on completion, on error, and when the consumer
            # abandons the stream (the resumable-interrupt case): unblock
            # and retire the workers before handing control back.
            stop.set()
            with ready:
                ready.notify_all()
            for worker in workers:
                worker.join(timeout=30.0)

    # ------------------------------------------------------------------
    # Work stealing (the steal=True default)
    # ------------------------------------------------------------------
    def _run_iter_steal(
        self, per_job: list[list[Unit]]
    ) -> Iterator[tuple[str, EvaluationRecord]]:
        """Dynamic claiming: idle capacity steals from the longest job.

        Per-job deques share one claim point guarded by ``ready``; a
        worker (or the idle consumer) claims the next unclaimed unit of
        the job the :class:`StealPolicy` picks — longest predicted
        remaining seconds first, re-predicted whenever the calibrated cost
        model absorbed new measurements.  Prepared units are *released*
        (scored, checkpointed, yielded) in claim order within each job,
        but across jobs strictly in readiness order: a straggler batch
        never blocks another model's finished work, which is exactly the
        bubble the static schedule pays.
        """

        total = sum(len(units) for units in per_job)
        if total == 0:
            return

        # Predicted seconds per unit and per-job remaining (unclaimed) sums,
        # priced by each job's (possibly endpoint-scoped) cost model.
        job_cost_models = [self._job_cost_model(job) for job in self.jobs]
        unit_seconds = [
            [
                self._predict_unit_seconds(batch, job_cost_models[job_index])
                for _pipeline, batch in units
            ]
            for job_index, units in enumerate(per_job)
        ]
        remaining = [sum(seconds) for seconds in unit_seconds]
        seen_version = [self._prediction_version()]

        stop = threading.Event()
        ready = threading.Condition()
        results: dict[tuple[int, int], object] = {}
        next_claim = [0] * len(per_job)
        next_release = [0] * len(per_job)
        in_flight = threading.Semaphore(self.prefetch_batches)
        job_locks = [threading.Lock() for _ in per_job]
        # Worker-claimed units whose prepared entry has not been stored yet
        # — while any exist, a result is imminent and the consumer should
        # wait for it rather than block its scoring thread on generation.
        in_prep = [0]
        # The consumer may only prepare batches itself when no shared token
        # bucket paces generation — a limiter must have a single drainer.
        consumer_may_steal = not self._limited_generation()

        # Re-prediction sweeps run under the ``ready`` lock, and with
        # calibration wired in the store's version bumps on *every*
        # released batch — so the sweep is throttled adaptively: after a
        # sweep that took d seconds, the next one may run no sooner than
        # max(50 ms, 20 * d) later, bounding sweep time to ~5% of the
        # claim point's wall-clock.  Steal order is a heuristic, so acting
        # on predictions a few batches stale never affects records.
        repredict_not_before = [0.0]

        def repredict_locked() -> None:
            """Re-price unclaimed units when the cost model learned more."""

            version = self._prediction_version()
            if version == seen_version[0]:
                return
            now = time.monotonic()
            if now < repredict_not_before[0]:
                return
            seen_version[0] = version
            for job_index, units in enumerate(per_job):
                for unit_index in range(next_claim[job_index], len(units)):
                    unit_seconds[job_index][unit_index] = self._predict_unit_seconds(
                        units[unit_index][1], job_cost_models[job_index]
                    )
                remaining[job_index] = sum(unit_seconds[job_index][next_claim[job_index] :])
            elapsed = time.monotonic() - now
            repredict_not_before[0] = now + max(0.05, 20.0 * elapsed)

        def take_locked(job_index: int) -> tuple[int, int]:
            unit_index = next_claim[job_index]
            next_claim[job_index] += 1
            remaining[job_index] -= unit_seconds[job_index][unit_index]
            return job_index, unit_index

        def claim_locked(worker_speed: float = 1.0) -> tuple[int, int] | None:
            """Claim the policy's next unit for a worker (holding ``ready``)."""

            repredict_locked()
            claimable = [next_claim[j] < len(per_job[j]) for j in range(len(per_job))]
            busy = [lock.locked() for lock in job_locks]
            next_seconds = [
                unit_seconds[j][next_claim[j]] if claimable[j] else float("inf")
                for j in range(len(per_job))
            ]
            job_index = self.steal_policy.choose(
                remaining,
                claimable,
                busy,
                worker_speed=worker_speed,
                next_unit_seconds=next_seconds,
            )
            if job_index is None:
                return None
            return take_locked(job_index)

        def claim_for_consumer_locked() -> tuple[int, int] | None:
            """Claim a unit the idle consumer can prepare itself.

            Only units that are immediately releasable after preparation
            (the job's next unreleased unit, no batch of the job in
            flight) qualify — anything else would leave the scoring
            thread holding work it cannot finish — and the pick is the
            *cheapest* predicted batch, because every second spent here
            is a second the CPU pipeline stalls.
            """

            repredict_locked()
            claimable = [
                next_claim[j] < len(per_job[j])
                and next_claim[j] == next_release[j]
                and not job_locks[j].locked()
                for j in range(len(per_job))
            ]
            next_seconds = [
                unit_seconds[j][next_claim[j]] if claimable[j] else 0.0
                for j in range(len(per_job))
            ]
            job_index = self.steal_policy.choose_for_consumer(next_seconds, claimable)
            if job_index is None:
                return None
            return take_locked(job_index)

        def produce(worker_index: int) -> None:
            while not stop.is_set():
                if not in_flight.acquire(timeout=0.05):
                    continue  # re-check stop while the window is full
                with ready:
                    claim = claim_locked(self._worker_speed(worker_index))
                    if claim is None:
                        in_flight.release()
                        return
                    in_prep[0] += 1
                job_index, unit_index = claim
                pipeline, batch = per_job[job_index][unit_index]
                try:
                    with job_locks[job_index]:
                        entry: object = (pipeline, pipeline.prepare_batch(batch))
                except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                    entry = _ProducerFailure(exc)
                with ready:
                    results[(job_index, unit_index)] = entry
                    in_prep[0] -= 1
                    ready.notify_all()
                if isinstance(entry, _ProducerFailure):
                    return

        workers = [
            threading.Thread(
                target=produce, args=(i,), name=f"leaderboard-stealer-{i}", daemon=True
            )
            for i in range(self._generation_workers(total))
        ]
        for worker in workers:
            worker.start()
        try:
            released = 0
            while released < total:
                stolen: tuple[int, int] | None = None
                entry: object = None
                job_index = -1
                with ready:
                    while True:
                        releasable = [
                            j
                            for j in range(len(per_job))
                            if (j, next_release[j]) in results
                        ]
                        if releasable:
                            # Deterministic pick among ready jobs: longest
                            # predicted remaining first (the straggler's
                            # records should stream out, not queue up).
                            job_index = max(releasable, key=lambda j: (remaining[j], -j))
                            entry = results.pop((job_index, next_release[job_index]))
                            # The batch leaves the prepared-and-waiting
                            # window the moment the consumer takes it:
                            # freeing the slot *before* scoring lets a
                            # worker start the straggler's next batch
                            # while this one is still on the CPU —
                            # holding it through finish_batch would
                            # serialise generation behind scoring.
                            in_flight.release()
                            break
                        if consumer_may_steal and in_prep[0] == 0:
                            # Nothing prepared and nothing being prepared:
                            # the consumer is genuinely idle, so it steals
                            # a batch itself rather than sleeping.
                            stolen = claim_for_consumer_locked()
                            if stolen is not None:
                                break
                        if not any(worker.is_alive() for worker in workers):
                            raise RuntimeError(
                                "generation workers exited with "
                                f"{total - released} of {total} batches unreleased"
                            )  # pragma: no cover - defensive; failures arrive as entries
                        ready.wait(timeout=0.05)
                if stolen is not None:
                    # The scoring consumer went idle: prepare the batch
                    # itself instead of waiting on the generation workers.
                    job_index, unit_index = stolen
                    pipeline, batch = per_job[job_index][unit_index]
                    with job_locks[job_index]:
                        entry = (pipeline, pipeline.prepare_batch(batch))
                if isinstance(entry, _ProducerFailure):
                    raise entry.error
                pipeline, prepared = entry
                name = self.jobs[job_index].name
                for record in pipeline.finish_batch(prepared):
                    yield name, record
                with ready:
                    next_release[job_index] += 1
                    ready.notify_all()
                released += 1
        finally:
            stop.set()
            with ready:
                ready.notify_all()
            for worker in workers:
                worker.join(timeout=30.0)

    def run(self) -> dict[str, ModelEvaluation]:
        """Evaluate every job and fold records into per-model evaluations.

        The mapping preserves job order; each evaluation's records are in
        that model's request order — bit-identical to sequential
        per-model runs under either scheduling policy.
        """

        records: dict[str, list[EvaluationRecord]] = {job.name: [] for job in self.jobs}
        for name, record in self.run_iter():
            records[name].append(record)
        return {
            job.name: ModelEvaluation(model_name=job.name, records=records[job.name])
            for job in self.jobs
        }

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the sub-pipelines' query pools and any owned executors."""

        for pipeline in self._pipelines:
            pipeline.query.close()
        if self._owns_executor:
            close_executor(self.executor)
        if self._owns_generate_executor and self.generate_executor is not None:
            close_executor(self.generate_executor)

    def __enter__(self) -> "MultiModelScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
