"""Fleet-wide generation offload — the latency-bound endpoint guard.

The parent-generation fleet path keeps the model in the coordinator: the
parent process pays every endpoint round-trip serially while the fleet
only scores.  Generation *offload* ships the whole
generate→extract→score chain to the workers as picklable
:class:`~repro.pipeline.stages.GenerationTask` envelopes built from a
:class:`~repro.llm.remote.ModelSpec` — each worker rebuilds the model
once per process and pays the endpoint latency concurrently with its
peers, pacing itself through the store's server-side token bucket so N
processes together still respect the endpoint's global rate limit.

Two guards:

1. **Throughput** — on a latency-bound replay endpoint, the
   fleet-offloaded run must beat the parent-generation fleet run end to
   end by >= 1.5x with four workers (measured ~2.5-3.5x: the parent path
   serialises ``N * latency`` while offload pays ``~N * latency / 4``),
   with records bit-identical and per-worker throughput surfaced in the
   master stats footer.
2. **Pacing** — four workers hammering one distributed bucket must be
   granted tokens no faster than the configured global rate: the grant
   span has a hard floor of ``(grants - burst) / rate`` and no sliding
   one-second window may exceed ``rate + burst`` grants.

Both are same-machine ratio/derivation guards, so a slow CI runner
cannot flake them.  The fleet event log lands where
``REPRO_FLEET_GEN_EVENTS`` points and is uploaded as a CI artifact.
"""

from __future__ import annotations

import math
import os
import threading
import time

from benchmarks.common import FAST_MODE, artifact_path, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.fleet import (
    DistributedTokenBucket,
    FleetExecutor,
    RemoteStore,
    StoreServer,
)
from repro.llm.remote import ModelSpec, ReplayTransport
from repro.pipeline import EvaluationPipeline
from repro.scoring.compiled import ReferenceStore

MODEL_NAME = "gpt-4"

#: Per-request endpoint latency.  The guard's lever: the parent path pays
#: this serially per request, the offloaded fleet pays it 4-way
#: concurrently, so the latency share of the wall-clock divides by the
#: worker count.
LATENCY_SECONDS = 0.02 if FAST_MODE else 0.012

FLEET_WORKERS = 4

#: A deliberately generous global rate: the offloaded workers *do* debit
#: the distributed bucket on every request (the wiring is exercised), but
#: pacing never becomes the bottleneck the throughput ratio measures.
GENEROUS_RATE = 50_000.0

#: The guard: fleet-offloaded generation must beat the parent-generation
#: fleet end to end by at least this factor on the latency-bound corpus.
MIN_SPEEDUP = 1.5

#: Where the offloaded fleet's submit/claim/done/requeue event log lands
#: for the CI artifact.
FLEET_GEN_EVENTS_PATH = os.environ.get("REPRO_FLEET_GEN_EVENTS") or artifact_path(
    "BENCH_fleet_generation_events.jsonl"
)


def _replay_spec(dataset, requests) -> ModelSpec:
    """A picklable spec replaying the simulated model's recorded responses."""

    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    inner = driver.requests(MODEL_NAME)[0]
    responses = {request.prompt(): inner.generate(request.problem) for request in requests}
    return ModelSpec(
        name=MODEL_NAME,
        transport=ReplayTransport(responses, latency_seconds=LATENCY_SECONDS),
        rate_limit=GENEROUS_RATE,
        burst=64,
    )


def _fleet_executor(dataset) -> FleetExecutor:
    executor = FleetExecutor(
        num_workers=FLEET_WORKERS,
        lease_seconds=60.0,
        heartbeat_seconds=0.25,
        event_log=FLEET_GEN_EVENTS_PATH,
    )
    executor.warm(list(dataset))
    # Boot the store and the worker processes outside the timed region:
    # interpreter start-up is a fixed fleet cost, not throughput.
    executor.map(math.factorial, list(range(FLEET_WORKERS)))
    return executor


def test_fleet_generation_offload_throughput(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    _, requests = driver.requests(MODEL_NAME)
    spec = _replay_spec(dataset, requests)

    # --- parent-generation fleet baseline: the coordinator pays every ----
    # --- endpoint round-trip serially, the fleet only scores ------------
    parent_executor = _fleet_executor(dataset)
    try:
        start = time.perf_counter()
        parent_eval = EvaluationPipeline(
            spec.build(), executor=parent_executor, store=ReferenceStore()
        ).run(requests)
        parent_seconds = time.perf_counter() - start
    finally:
        parent_executor.close()

    # --- fleet-offloaded path: generate AND score on the workers ---------
    executor = _fleet_executor(dataset)

    def run_offloaded():
        pipeline = EvaluationPipeline(
            spec.build(),
            model_spec=spec,
            executor=executor,
            store=ReferenceStore(),
        )
        try:
            return pipeline.run(requests)
        finally:
            pipeline.close()

    try:
        offloaded_eval = benchmark.pedantic(run_offloaded, rounds=1, iterations=1)
        offloaded_seconds = benchmark.stats.stats.mean
        stats = executor.stats()
    finally:
        executor.close()
    speedup = parent_seconds / offloaded_seconds

    benchmark.extra_info["requests"] = len(requests)
    benchmark.extra_info["latency_ms"] = LATENCY_SECONDS * 1000
    benchmark.extra_info["parent_seconds"] = round(parent_seconds, 4)
    benchmark.extra_info["offloaded_seconds"] = round(offloaded_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["fleet_stats"] = stats.describe()

    print(
        f"\nFleet generation offload over {len(requests)} zero-shot requests "
        f"({MODEL_NAME} behind a {LATENCY_SECONDS * 1000:.0f}ms replay endpoint, "
        f"{FLEET_WORKERS} worker processes):"
        f"\n  parent-generation fleet      : {parent_seconds:6.2f} s"
        f"\n  fleet-offloaded generation   : {offloaded_seconds:6.2f} s"
        f"\n  speedup                      : {speedup:6.2f} x"
        f"\n  {stats.describe()}"
    )

    # Offload must not move a single score...
    assert offloaded_eval.records == parent_eval.records

    # ...no job may be lost to the lease machinery on a healthy run...
    assert stats.pending == 0 and stats.claimed == 0 and stats.abandoned == 0

    # ...the workers must have reported their observed throughput (the
    # stealing scheduler's worker_relative_speeds feeds on this)...
    assert stats.worker_throughput, "no worker published a throughput EWMA"
    assert any(
        "generate_rps" in rates for rates in stats.worker_throughput.values()
    ), f"no worker observed generation throughput: {stats.worker_throughput}"

    # ...and offload must actually deliver the wall-clock win.
    assert speedup >= MIN_SPEEDUP, (
        f"offloaded generation speedup {speedup:.2f}x fell below the "
        f"{MIN_SPEEDUP}x floor (parent {parent_seconds:.2f}s, "
        f"offloaded {offloaded_seconds:.2f}s)"
    )


def test_distributed_rate_limit_is_respected():
    """N clients of one server-side bucket never exceed the global rate.

    Four threads — each with its own connection and its own
    :class:`DistributedTokenBucket`, exactly a worker process's view —
    hammer one bucket.  The grant timeline must show both properties a
    *local* bucket per worker would violate by a factor of four: the full
    span has a hard floor of ``(grants - burst) / rate`` seconds, and no
    sliding one-second window holds more than ``rate + burst`` grants.
    """

    rate, burst = 20.0, 2
    clients, acquires_each = 4, 10
    grants: list[float] = []
    lock = threading.Lock()

    with StoreServer() as server:
        server.start()

        def hammer() -> None:
            store = RemoteStore(server.address)
            bucket = DistributedTokenBucket(store, "bench-pacer", rate, burst=burst)
            try:
                for _ in range(acquires_each):
                    bucket.acquire()
                    with lock:
                        grants.append(time.monotonic())
            finally:
                store.close()

        threads = [threading.Thread(target=hammer) for _ in range(clients)]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    total = clients * acquires_each
    assert len(grants) == total
    timeline = sorted(grant - start for grant in grants)
    span = timeline[-1] - timeline[0]
    floor = (total - burst) / rate
    print(
        f"\nDistributed pacing: {clients} clients x {acquires_each} acquires at "
        f"rate={rate}/s burst={burst}: span {span:.2f}s (floor {floor:.2f}s)"
    )

    # The global rate is a hard ceiling: all grants cannot fit in less
    # wall-clock than the bucket refills tokens (10% scheduling slack).
    assert span >= floor * 0.9, (
        f"{total} grants in {span:.2f}s beats the global rate floor of "
        f"{floor:.2f}s — the bucket is not globally enforced"
    )

    # And no burst-window violation: any sliding 1s window holds at most
    # rate * 1s + burst grants (plus one for boundary jitter).
    window, ceiling = 1.0, int(rate * 1.0) + burst + 1
    left = 0
    for right, stamp in enumerate(timeline):
        while stamp - timeline[left] > window:
            left += 1
        in_window = right - left + 1
        assert in_window <= ceiling, (
            f"{in_window} grants inside one {window}s window exceeds the "
            f"rate*window+burst ceiling of {ceiling}"
        )
