"""The token bucket's wall-clock path: real pacing under concurrent acquirers.

The virtual-clock path is exercised throughout the async executor tests;
these are the real-time guarantees a live endpoint depends on — monotonic
borrow-token accounting, strictly increasing waits under contention, and
actual sleeping in the blocking/async acquire helpers.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.utils.ratelimit import TokenBucket


def test_burst_is_free_then_waits_grow():
    bucket = TokenBucket(rate=100.0, burst=3, virtual_clock=False)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    first = bucket.try_acquire()
    second = bucket.try_acquire()
    assert 0.0 < first <= 0.011  # one refill interval (clock slack aside)
    assert second > first  # borrowing queues: later callers wait longer


def test_waits_strictly_increase_under_concurrent_acquirers():
    bucket = TokenBucket(rate=1000.0, burst=1, virtual_clock=False)
    waits: list[float] = []
    lock = threading.Lock()

    def worker():
        wait = bucket.try_acquire()
        with lock:
            waits.append(wait)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert bucket.acquired == 8
    # one immediate token, then a distinct, increasing slot per borrower
    # (the exact order threads reached the lock is free, the *set* of
    # assigned slots is not)
    positive = sorted(wait for wait in waits if wait > 0.0)
    assert len(positive) == 7
    for earlier, later in zip(positive, positive[1:]):
        assert later > earlier
    # slots are ~1/rate apart: the ideal spacing, bounded loosely for slow
    # machines (refill during the race can only shrink waits, never grow them)
    assert positive[-1] <= 7 * (1.0 / 1000.0) + 0.05


def test_blocking_acquire_actually_paces():
    bucket = TokenBucket(rate=200.0, burst=1, virtual_clock=False)
    start = time.monotonic()
    for _ in range(5):
        bucket.acquire()
    elapsed = time.monotonic() - start
    # 4 paced acquisitions at 5 ms each; generous lower bound for clock slack
    assert elapsed >= 0.015
    assert bucket.waited_seconds > 0.0


def test_async_acquire_paces_concurrent_tasks():
    bucket = TokenBucket(rate=200.0, burst=1, virtual_clock=False)

    async def run():
        start = time.monotonic()
        await asyncio.gather(*(bucket.acquire_async() for _ in range(5)))
        return time.monotonic() - start

    elapsed = asyncio.run(run())
    assert elapsed >= 0.015
    assert bucket.acquired == 5


def test_virtual_clock_never_sleeps():
    bucket = TokenBucket(rate=10.0, burst=1)  # 100 ms per token, virtual
    start = time.monotonic()
    total = sum(bucket.acquire() for _ in range(5))
    elapsed = time.monotonic() - start
    assert total >= 0.4  # 4 tokens' worth of accounted throttle time
    assert elapsed < 0.2  # fast-forwarded, not slept
    assert bucket.waited_seconds == total
