"""A remote-endpoint adapter over any local model.

The paper's query module exists because remote endpoints are slow and
rate-limited: each request spends tens to hundreds of milliseconds on the
wire, and the only way to finish a 1000-problem sweep in reasonable time
is to keep many requests in flight (§3.1, ray in the original).

:class:`RemoteEndpointModel` turns any deterministic local model into that
workload shape.  It answers with exactly the wrapped model's responses but
charges a per-request network latency: the synchronous ``generate`` blocks
(as a naive sequential client would), while ``generate_async`` awaits the
same latency on the event loop so the async query path can overlap
hundreds of in-flight requests.  Scores are therefore bit-identical
between the wrapped and unwrapped model — only the wall-clock differs.
"""

from __future__ import annotations

import asyncio
import time

from repro.dataset.problem import Problem
from repro.llm.interface import Model
from repro.utils.rng import DeterministicRNG

__all__ = ["RemoteEndpointModel"]


class RemoteEndpointModel:
    """Wrap ``inner`` as a simulated remote endpoint with per-request latency.

    Parameters
    ----------
    inner:
        The model actually producing responses.
    latency_seconds:
        Mean one-way service time per request.
    jitter_seconds:
        Half-width of the deterministic per-request latency spread; the
        latency of a request depends only on ``(problem_id, sample_index,
        seed)``, so repeated runs see identical delays.
    seed:
        Seed of the latency jitter.
    """

    def __init__(
        self,
        inner: Model,
        latency_seconds: float = 0.05,
        jitter_seconds: float = 0.0,
        seed: int = 1,
    ) -> None:
        if latency_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latencies must be non-negative")
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.jitter_seconds = jitter_seconds
        self.seed = seed
        #: Total network time charged so far (sum over requests, not wall time).
        self.latency_charged = 0.0

    @property
    def name(self) -> str:
        return self.inner.name

    def request_latency(self, problem: Problem, sample_index: int = 0) -> float:
        """The deterministic latency this request pays."""

        if self.jitter_seconds == 0.0:
            return self.latency_seconds
        rng = DeterministicRNG(self.seed).child("remote-latency", problem.problem_id, sample_index)
        return max(0.0, self.latency_seconds + rng.uniform(-self.jitter_seconds, self.jitter_seconds))

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            time.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)

    async def generate_async(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            await asyncio.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)
