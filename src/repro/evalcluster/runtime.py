"""The executable cluster runtime: run real job payloads through the queue.

:func:`run_jobs` is the real-execution counterpart of
:func:`~repro.evalcluster.simulation.simulate_evaluation`: it stands up a
master and ``num_workers`` in-process workers, submits the jobs, drives
the claim loop to completion and returns every report.  Workers run in
:class:`~repro.evalcluster.worker.RealExecution` mode, so each job's
payload is actually executed and its result is collected through the same
job/claim/report protocol the Figure 5 simulation uses.

Execution is cooperative (the event queue serialises worker turns), which
makes the runtime fully deterministic: the same job list always produces
the same reports regardless of the worker count.  Thread-, process- and
remote-backed worker loops are ROADMAP follow-ons that slot in behind the
same protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.master import EvaluationJob, JobReport, Master
from repro.evalcluster.registry_cache import PullThroughCache
from repro.evalcluster.worker import RealExecution, Worker

__all__ = ["run_jobs", "run_payloads"]

WorkerFactory = Callable[[int, Master, EventQueue], Worker]


def _default_worker(index: int, master: Master, events: EventQueue) -> Worker:
    return Worker(
        worker_id=f"worker-{index:03d}",
        master=master,
        events=events,
        internet=SharedLink(1000.0),
        shared_cache=PullThroughCache(),
        boot_seconds=0.0,
        runner=RealExecution(),
    )


def run_jobs(
    jobs: Sequence[EvaluationJob],
    num_workers: int = 4,
    lease_seconds: float | None = None,
    worker_factory: WorkerFactory | None = None,
) -> dict[str, JobReport]:
    """Execute every job's payload on an in-process cluster; reports by job id.

    With ``lease_seconds`` set, claimed jobs carry a deadline and the run
    is fault tolerant: when the queue drains with jobs still unreported —
    a worker died between claim and report — the clock is advanced past
    the earliest expired lease, the master re-enqueues the orphaned jobs
    (once each), and the surviving idle workers are woken to pick them up.
    ``worker_factory`` customises worker construction (tests use it to
    inject workers that die mid-job).
    """

    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    events = EventQueue()
    master = Master(lease_seconds=lease_seconds)
    master.submit(list(jobs))
    factory = worker_factory or _default_worker
    workers = [factory(i, master, events) for i in range(num_workers)]
    for worker in workers:
        worker.start()
    events.run()

    while lease_seconds is not None and not master.all_done():
        expiry = master.next_lease_expiry()
        if expiry is None:  # pragma: no cover - defensive
            break
        # Advance the simulated clock to the deadline, reap, and wake every
        # idle survivor (a dead worker never reached the idle state, so it
        # is never restarted).
        events.schedule(max(0.0, expiry - events.now), lambda: None)
        events.run()
        master.reap_expired(events.now)
        for worker in workers:
            if worker.idle:
                events.schedule(0.0, worker._claim_next)
        events.run()

    if not master.all_done():  # pragma: no cover - defensive
        raise RuntimeError("cluster runtime drained without completing every job")
    return master.reports()


def run_payloads(payloads: Sequence[Callable[[], Any]], num_workers: int = 4) -> list[Any]:
    """Execute callables on the cluster runtime, results in submission order.

    A payload that raised is surfaced as the exception text of its failed
    report, mirroring how a failed unit-test script reports its stderr.
    """

    jobs = [
        EvaluationJob(job_id=f"job-{index:06d}", problem_id=f"payload-{index:06d}", payload=payload)
        for index, payload in enumerate(payloads)
    ]
    reports = run_jobs(jobs, num_workers=num_workers)
    return [reports[job.job_id].result for job in jobs]
