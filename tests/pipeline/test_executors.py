"""Executor backends: ordered-map semantics and cross-backend determinism."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.pipeline.executors import (
    AsyncExecutor,
    ClusterExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    close_executor,
    resolve_executor,
)

MODELS = ["gpt-4", "llama-2-70b-chat"]


def _square(x):
    """Module-level so the process backend can pickle it."""

    return x * x


@pytest.mark.parametrize(
    "executor",
    [
        SerialExecutor(),
        ThreadedExecutor(max_workers=4),
        ClusterExecutor(num_workers=4),
        AsyncExecutor(max_concurrency=4),
        AsyncExecutor(max_concurrency=4, rate_limit=1000.0),
        ProcessExecutor(max_workers=2),
    ],
    ids=["serial", "thread", "cluster", "async", "async-throttled", "process"],
)
def test_map_preserves_order(executor):
    tasks = list(range(37))
    try:
        assert executor.map(_square, tasks) == [x * x for x in tasks]
    finally:
        close_executor(executor)


def test_cluster_executor_surfaces_task_failure():
    def boom(x):
        if x == 3:
            raise ValueError("bad task")
        return x

    with pytest.raises(RuntimeError, match="bad task"):
        ClusterExecutor(num_workers=2).map(boom, list(range(5)))


def test_cluster_executor_more_workers_same_results():
    tasks = list(range(50))
    one = ClusterExecutor(num_workers=1).map(lambda x: x + 1, tasks)
    many = ClusterExecutor(num_workers=16).map(lambda x: x + 1, tasks)
    assert one == many


def test_async_executor_awaits_coroutine_functions():
    async def double(x):
        return x * 2

    assert AsyncExecutor(max_concurrency=3).map(double, list(range(10))) == [
        x * 2 for x in range(10)
    ]


def test_async_executor_map_does_not_consume_the_request_budget():
    """The token bucket meters endpoint requests (the generate path), not
    generic stage work: mapping CPU tasks must leave the budget untouched,
    or scoring would double-count every record against the endpoint."""

    executor = AsyncExecutor(max_concurrency=8, rate_limit=100.0)
    assert executor.map(_square, list(range(20))) == [x * x for x in range(20)]
    assert executor.limiter is not None
    assert executor.limiter.acquired == 0
    assert executor.limiter.waited_seconds == 0.0


def test_threaded_executor_pool_is_persistent_until_closed():
    with ThreadedExecutor(max_workers=2) as executor:
        executor.map(_square, list(range(8)))
        first = executor._pool.raw
        executor.map(_square, list(range(8)))
        assert executor._pool.raw is first
    assert executor._pool.raw is None
    # Still usable after close — the pool is rebuilt lazily.
    assert executor.map(_square, [3]) == [9]
    close_executor(executor)


def test_process_executor_is_persistent_and_chunked():
    with ProcessExecutor(max_workers=2) as executor:
        assert executor.map(_square, list(range(25))) == [x * x for x in range(25)]
        first = executor._pool.raw
        assert executor.map(_square, list(range(5))) == [x * x for x in range(5)]
        assert executor._pool.raw is first
        assert executor.map(_square, []) == []
    assert executor._pool.raw is None


def test_process_executor_warm_requires_fresh_pool(small_original_problems):
    executor = ProcessExecutor(max_workers=1)
    executor.map(_square, [1, 2])
    with pytest.raises(RuntimeError, match="before the first map"):
        executor.warm(list(small_original_problems)[:2])
    executor.close()
    # After close the pool is gone and warm() applies to the next one.
    executor.warm(list(small_original_problems)[:2])
    assert executor.map(_square, [4]) == [16]
    executor.close()


def test_resolve_executor_specs():
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert isinstance(resolve_executor("thread", 8), ThreadedExecutor)
    assert isinstance(resolve_executor("cluster", 8), ClusterExecutor)
    assert isinstance(resolve_executor("async", 8), AsyncExecutor)
    assert isinstance(resolve_executor("process", 2), ProcessExecutor)
    resolved = resolve_executor("async", 8, rate_limit=50.0)
    assert resolved.limiter is not None and resolved.limiter.rate == 50.0
    custom = SerialExecutor()
    assert resolve_executor(custom) is custom
    with pytest.raises(ValueError):
        resolve_executor("ray")


def test_invalid_worker_counts_rejected():
    with pytest.raises(ValueError):
        ThreadedExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ClusterExecutor(num_workers=0)
    with pytest.raises(ValueError):
        AsyncExecutor(max_concurrency=0)
    with pytest.raises(ValueError):
        ProcessExecutor(max_workers=0)


def test_cluster_executor_determinism_vs_serial(small_dataset):
    """Acceptance: same seed => identical records and leaderboard across backends."""

    problems = list(small_dataset)[:30]
    results = {}
    for executor in ("serial", "cluster"):
        config = BenchmarkConfig(seed=7, executor=executor, max_workers=4 if executor == "cluster" else 1)
        benchmark = CloudEvalBenchmark(small_dataset, config)
        results[executor] = benchmark.evaluate_models(models=MODELS, problems=problems)

    serial, cluster = results["serial"], results["cluster"]
    assert serial.leaderboard() == cluster.leaderboard()
    for model in MODELS:
        assert serial[model].records == cluster[model].records
