"""Score hand-written YAML answers against dataset problems.

This is the workflow of a platform team that wants to grade configurations
produced by *their own* tool (a template engine, an internal LLM, a human):
pick problems, attach candidate YAML, and get the full score card —
including functional verification on the simulated Kubernetes cluster —
without calling any model at all.

Run with::

    python examples/evaluate_custom_yaml.py
"""

from __future__ import annotations

from repro import build_dataset, score_answer
from repro.dataset.schema import Category, Variant

# A correct answer for the classic "expose a deployment with a LoadBalancer"
# problem family, and a subtly broken variant (wrong selector).
GOOD_SERVICE = """
apiVersion: v1
kind: Service
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    app: {app}
  ports:
  - name: http
    port: {port}
    targetPort: {port}
  type: LoadBalancer
"""

BROKEN_SERVICE = GOOD_SERVICE.replace("app: {app}", "app: wrong-selector")


def main() -> None:
    dataset = build_dataset()
    problems = [
        p
        for p in dataset.by_category(Category.SERVICE).by_variant(Variant.ORIGINAL)
        if p.metadata["slug"].startswith("service-loadbalancer")
    ][:3]

    print(f"Scoring hand-written answers for {len(problems)} LoadBalancer problems.\n")
    for problem in problems:
        # Recover the parameters the problem asks for from its metadata/reference.
        app = problem.reference_plain().split("app: ")[1].splitlines()[0].strip()
        namespace = problem.reference_plain().split("namespace: ")[1].splitlines()[0].strip()
        port = problem.reference_plain().split("port: ")[1].splitlines()[0].strip()
        name = f"{app}-service"

        for label, template in (("correct", GOOD_SERVICE), ("broken-selector", BROKEN_SERVICE)):
            answer = template.format(name=name, namespace=namespace, app=app, port=port)
            card = score_answer(problem, answer)
            print(
                f"{problem.problem_id:<28} {label:<16} "
                f"unit_test={card.unit_test:.0f}  kv_wildcard={card.kv_wildcard:.2f}  "
                f"bleu={card.bleu:.2f}"
                + (f"   ({card.failure_message})" if card.failure_message else "")
            )
        print()


if __name__ == "__main__":
    main()
