"""Worker nodes: claim jobs, pull images, run unit tests, report back."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.master import EvaluationJob, Master
from repro.evalcluster.registry_cache import PullThroughCache, WorkerImageCache

__all__ = ["Worker"]


@dataclass
class Worker:
    """A 4-core / 8 GB evaluation VM running Minikube and Docker.

    Each worker boots once (``boot_seconds``), then loops: claim a job from
    the master, pull any images it does not have locally (internet via the
    shared uplink, or LAN from the pull-through cache), run the unit test,
    report, repeat.  The worker drives itself through the event queue so
    many workers interleave correctly on the shared link.
    """

    worker_id: str
    master: Master
    events: EventQueue
    internet: SharedLink
    shared_cache: PullThroughCache
    boot_seconds: float = 180.0
    lan_bandwidth_mbps: float = 1000.0
    busy_seconds: float = field(default=0.0, init=False)
    jobs_completed: int = field(default=0, init=False)
    finished_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.image_cache = WorkerImageCache(worker_id=self.worker_id, shared_cache=self.shared_cache)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Boot the VM and start the claim loop."""

        self.events.schedule(self.boot_seconds, self._claim_next)

    def _claim_next(self) -> None:
        job = self.master.claim()
        if job is None:
            self.finished_at = self.events.now
            return
        self._run_job(job)

    # -- job execution ---------------------------------------------------------
    def _run_job(self, job: EvaluationJob) -> None:
        now = self.events.now
        # 1. Pull images that are not in the worker's local Docker cache.
        pull_finish = now
        lan_mb = 0.0
        for image in job.images:
            plan = self.image_cache.pull(image)
            if plan.internet_mb > 0:
                pull_finish = max(pull_finish, self.internet.request(plan.internet_mb, now))
            lan_mb += plan.lan_mb
        # LAN transfers from the master's cache are fast and uncontended.
        lan_seconds = lan_mb * 8.0 / self.lan_bandwidth_mbps
        # 2. Run the test itself (environment setup, apply, waits, cleanup).
        total_delay = (pull_finish - now) + lan_seconds + job.base_seconds
        self.busy_seconds += total_delay

        def _complete() -> None:
            self.jobs_completed += 1
            self.master.report(job.job_id, self.worker_id, self.events.now, passed=True)
            self._claim_next()

        self.events.schedule(total_delay, _complete)
