"""Canonical YAML normalization.

Two YAML files that describe the same object can differ in key order,
quoting and flow style.  The key-value metrics in the paper load both files
into dictionaries before comparing; this module provides the shared
normalization used by those metrics and by the exact-match post-check.
"""

from __future__ import annotations

from typing import Any

import yaml

__all__ = ["normalize_document", "canonical_dump", "documents_equal"]


def normalize_document(doc: Any) -> Any:
    """Return a canonical representation of a parsed YAML document.

    Mappings have their keys coerced to strings (YAML permits non-string
    keys but Kubernetes objects never use them) and scalars are kept as-is.
    Sequences keep their order because order *is* significant inside lists
    such as ``containers`` or ``ports``.
    """

    if isinstance(doc, dict):
        return {str(k): normalize_document(v) for k, v in doc.items()}
    if isinstance(doc, list):
        return [normalize_document(item) for item in doc]
    return doc


def canonical_dump(doc: Any) -> str:
    """Serialise a document with sorted keys for stable text comparison."""

    return yaml.safe_dump(normalize_document(doc), sort_keys=True, default_flow_style=False)


def _scalar_equal(a: Any, b: Any) -> bool:
    if a == b:
        return True
    return str(a).strip() == str(b).strip()


def documents_equal(a: Any, b: Any) -> bool:
    """Structural equality with lenient scalar comparison.

    Numbers and their string spellings compare equal (``80`` vs ``"80"``)
    because Kubernetes accepts both in most fields; this mirrors how
    ``kubectl apply`` treats the manifests.
    """

    a = normalize_document(a)
    b = normalize_document(b)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(documents_equal(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        return all(documents_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, (dict, list)) or isinstance(b, (dict, list)):
        return False
    return _scalar_equal(a, b)
