"""The 12 evaluated models and their calibration profiles.

Every profile is derived from the paper's published measurements:
Table 4 (overall metric scores), Table 5 (augmented-variant pass counts),
Table 6 (few-shot pass counts), Table 9 (per-category and per-length unit
test scores) and Figure 7 (failure-mode distribution).  The simulated
models therefore reproduce the relative behaviour of the original models —
ranking, category difficulty, robustness to simplification/translation,
failure-mode mix — while every downstream number is still *measured* by
running the real scoring pipeline on generated text.
"""

from __future__ import annotations

from repro.dataset.problem import ProblemSet
from repro.dataset.schema import Variant
from repro.llm.simulated import ModelProfile, SimulatedModel

__all__ = [
    "MODEL_PROFILES",
    "MODEL_NAMES",
    "available_models",
    "get_model",
    "get_profile",
    "calibrate_models",
    "ENGLISH_ONLY_MODELS",
]

# Models whose API supported English only at the time of the paper's
# submission; translated questions are excluded from their averages.
ENGLISH_ONLY_MODELS = {"palm-2-bison"}


def _profile(
    name: str,
    size: str,
    open_source: bool,
    unit_test: float,
    kubernetes: float,
    envoy: float,
    istio: float,
    short: float,
    medium: float,
    long: float,
    original: float,
    simplified: float,
    translated: float | None,
    exact_match: float,
    kv_exact: float,
    failure_mix: tuple[float, float, float, float, float],
    multi_sample_gain: float = 0.30,
    few_shot: dict[int, float] | None = None,
    chattiness: float = 0.35,
    mutation_intensity: int = 1,
    style_divergence: float = 0.45,
) -> ModelProfile:
    """Build a profile, translating paper metrics into simulation parameters."""

    correct_rate = max(unit_test, 1e-3)
    return ModelProfile(
        name=name,
        size=size,
        open_source=open_source,
        unit_test_score=unit_test,
        category_scores={"kubernetes": kubernetes, "envoy": envoy, "istio": istio},
        length_scores={"short": short, "medium": medium, "long": long},
        variant_passes={
            "original": original,
            "simplified": simplified,
            "translated": original if translated is None else translated,
        },
        failure_mix=failure_mix,
        # Exact-match scores in Table 4 are averages over all problems; the
        # fraction of *correct* answers that are also exact is the ratio.
        exact_text_rate=min(0.9, exact_match / correct_rate),
        exact_kv_rate=min(0.95, kv_exact / correct_rate),
        multi_sample_gain=multi_sample_gain,
        few_shot_passes=dict(few_shot or {}),
        chattiness=chattiness,
        mutation_intensity=mutation_intensity,
        style_divergence=style_divergence,
    )


MODEL_PROFILES: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in [
        _profile(
            "gpt-4", "?", False, 0.515,
            kubernetes=0.601, envoy=0.100, istio=0.385,
            short=0.625, medium=0.616, long=0.237,
            original=179, simplified=164, translated=178,
            exact_match=0.092, kv_exact=0.198,
            failure_mix=(0.05, 0.01, 0.27, 0.19, 0.48),
            multi_sample_gain=0.22,
            chattiness=0.40,
            mutation_intensity=1,
            style_divergence=0.25,
        ),
        _profile(
            "gpt-3.5", "?", False, 0.412,
            kubernetes=0.466, envoy=0.122, istio=0.385,
            short=0.534, medium=0.477, long=0.169,
            original=142, simplified=143, translated=132,
            exact_match=0.075, kv_exact=0.154,
            failure_mix=(0.04, 0.01, 0.27, 0.17, 0.51),
            multi_sample_gain=0.39,
            few_shot={0: 142, 1: 150, 2: 143, 3: 154},
            chattiness=0.45,
            mutation_intensity=1,
            style_divergence=0.3,
        ),
        _profile(
            "palm-2-bison", "?", False, 0.322,
            kubernetes=0.406, envoy=0.050, istio=0.231,
            short=0.455, medium=0.413, long=0.118,
            original=120, simplified=97, translated=None,
            exact_match=0.040, kv_exact=0.092,
            failure_mix=(0.03, 0.02, 0.28, 0.15, 0.52),
            multi_sample_gain=0.37,
            chattiness=0.35,
            mutation_intensity=1,
            style_divergence=0.35,
        ),
        _profile(
            "llama-2-70b-chat", "70B", True, 0.085,
            kubernetes=0.099, envoy=0.049, istio=0.0,
            short=0.216, medium=0.058, long=0.013,
            original=30, simplified=24, translated=32,
            exact_match=0.000, kv_exact=0.020,
            failure_mix=(0.004, 0.007, 0.29, 0.12, 0.579),
            multi_sample_gain=0.30,
            few_shot={0: 30, 1: 23, 2: 26, 3: 29},
            chattiness=0.55,
            mutation_intensity=2,
            style_divergence=0.5,
        ),
        _profile(
            "llama-2-13b-chat", "13B", True, 0.067,
            kubernetes=0.085, envoy=0.049, istio=0.0,
            short=0.125, medium=0.081, long=0.013,
            original=26, simplified=17, translated=25,
            exact_match=0.000, kv_exact=0.016,
            failure_mix=(0.005, 0.01, 0.29, 0.13, 0.565),
            chattiness=0.55,
            mutation_intensity=2,
            style_divergence=0.55,
        ),
        _profile(
            "wizardcoder-34b-v1.0", "34B", True, 0.056,
            kubernetes=0.067, envoy=0.050, istio=0.231,
            short=0.159, medium=0.052, long=0.013,
            original=24, simplified=31, translated=2,
            exact_match=0.007, kv_exact=0.013,
            failure_mix=(0.02, 0.15, 0.38, 0.14, 0.31),
            chattiness=0.30,
            mutation_intensity=2,
            style_divergence=0.55,
        ),
        _profile(
            "llama-2-7b-chat", "7B", True, 0.027,
            kubernetes=0.039, envoy=0.050, istio=0.0,
            short=0.080, medium=0.029, long=0.013,
            original=13, simplified=9, translated=5,
            exact_match=0.000, kv_exact=0.009,
            failure_mix=(0.006, 0.006, 0.30, 0.13, 0.558),
            few_shot={0: 13, 1: 14, 2: 13, 3: 15},
            chattiness=0.60,
            mutation_intensity=3,
            style_divergence=0.6,
        ),
        _profile(
            "wizardcoder-15b-v1.0", "15B", True, 0.026,
            kubernetes=0.032, envoy=0.049, istio=0.077,
            short=0.045, medium=0.041, long=0.013,
            original=12, simplified=11, translated=3,
            exact_match=0.002, kv_exact=0.002,
            failure_mix=(0.03, 0.25, 0.40, 0.12, 0.20),
            chattiness=0.30,
            mutation_intensity=3,
            style_divergence=0.6,
        ),
        _profile(
            "llama-7b", "7B", True, 0.023,
            kubernetes=0.035, envoy=0.050, istio=0.0,
            short=0.057, medium=0.035, long=0.013,
            original=12, simplified=7, translated=4,
            exact_match=0.004, kv_exact=0.005,
            failure_mix=(0.10, 0.45, 0.30, 0.05, 0.10),
            chattiness=0.25,
            mutation_intensity=3,
            style_divergence=0.7,
        ),
        _profile(
            "llama-13b-lora", "13B", True, 0.021,
            kubernetes=0.021, envoy=0.049, istio=0.0,
            short=0.034, medium=0.017, long=0.026,
            original=8, simplified=9, translated=4,
            exact_match=0.001, kv_exact=0.003,
            failure_mix=(0.10, 0.45, 0.30, 0.05, 0.10),
            chattiness=0.25,
            mutation_intensity=3,
            style_divergence=0.7,
        ),
        _profile(
            "codellama-7b-instruct", "7B", True, 0.015,
            kubernetes=0.007, envoy=0.049, istio=0.077,
            short=0.034, medium=0.006, long=0.013,
            original=5, simplified=6, translated=4,
            exact_match=0.001, kv_exact=0.001,
            failure_mix=(0.05, 0.30, 0.40, 0.10, 0.15),
            chattiness=0.25,
            mutation_intensity=3,
            style_divergence=0.65,
        ),
        _profile(
            "codellama-13b-instruct", "13B", True, 0.012,
            kubernetes=0.011, envoy=0.050, istio=0.0,
            short=0.034, medium=0.006, long=0.013,
            original=5, simplified=2, translated=5,
            exact_match=0.002, kv_exact=0.002,
            failure_mix=(0.05, 0.30, 0.40, 0.10, 0.15),
            chattiness=0.25,
            mutation_intensity=3,
            style_divergence=0.65,
        ),
    ]
}

# Paper ranking order (Table 4), used consistently for "model index" axes.
MODEL_NAMES: list[str] = list(MODEL_PROFILES)


def available_models() -> list[str]:
    """Names of the 12 evaluated models, in the paper's ranking order."""

    return list(MODEL_NAMES)


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile by name (case-insensitive)."""

    key = name.lower()
    if key not in MODEL_PROFILES:
        raise KeyError(f"unknown model {name!r}; available: {MODEL_NAMES}")
    return MODEL_PROFILES[key]


def get_model(name: str, seed: int = 7) -> SimulatedModel:
    """Instantiate a simulated model by name."""

    return SimulatedModel(get_profile(name), seed=seed)


def calibrate_models(
    models: list[SimulatedModel],
    dataset: ProblemSet,
    iterations: int = 2,
) -> list[SimulatedModel]:
    """Rescale each model so its expected original-set pass count matches Table 5.

    The per-problem pass probability combines the category and length
    marginals of Table 9; because this repository's corpus has a slightly
    different length mix than the authors' (the reference solutions are
    synthetic), the expected pass count over *our* corpus can drift from the
    paper's.  This routine computes the expectation over the actual corpus
    and applies a global per-model scale so the original-dataset pass count
    lands on the Table 5 value, preserving all relative structure.
    """

    originals = list(dataset.by_variant(Variant.ORIGINAL))
    if not originals:
        raise ValueError("dataset contains no original problems to calibrate against")
    # Table 5 pass counts are out of the paper's 337 original problems; for a
    # reduced corpus (e.g. in tests) it is the *rate* that must match.
    paper_original_count = 337.0
    calibrated: list[SimulatedModel] = []
    for model in models:
        profile = model.profile
        target = profile.variant_passes.get("original", profile.unit_test_score * paper_original_count)
        target_rate = min(0.95, target / paper_original_count)
        scaled = model
        for _ in range(iterations):
            expected = sum(
                scaled.pass_probability(problem, Variant.ORIGINAL) for problem in originals
            ) / len(originals)
            if expected <= 0:
                break
            scale = scaled.profile.calibration_scale * target_rate / expected
            scaled = SimulatedModel(profile.with_calibration(scale), seed=model.seed)
        calibrated.append(scaled)
    return calibrated
