"""The simulated cluster: resource store, namespaces and reconciliation.

A :class:`Cluster` is cheap to create (a fresh one is spun up per unit test,
mirroring how the real benchmark resets Minikube state between problems).
All mutations validate the manifest first and trigger controller
reconciliation so reads observe converged state.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.kubesim import controllers
from repro.kubesim.errors import NotFoundError, ValidationError
from repro.kubesim.resources import Resource, resolve_kind
from repro.kubesim.selectors import matches_label_map, matches_selector
from repro.kubesim.validation import validate_resource

__all__ = ["Cluster"]

_DEFAULT_NODES = ("node-1",)


class Cluster:
    """An in-memory Kubernetes cluster.

    Parameters
    ----------
    nodes:
        Node names; DaemonSets create one pod per node.
    strict:
        When True (default) validation errors raise; when False invalid
        manifests are recorded as rejected but do not raise, which is
        occasionally useful for analysis tooling.
    """

    def __init__(self, nodes: Iterable[str] = _DEFAULT_NODES, strict: bool = True) -> None:
        self.strict = strict
        self._nodes = list(nodes) or list(_DEFAULT_NODES)
        self._resources: dict[tuple[str, str, str], Resource] = {}
        self._namespaces: set[str] = {"default", "kube-system"}
        self._events: list[str] = []
        self._pod_ip_counter = 0
        self._lb_ip_counter = 0
        for index, node in enumerate(self._nodes):
            node_resource = Resource(
                manifest={
                    "apiVersion": "v1",
                    "kind": "Node",
                    "metadata": {"name": node, "labels": {"kubernetes.io/hostname": node}},
                    "status": {"addresses": [{"type": "InternalIP", "address": f"10.0.0.{index + 10}"}]},
                }
            )
            self._resources[node_resource.key()] = node_resource

    # ------------------------------------------------------------------
    # Node and network helpers
    # ------------------------------------------------------------------
    def node_names(self) -> list[str]:
        """Names of all simulated nodes."""

        return list(self._nodes)

    def node_ip(self, node: str) -> str:
        """Internal IP address of a node."""

        try:
            index = self._nodes.index(node)
        except ValueError:
            index = 0
        return f"10.0.0.{index + 10}"

    def allocate_pod_ip(self, pod_name: str) -> str:
        """Deterministic pod IP derived from the pod name."""

        return f"10.244.0.{(abs(hash(pod_name)) % 250) + 2}"

    def allocate_lb_ip(self, service_name: str) -> str:
        """Deterministic LoadBalancer external IP."""

        return f"192.168.49.{(abs(hash(service_name)) % 250) + 2}"

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------
    def create_namespace(self, name: str) -> None:
        """Create a namespace (idempotent)."""

        self._namespaces.add(name)
        self._events.append(f"namespace/{name} created")

    def namespaces(self) -> set[str]:
        return set(self._namespaces)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def apply(self, manifest: Mapping[str, Any]) -> Resource:
        """Apply a manifest (create or replace), validate, and reconcile."""

        resource = Resource.from_manifest(dict(manifest))
        info = resolve_kind(resource.kind)  # raises for unknown kinds
        try:
            validate_resource(resource)
        except ValidationError:
            if self.strict:
                raise
            self._events.append(f"rejected {resource.kind}/{resource.name}")
            return resource

        if resource.kind == "Namespace":
            self.create_namespace(resource.name)
        if info.namespaced:
            namespace = resource.namespace
            if namespace not in self._namespaces:
                # ``kubectl apply`` fails when the namespace does not exist;
                # most dataset tests create it first, so enforce the same.
                raise ValidationError(
                    f"namespace {namespace!r} not found", field="metadata.namespace"
                )
        existing = self._resources.get(resource.key())
        if existing is not None:
            resource.generation = existing.generation + 1
        self._resources[resource.key()] = resource
        self._events.append(f"{resource.kind.lower()}/{resource.name} configured")
        controllers.reconcile(self)
        return resource

    def apply_all(self, manifests: Iterable[Mapping[str, Any]]) -> list[Resource]:
        """Apply several manifests in order."""

        return [self.apply(manifest) for manifest in manifests]

    def delete(self, kind: str, name: str, namespace: str = "default") -> None:
        """Delete an object and any pods it owns."""

        resource = self.get(kind, name, namespace)
        self.remove(resource)
        for pod in self.pods_owned_by(resource):
            self.remove(pod)
        controllers.reconcile(self)

    def remove(self, resource: Resource) -> None:
        """Remove a stored resource without cascading (controller helper)."""

        self._resources.pop(resource.key(), None)

    def reset(self) -> None:
        """Delete every non-node resource (the test clean-up phase)."""

        self._resources = {key: res for key, res in self._resources.items() if res.kind == "Node"}
        self._namespaces = {"default", "kube-system"}
        self._events.append("cluster reset")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def exists(self, kind: str, name: str, namespace: str = "default") -> bool:
        """Whether an object exists."""

        try:
            self.get(kind, name, namespace)
            return True
        except NotFoundError:
            return False

    def get(self, kind: str, name: str, namespace: str = "default") -> Resource:
        """Fetch one object or raise :class:`NotFoundError`."""

        info = resolve_kind(kind)
        key = (kind, namespace if info.namespaced else "", name)
        resource = self._resources.get(key)
        if resource is None:
            raise NotFoundError(f"{kind.lower()}s {name!r} not found in namespace {namespace!r}")
        return resource

    def list_resources(
        self,
        kind: str,
        namespace: str | None = None,
        label_selector: Mapping[str, str] | None = None,
    ) -> list[Resource]:
        """List objects of a kind, optionally filtered by namespace and labels."""

        info = resolve_kind(kind)
        out = []
        for resource in self._resources.values():
            if resource.kind != kind:
                continue
            if info.namespaced and namespace is not None and resource.namespace != namespace:
                continue
            if label_selector and not matches_label_map(resource.labels, label_selector):
                continue
            out.append(resource)
        return sorted(out, key=lambda r: (r.namespace, r.name))

    def list_workloads(self) -> list[Resource]:
        """All workload objects that own pods."""

        kinds = ("Deployment", "DaemonSet", "StatefulSet", "ReplicaSet", "Job")
        return [r for r in self._resources.values() if r.kind in kinds]

    def pods_owned_by(self, owner: Resource) -> list[Resource]:
        """Pods created by the given workload object."""

        out = [
            r
            for r in self._resources.values()
            if r.kind == "Pod" and r.owner == (owner.kind, owner.namespace, owner.name)
        ]
        return sorted(out, key=lambda r: r.name)

    def pod_is_ready(self, pod: Resource) -> bool:
        """Whether the pod's Ready condition is True."""

        for condition in pod.status.get("conditions", []):
            if condition.get("type") == "Ready":
                return condition.get("status") == "True"
        return False

    def events(self) -> list[str]:
        """Chronological list of human-readable cluster events."""

        return list(self._events)

    # ------------------------------------------------------------------
    # Controller helpers
    # ------------------------------------------------------------------
    def store_pod(self, pod: Resource) -> None:
        """Store a controller-created pod (no namespace existence check)."""

        self._resources[pod.key()] = pod

    def store_endpoints(self, service: Resource, addresses: list[dict[str, Any]]) -> None:
        """Create/refresh the Endpoints object mirroring a Service."""

        endpoints = Resource(
            manifest={
                "apiVersion": "v1",
                "kind": "Endpoints",
                "metadata": {"name": service.name, "namespace": service.namespace},
                "subsets": [
                    {
                        "addresses": addresses,
                        "ports": [
                            {"port": p.get("targetPort", p.get("port")), "name": p.get("name", "")}
                            for p in service.spec.get("ports", [])
                            if isinstance(p, dict)
                        ],
                    }
                ]
                if addresses
                else [],
            }
        )
        self._resources[endpoints.key()] = endpoints

    # ------------------------------------------------------------------
    # Query helpers used by unit tests
    # ------------------------------------------------------------------
    def service_reachable(self, service_name: str, namespace: str, port: int | None = None) -> bool:
        """Whether a Service has at least one ready endpoint on ``port``.

        This is the simulator's analogue of ``curl``-ing the service from a
        test pod or via a LoadBalancer/NodePort.
        """

        try:
            service = self.get("Service", service_name, namespace)
        except NotFoundError:
            return False
        endpoints = service.status.get("endpoints", [])
        if not endpoints:
            return False
        if port is None:
            return True
        for port_spec in service.spec.get("ports", []):
            if not isinstance(port_spec, dict):
                continue
            if port_spec.get("port") == port or port_spec.get("nodePort") == port:
                return True
        return False

    def host_port_reachable(self, host_port: int, namespace: str | None = None, selector: Mapping[str, str] | None = None) -> bool:
        """Whether some ready pod exposes ``host_port`` via hostPort."""

        for pod in self.list_resources("Pod", namespace=namespace):
            if selector and not matches_selector(pod.labels, selector):
                continue
            if not self.pod_is_ready(pod):
                continue
            for container in pod.manifest.get("spec", {}).get("containers", []):
                for port in container.get("ports") or []:
                    if isinstance(port, dict) and port.get("hostPort") == host_port:
                        return True
        return False
