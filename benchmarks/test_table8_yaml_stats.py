"""Table 8 / Appendix A — YAML statistics of the top-100 cloud-native repositories.

Paper claim: 90 of the top 100 most-starred cloud-native applications use
more than 10 YAML files, which motivates targeting YAML for the benchmark.
"""

from __future__ import annotations

from repro.analysis.related import TOP_CLOUD_NATIVE_REPOS, repos_with_more_than


def _survey_summary():
    return {
        "repos": len(TOP_CLOUD_NATIVE_REPOS),
        "more_than_10": repos_with_more_than(10),
        "at_least_10": repos_with_more_than(9),
        "more_than_100": repos_with_more_than(100),
        "total_yaml_files": sum(repo.yaml_files for repo in TOP_CLOUD_NATIVE_REPOS),
    }


def test_table8_yaml_survey(benchmark):
    summary = benchmark.pedantic(_survey_summary, rounds=1, iterations=1)
    print("\nTable 8 summary:", summary)

    assert summary["repos"] == 100
    # "90 out of the top 100 ... use more than 10 YAML files"
    assert summary["at_least_10"] == 90
    assert summary["more_than_10"] in (89, 90)
    # Heavy adopters exist: dozens of repositories keep hundreds of YAML files.
    assert summary["more_than_100"] >= 30
    # Kubernetes and GitLab dominate the survey.
    top = max(TOP_CLOUD_NATIVE_REPOS, key=lambda repo: repo.yaml_files)
    assert top.name in ("GitLab", "Kubernetes")
    assert summary["total_yaml_files"] > 30_000
