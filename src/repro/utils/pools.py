"""A lock-guarded, lazily created, restartable worker pool handle.

Three components keep a persistent ``concurrent.futures`` pool alive
across calls — the threaded and process executors and the query module —
and all three need the same lifecycle: build the pool on first use, reuse
it afterwards, shut it down on ``close()``, and transparently rebuild if
used again.  :class:`LazyPool` is that lifecycle, written once.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor as FuturesExecutor
from typing import Callable

__all__ = ["LazyPool"]


class LazyPool:
    """Holds a ``concurrent.futures`` pool created on first :meth:`get`.

    ``raw`` exposes the current pool (or ``None`` when closed/unbuilt) for
    introspection; all access is serialised on an internal lock, so
    concurrent first-use races build exactly one pool.
    """

    def __init__(self, factory: Callable[[], FuturesExecutor]) -> None:
        self._factory = factory
        self._lock = threading.Lock()
        self.raw: FuturesExecutor | None = None

    def get(self) -> FuturesExecutor:
        """The live pool, building it if necessary."""

        with self._lock:
            if self.raw is None:
                self.raw = self._factory()
            return self.raw

    def close(self) -> None:
        """Shut the pool down (a later :meth:`get` rebuilds a fresh one)."""

        with self._lock:
            pool, self.raw = self.raw, None
        if pool is not None:
            pool.shutdown(wait=True)
