"""Acceptance: every executor backend and every shard count produces
bit-identical ScoreCards on a seeded corpus sample.

This is the contract that makes the backend/shard choice a pure
performance knob: tasks are pure functions of their inputs and results
come back in submission order, so ``serial``/``thread``/``cluster``/
``async``/``process`` × ``shards ∈ {1, 4}`` can never change a score.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.pipeline.executors import EXECUTOR_NAMES

MODEL = "gpt-3.5"
SAMPLE_SIZE = 24


@pytest.fixture(scope="module")
def seeded_problems(small_dataset):
    return list(small_dataset)[:SAMPLE_SIZE]


@pytest.fixture(scope="module")
def serial_baseline(small_dataset, seeded_problems):
    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    return benchmark.evaluate_model(MODEL, problems=seeded_problems)


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_scorecards_identical_across_executors_and_shards(
    small_dataset, seeded_problems, serial_baseline, executor, shards
):
    config = BenchmarkConfig(seed=7, executor=executor, max_workers=3, shards=shards)
    evaluation = CloudEvalBenchmark(small_dataset, config).evaluate_model(
        MODEL, problems=seeded_problems
    )
    assert [r.scores for r in evaluation.records] == [
        r.scores for r in serial_baseline.records
    ]
    assert evaluation.records == serial_baseline.records


def test_async_generate_with_process_scoring_identical(small_dataset, seeded_problems, serial_baseline):
    """The combined I/O+CPU path (async generation, process scoring, sharded)
    is still bit-identical — the headline configuration changes no score."""

    config = BenchmarkConfig(
        seed=7,
        executor="process",
        generate_executor="async",
        max_workers=3,
        shards=4,
        rate_limit=10_000.0,
    )
    evaluation = CloudEvalBenchmark(small_dataset, config).evaluate_model(
        MODEL, problems=seeded_problems
    )
    assert evaluation.records == serial_baseline.records


def test_generate_executor_is_actually_used(small_dataset, seeded_problems, serial_baseline):
    """An explicitly configured generation backend must carry the batch —
    not be silently swapped for the query module's default path."""

    from repro.pipeline.executors import ThreadedExecutor

    class SpyThreaded(ThreadedExecutor):
        calls = 0

        def map(self, fn, tasks):
            SpyThreaded.calls += 1
            return super().map(fn, tasks)

    from repro.pipeline import EvaluationPipeline
    from repro.scoring.compiled import ReferenceStore

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    model, requests = benchmark.requests(MODEL, problems=seeded_problems)
    with SpyThreaded(max_workers=2) as spy:
        pipeline = EvaluationPipeline(model, generate_executor=spy, store=ReferenceStore())
        evaluation = pipeline.run(requests)
        pipeline.close()
    assert SpyThreaded.calls > 0
    assert evaluation.records == serial_baseline.records


def test_process_generation_rejected_at_config_time():
    import pytest

    with pytest.raises(ValueError, match="generate_executor"):
        BenchmarkConfig(generate_executor="process")
