"""Simulated LLM models with per-model calibrated behaviour.

A :class:`SimulatedModel` plays the role of a remote LLM endpoint.  For
every (problem, variant, sample) it decides stochastically — but fully
deterministically given the benchmark seed — whether the answer is
functionally correct and, if not, which failure class it falls into, then
synthesises the corresponding response text with the perturbation
operators and formatting noise.  The per-model parameters live in
:class:`ModelProfile` and are calibrated from the paper's published
numbers (see :mod:`repro.llm.registry`).

The latent "solid / borderline / dead" state per (model, problem) governs
multi-sample behaviour: solid problems pass on (almost) every sample,
borderline problems pass occasionally, dead problems essentially never.
This reproduces the saturating pass@k curves of Figure 8 instead of the
unrealistically fast growth an i.i.d. Bernoulli model would give.
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field

from repro.dataset.problem import Problem
from repro.dataset.schema import Variant
from repro.llm import perturbations as P
from repro.utils.rng import DeterministicRNG

__all__ = ["ModelProfile", "SimulatedModel", "BORDERLINE_SAMPLE_RATE", "length_band"]

# Per-sample success probability of a "borderline" problem, and the solid
# problems' (very high) per-sample success rate.
BORDERLINE_SAMPLE_RATE = 0.12
SOLID_SAMPLE_RATE = 0.985
DEAD_SAMPLE_RATE = 0.002


def length_band(problem: Problem) -> str:
    """Reference-length band used in Figure 6 / Table 9."""

    lines = problem.solution_lines()
    if lines < 15:
        return "short"
    if lines < 30:
        return "medium"
    return "long"


@dataclass(frozen=True)
class ModelProfile:
    """Calibration parameters of one simulated model.

    The probabilities are taken (or derived) from the paper:

    * ``unit_test_score`` — Table 4, used as the normaliser for the
      category/length marginals,
    * ``category_scores`` / ``length_scores`` — Table 9,
    * ``variant_passes`` — Table 5 pass counts (original/simplified/
      translated),
    * ``few_shot_passes`` — Table 6 pass counts per number of shots,
    * ``failure_mix`` — Figure 7 failure-category distribution (fractions
      over failed problems, categories 1..5),
    * ``exact_text_rate`` / ``exact_kv_rate`` — Table 4 exact-match and
      key-value-exact scores expressed as fractions of correct answers,
    * ``multi_sample_gain`` — Figure 8 normalised improvement at 20 samples,
    * ``chattiness`` — probability of wrapping the answer in prose/fences,
    * ``mutation_intensity`` — how many critical values a near-miss alters.
    """

    name: str
    size: str
    open_source: bool
    unit_test_score: float
    category_scores: dict[str, float]
    length_scores: dict[str, float]
    variant_passes: dict[str, float]
    failure_mix: tuple[float, float, float, float, float]
    exact_text_rate: float
    exact_kv_rate: float
    multi_sample_gain: float = 0.30
    few_shot_passes: dict[int, float] = field(default_factory=dict)
    chattiness: float = 0.35
    mutation_intensity: int = 1
    style_divergence: float = 0.35
    calibration_scale: float = 1.0

    def with_calibration(self, scale: float) -> "ModelProfile":
        """Return a copy with an adjusted global calibration scale."""

        return ModelProfile(**{**self.__dict__, "calibration_scale": scale})


class SimulatedModel:
    """A deterministic, profile-driven stand-in for an LLM endpoint."""

    def __init__(self, profile: ModelProfile, seed: int = 7) -> None:
        self.profile = profile
        self.seed = seed

    # ------------------------------------------------------------------
    # Success-probability model
    # ------------------------------------------------------------------
    def pass_probability(self, problem: Problem, variant: Variant | None = None, shots: int = 0) -> float:
        """Single-sample probability that this model passes the unit test."""

        profile = self.profile
        overall = max(profile.unit_test_score, 1e-4)
        category_score = profile.category_scores.get(problem.application, overall)
        length_score = profile.length_scores.get(length_band(problem), overall)
        # Ratio combination of the two marginals (assumes near-independence,
        # which Table 9 supports), then a difficulty tilt within the band.
        probability = category_score * length_score / overall
        probability *= 1.25 - 0.5 * problem.difficulty

        variant = variant or problem.variant
        original_passes = max(profile.variant_passes.get("original", 1.0), 1e-6)
        variant_factor = profile.variant_passes.get(variant.value, original_passes) / original_passes
        probability *= variant_factor

        if shots and profile.few_shot_passes:
            zero_shot = max(profile.few_shot_passes.get(0, original_passes), 1e-6)
            probability *= profile.few_shot_passes.get(shots, zero_shot) / zero_shot

        probability *= profile.calibration_scale
        return float(min(0.985, max(0.0005, probability)))

    def _latent_state(self, problem: Problem, variant: Variant, shots: int) -> str:
        """Latent per-problem state: solid / borderline / dead."""

        p1 = self.pass_probability(problem, variant, shots)
        gain = self.profile.multi_sample_gain
        saturation = 1.0 - (1.0 - BORDERLINE_SAMPLE_RATE) ** 20  # ≈ 0.92
        borderline_mass = min(0.9, gain * p1 / saturation)
        solid_mass = max(0.0, p1 - borderline_mass * BORDERLINE_SAMPLE_RATE - DEAD_SAMPLE_RATE)
        # Common random numbers across shot counts: the latent draw is keyed
        # on the zero-shot identity so that adding few-shot examples shifts a
        # model's pass set only by the (small) probability delta rather than
        # re-rolling every problem (Table 6's "no significant gain" claim
        # would otherwise drown in binomial noise).
        rng = DeterministicRNG(self.seed).child("latent", self.profile.name, problem.base_id, variant.value, 0)
        draw = rng.random()
        if draw < solid_mass:
            return "solid"
        if draw < solid_mass + borderline_mass:
            return "borderline"
        return "dead"

    def _sample_passes(self, problem: Problem, variant: Variant, shots: int, sample_index: int) -> bool:
        state = self._latent_state(problem, variant, shots)
        rate = {"solid": SOLID_SAMPLE_RATE, "borderline": BORDERLINE_SAMPLE_RATE, "dead": DEAD_SAMPLE_RATE}[state]
        rng = DeterministicRNG(self.seed).child(
            "sample", self.profile.name, problem.problem_id, variant.value, shots, sample_index
        )
        return rng.bernoulli(rate)

    # ------------------------------------------------------------------
    # Text generation
    # ------------------------------------------------------------------
    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        """Generate a raw response (possibly wrapped in prose/fences)."""

        variant = problem.variant
        rng = DeterministicRNG(self.seed).child(
            "generate", self.profile.name, problem.problem_id, shots, sample_index
        )
        profile = self.profile

        if self._sample_passes(problem, variant, shots, sample_index):
            draw = rng.random()
            if draw < profile.exact_text_rate:
                answer = P.correct_answer(problem, rng, exact_text=True)
            elif draw < profile.exact_kv_rate:
                answer = P.correct_answer(problem, rng, exact_keys=True)
            else:
                answer = P.correct_answer(problem, rng, style_divergence=profile.style_divergence)
            return P.wrap_response(answer, rng, profile.chattiness)

        # Failure: draw a failure category (1..5) from the profile mix.
        category = rng.choice([1, 2, 3, 4, 5], weights=list(profile.failure_mix))
        # Weak models frequently answer with memorised boiler-plate that has
        # little to do with the question; stronger models stay close to a
        # (broken) version of the expected configuration.
        generic_rate = min(0.9, max(0.0, (profile.style_divergence - 0.2) * 1.6))
        use_generic = rng.bernoulli(generic_rate)
        if category == 1:
            answer = P.empty_answer(problem, rng)
            return answer  # too short to bother wrapping
        if category == 2:
            return P.prose_answer(problem, rng)
        if category == 3:
            base = P.generic_answer(problem, rng) if use_generic else None
            answer = P.incomplete_answer(problem, rng, base_text=base)
        elif category == 4:
            if use_generic:
                # Boiler-plate of the wrong kind: a memorised generic body
                # whose ``kind`` does not match what the question asked for.
                generic = P.generic_answer(problem, rng)
                answer = re.sub(r"^kind: .*$", f"kind: {rng.choice(['ConfigMap', 'Pod', 'ReplicationController'])}", generic, count=1, flags=re.MULTILINE)
            else:
                answer = P.wrong_kind_answer(problem, rng)
        elif use_generic:
            answer = P.generic_answer(problem, rng)
        else:
            answer = P.near_miss_answer(
                problem,
                rng,
                intensity=profile.mutation_intensity,
                style_divergence=profile.style_divergence,
            )
        return P.wrap_response(answer, rng, profile.chattiness)

    # Convenience aliases -------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedModel({self.profile.name!r})"
