"""The master node: job queue management on top of the Redis-like store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evalcluster.kvstore import RedisLikeStore

__all__ = ["EvaluationJob", "Master"]


@dataclass(frozen=True)
class EvaluationJob:
    """One unit-test job: which problem to evaluate and what it needs."""

    job_id: str
    problem_id: str
    images: tuple[str, ...]
    base_seconds: float  # apply + wait + assertions + cleanup, excluding pulls
    target: str = "kubernetes"


class Master:
    """Manages the job queue and collects results, as the paper's master does."""

    QUEUE_KEY = "jobs:pending"
    RESULTS_KEY = "jobs:results"

    def __init__(self, store: RedisLikeStore | None = None) -> None:
        self.store = store or RedisLikeStore()
        self._jobs: dict[str, EvaluationJob] = {}

    # -- job submission -------------------------------------------------------
    def submit(self, jobs: Sequence[EvaluationJob]) -> None:
        """Enqueue jobs for the workers to claim."""

        for job in jobs:
            self._jobs[job.job_id] = job
            self.store.rpush(self.QUEUE_KEY, job.job_id)
        self.store.set("jobs:total", len(self._jobs))

    # -- worker-facing API -------------------------------------------------------
    def claim(self) -> EvaluationJob | None:
        """Pop the next pending job, or None when the queue is drained."""

        job_id = self.store.lpop(self.QUEUE_KEY)
        if job_id is None:
            return None
        return self._jobs[job_id]

    def report(self, job_id: str, worker_id: str, finished_at: float, passed: bool) -> None:
        """Record a finished job."""

        self.store.hset(self.RESULTS_KEY, job_id, {"worker": worker_id, "finished_at": finished_at, "passed": passed})

    # -- progress -------------------------------------------------------------------
    def pending(self) -> int:
        return self.store.llen(self.QUEUE_KEY)

    def completed(self) -> int:
        return self.store.hlen(self.RESULTS_KEY)

    def all_done(self) -> bool:
        return self.completed() >= int(self.store.get("jobs:total", 0))
