"""The store's write-ahead journal: replay, compaction, kill-safety."""

from __future__ import annotations

import json

import pytest

from repro.evalcluster.fleet import RemoteStore, StoreServer
from repro.evalcluster.kvstore import JournaledStore, RedisLikeStore


def _populate(store) -> None:
    store.set("s", {"nested": [1, 2]})
    store.incr("n", 5)
    store.hset("h", "a", 1)
    store.hsetnx("h", "b", 2)
    store.rpush("l", "x", "y", "z")
    store.lpop("l")
    store.hdel("h", "a")


def _state(store) -> dict:
    return {
        "s": store.get("s"),
        "n": store.get("n"),
        "h": store.hgetall("h"),
        "l": store.lrange("l"),
        "keys": store.keys(),
    }


class TestJournaledStore:
    def test_replay_reproduces_the_exact_state(self, tmp_path):
        path = tmp_path / "store.journal"
        original = JournaledStore(path)
        _populate(original)
        replayed = JournaledStore(path)
        assert _state(replayed) == _state(original)
        assert replayed.replayed_ops > 0

    def test_ineffective_mutations_are_not_journaled(self, tmp_path):
        path = tmp_path / "store.journal"
        store = JournaledStore(path)
        store.hset("h", "f", "winner")
        lines_before = path.read_text().count("\n")
        assert store.hsetnx("h", "f", "loser") is False  # lost the race
        assert store.lpop("empty") is None
        assert store.hdel("h", "missing") is False
        assert path.read_text().count("\n") == lines_before
        assert JournaledStore(path).hget("h", "f") == "winner"

    def test_winning_hsetnx_replays_as_the_winner(self, tmp_path):
        path = tmp_path / "store.journal"
        store = JournaledStore(path)
        assert store.hsetnx("h", "f", "first") is True
        assert store.hsetnx("h", "f", "second") is False
        assert JournaledStore(path).hget("h", "f") == "first"

    def test_compaction_collapses_to_one_snapshot_line(self, tmp_path):
        path = tmp_path / "store.journal"
        store = JournaledStore(path, compact_every=5)
        for index in range(7):
            store.set(f"k{index}", index)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["op"] == "snapshot"
        assert len(lines) == 3  # snapshot + the 2 ops since compaction
        replayed = JournaledStore(path, compact_every=5)
        assert [replayed.get(f"k{i}") for i in range(7)] == list(range(7))

    def test_junk_journal_lines_are_skipped(self, tmp_path):
        path = tmp_path / "store.journal"
        store = JournaledStore(path)
        store.set("good", 1)
        with path.open("a") as handle:
            handle.write("this is not json\n")
            handle.write('{"op": "no_such_command", "args": "bm9wZQ=="}\n')
        replayed = JournaledStore(path)
        assert replayed.get("good") == 1

    def test_rejects_a_non_positive_compaction_interval(self, tmp_path):
        with pytest.raises(ValueError):
            JournaledStore(tmp_path / "j", compact_every=0)

    def test_snapshot_round_trip(self):
        store = RedisLikeStore()
        _populate(store)
        assert _state(RedisLikeStore.from_snapshot(store.snapshot())) == _state(store)


class TestServerDurability:
    def test_server_killed_and_restarted_replays_acknowledged_state(self, tmp_path):
        """The tentpole invariant: every mutation a client saw acknowledged
        survives an abrupt server death and is visible after restart."""

        path = tmp_path / "store.journal"
        first = StoreServer(journal=path).start()
        port = first.port
        client = RemoteStore(first.address, reconnect_attempts=3, reconnect_delay=0.05)
        try:
            client.set("survives", {"answer": 42})
            client.rpush("queue", "a", "b")
            assert client.lpop("queue") == "a"
            first.crash()  # no goodbye: listener and connections torn down
            second = StoreServer(host="127.0.0.1", port=port, journal=path).start()
            try:
                assert second.store.replayed_ops > 0
                # The same client reconnects through its backoff and reads
                # exactly the acknowledged pre-crash state.
                assert client.get("survives") == {"answer": 42}
                assert client.lrange("queue") == ["b"]
            finally:
                second.close()
        finally:
            client.close()
            first.close()

    def test_server_rejects_store_and_journal_together(self, tmp_path):
        with pytest.raises(ValueError):
            StoreServer(store=RedisLikeStore(), journal=tmp_path / "j")
