"""Textual report rendering for benchmark results."""

from __future__ import annotations

from repro.core.benchmark import BenchmarkResult, ModelEvaluation
from repro.evalcluster.cost import CostModel
from repro.scoring.aggregate import METRIC_NAMES

__all__ = ["format_leaderboard"]

#: Header of the optional predicted-cost column (seconds of evaluation
#: cluster time the Figure 5 model predicts for the model's problem set).
_COST_HEADER = "pred_eval_s"


def _predicted_evaluation_seconds(evaluation: ModelEvaluation, cost_model: CostModel) -> float:
    """Figure 5-predicted seconds to evaluate this model's problem set.

    Problems are taken from the evaluation's first-sample records (so an
    English-only model that skipped translated questions is priced for
    exactly what it ran), deduplicated in record order, and accounted with
    a warm image cache across the run.
    """

    dataset = cost_model.dataset
    if dataset is None:
        raise ValueError("the predicted-cost column needs a CostModel built with a dataset")
    problems = []
    seen: set[str] = set()
    for record in evaluation.first_samples():
        if record.problem_id in seen:
            continue
        seen.add(record.problem_id)
        try:
            problems.append(dataset.get(record.problem_id))
        except KeyError:
            continue  # evaluated against a different corpus; price what we know
    return cost_model.predict_problems_seconds(problems)


def format_leaderboard(
    result: BenchmarkResult,
    title: str = "Zero-shot benchmark",
    cost_model: CostModel | None = None,
) -> str:
    """Render a Table 4-style leaderboard as aligned text.

    Rows are ranked by unit-test score with deterministic name
    tie-breaking.  With a ``cost_model``, a ``pred_eval_s`` column is
    appended: the Figure 5-predicted seconds of evaluation cluster time
    for each model's problem set (warm image cache across the run).
    """

    lines = [title, ""]
    header = f"{'#':<4}{'Model':<26}" + "".join(f"{name:>14}" for name in METRIC_NAMES)
    if cost_model is not None:
        header += f"{_COST_HEADER:>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for rank, (model, scores) in enumerate(result.leaderboard(), start=1):
        row = f"{rank:<4}{model:<26}" + "".join(f"{scores[name]:>14.3f}" for name in METRIC_NAMES)
        if cost_model is not None:
            seconds = _predicted_evaluation_seconds(result[model], cost_model)
            row += f"{seconds:>14.1f}"
        lines.append(row)
    return "\n".join(lines)
