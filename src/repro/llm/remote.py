"""Remote-endpoint adapters: simulated latency and real live endpoints.

The paper's query module exists because remote endpoints are slow and
rate-limited: each request spends tens to hundreds of milliseconds on the
wire, and the only way to finish a 1000-problem sweep in reasonable time
is to keep many requests in flight (§3.1, ray in the original).

Two adapters model that workload shape:

* :class:`RemoteEndpointModel` turns any deterministic local model into
  it.  It answers with exactly the wrapped model's responses but charges
  a per-request network latency: the synchronous ``generate`` blocks (as
  a naive sequential client would), while ``generate_async`` awaits the
  same latency on the event loop so the async query path can overlap
  hundreds of in-flight requests.  Scores are therefore bit-identical
  between the wrapped and unwrapped model — only the wall-clock differs.
* :class:`LiveEndpointModel` is the *real* thing: a
  :class:`~repro.llm.interface.Model`/:class:`~repro.llm.interface.AsyncModel`
  adapter over an actual endpoint, with wall-clock
  :class:`~repro.utils.ratelimit.TokenBucket` pacing and
  retry-with-backoff on transient errors.  The endpoint itself is
  abstracted as a *transport* — any callable ``(prompt) -> response`` —
  so the adapter is testable offline and pluggable onto any provider;
  :func:`http_transport` builds one over stdlib ``urllib`` for plain
  JSON-over-HTTP endpoints.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.dataset.problem import Problem
from repro.llm.interface import Model
from repro.llm.prompt import build_prompt
from repro.utils.backoff import BackoffPolicy
from repro.utils.faults import FaultInjector, null_injector
from repro.utils.ratelimit import TokenBucket
from repro.utils.rng import DeterministicRNG

__all__ = [
    "EndpointError",
    "LiveEndpointModel",
    "ModelSpec",
    "RemoteEndpointModel",
    "ReplayTransport",
    "TransientEndpointError",
    "http_transport",
]


class EndpointError(RuntimeError):
    """A live endpoint failed in a way retrying cannot fix (4xx, bad payload)."""


class TransientEndpointError(EndpointError):
    """A live endpoint failed transiently (timeout, 429, 5xx); retry may succeed."""


class RemoteEndpointModel:
    """Wrap ``inner`` as a simulated remote endpoint with per-request latency.

    Parameters
    ----------
    inner:
        The model actually producing responses.
    latency_seconds:
        Mean one-way service time per request.
    jitter_seconds:
        Half-width of the deterministic per-request latency spread; the
        latency of a request depends only on ``(problem_id, sample_index,
        seed)``, so repeated runs see identical delays.
    seed:
        Seed of the latency jitter.
    """

    def __init__(
        self,
        inner: Model,
        latency_seconds: float = 0.05,
        jitter_seconds: float = 0.0,
        seed: int = 1,
    ) -> None:
        if latency_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latencies must be non-negative")
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.jitter_seconds = jitter_seconds
        self.seed = seed
        #: Total network time charged so far (sum over requests, not wall time).
        self.latency_charged = 0.0

    @property
    def name(self) -> str:
        return self.inner.name

    def request_latency(self, problem: Problem, sample_index: int = 0) -> float:
        """The deterministic latency this request pays."""

        if self.jitter_seconds == 0.0:
            return self.latency_seconds
        rng = DeterministicRNG(self.seed).child("remote-latency", problem.problem_id, sample_index)
        return max(0.0, self.latency_seconds + rng.uniform(-self.jitter_seconds, self.jitter_seconds))

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            time.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)

    async def generate_async(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            await asyncio.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)


class LiveEndpointModel:
    """A real live endpoint behind the :class:`~repro.llm.interface.Model`
    and :class:`~repro.llm.interface.AsyncModel` protocols.

    Parameters
    ----------
    name:
        The leaderboard name of the endpoint's model (keys checkpoints,
        results, and the score cache's per-model counters).
    transport:
        ``(prompt) -> response text``: the one network call.  It raises
        :class:`TransientEndpointError` for failures worth retrying and
        :class:`EndpointError` (or anything else) for permanent ones.
    async_transport:
        Optional awaitable variant used by ``generate_async``; without
        one, the synchronous transport runs on the event loop's default
        executor so request latencies still overlap.
    limiter:
        Wall-clock :class:`~repro.utils.ratelimit.TokenBucket` pacing
        *attempts* (every retry takes a fresh token — a retried request
        must not cut the rate-limit queue).  A virtual-clock bucket is
        rejected: fast-forwarding does not slow real traffic down.
    max_retries:
        How many times a :class:`TransientEndpointError` is retried
        before it propagates (total attempts = ``max_retries + 1``).
    backoff_seconds / backoff_multiplier:
        Deterministic exponential backoff slept between attempts:
        ``backoff_seconds * backoff_multiplier**retry_index``, capped at
        60 seconds.  Sugar over ``backoff`` — pass an explicit
        :class:`~repro.utils.backoff.BackoffPolicy` for a different cap,
        budget, or seeded jitter (the policy's ``attempts`` then defines
        the retry budget and ``max_retries`` is ignored).
    backoff:
        The full retry schedule as a shared
        :class:`~repro.utils.backoff.BackoffPolicy` — the same type the
        fleet's ``RemoteStore`` reconnects with.
    injector:
        Optional :class:`~repro.utils.faults.FaultInjector` for chaos
        tests: the ``endpoint.request`` site fires per attempt with the
        problem id as detail (``transient`` raises a retryable
        :class:`TransientEndpointError` through the normal retry path,
        ``delay`` sleeps before the request).
    sleep / async_sleep:
        Injectable sleep functions (tests pass recorders; production
        leaves the defaults).

    Responses are whatever the endpoint returns for the built prompt, so
    determinism is the endpoint's contract, not this adapter's; pair it
    with the content-addressed score cache so repeated answers are scored
    once no matter how the endpoint phrases its latency.
    """

    def __init__(
        self,
        name: str,
        transport: Callable[[str], str],
        *,
        async_transport: Callable[[str], Awaitable[str]] | None = None,
        limiter: TokenBucket | None = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.5,
        backoff_multiplier: float = 2.0,
        backoff: BackoffPolicy | None = None,
        injector: FaultInjector | None = None,
        sleep: Callable[[float], None] = time.sleep,
        async_sleep: Callable[[float], Awaitable[None]] | None = None,
    ) -> None:
        if not name:
            raise ValueError("a live endpoint needs a model name")
        if limiter is not None and limiter.virtual_clock:
            raise ValueError(
                "a live endpoint needs wall-clock pacing; build the limiter with "
                "TokenBucket(rate, burst, virtual_clock=False)"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0 or backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative with multiplier >= 1")
        self._name = name
        self.transport = transport
        self.async_transport = async_transport
        self.limiter = limiter
        self.backoff = backoff or BackoffPolicy(
            initial_seconds=backoff_seconds,
            multiplier=backoff_multiplier,
            max_seconds=60.0,
            attempts=max_retries + 1,
        )
        self.max_retries = self.backoff.attempts - 1
        self.backoff_seconds = self.backoff.initial_seconds
        self.backoff_multiplier = self.backoff.multiplier
        self.injector = injector if injector is not None else null_injector()
        self._sleep = sleep
        self._async_sleep = async_sleep if async_sleep is not None else asyncio.sleep
        #: Observability: attempts sent to the wire, transient retries paid.
        self.requests = 0
        self.retries = 0

    @property
    def name(self) -> str:
        return self._name

    def _backoff(self, retry_index: int) -> float:
        return self.backoff.delay(retry_index, self._name)

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        prompt = build_prompt(problem, shots=shots)
        for retry_index in range(self.max_retries + 1):
            if self.limiter is not None:
                self.limiter.acquire()
            self.requests += 1
            try:
                spec = self.injector.fire("endpoint.request", problem.problem_id)
                if spec is not None and spec.kind == "transient":
                    raise TransientEndpointError("injected transient endpoint fault")
                self.injector.sleep_if_delay(spec, problem.problem_id)
                return self.transport(prompt)
            except TransientEndpointError:
                if retry_index >= self.max_retries:
                    raise
                self.retries += 1
                backoff = self._backoff(retry_index)
                if backoff > 0:
                    self._sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    async def generate_async(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        prompt = build_prompt(problem, shots=shots)
        for retry_index in range(self.max_retries + 1):
            if self.limiter is not None:
                await self.limiter.acquire_async()
            self.requests += 1
            try:
                spec = self.injector.fire("endpoint.request", problem.problem_id)
                if spec is not None and spec.kind == "transient":
                    raise TransientEndpointError("injected transient endpoint fault")
                if spec is not None and spec.kind == "delay":
                    await self._async_sleep(self.injector.delay_seconds(spec, problem.problem_id))
                if self.async_transport is not None:
                    return await self.async_transport(prompt)
                # No native async transport: keep the event loop free by
                # running the blocking call on the default executor.
                return await asyncio.get_running_loop().run_in_executor(
                    None, self.transport, prompt
                )
            except TransientEndpointError:
                if retry_index >= self.max_retries:
                    raise
                self.retries += 1
                backoff = self._backoff(retry_index)
                if backoff > 0:
                    await self._async_sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover


#: HTTP statuses retrying can help with: rate limiting and server-side hiccups.
_TRANSIENT_STATUSES = frozenset({408, 429, 500, 502, 503, 504})


def http_transport(
    url: str,
    *,
    response_field: str = "response",
    prompt_field: str = "prompt",
    headers: dict[str, str] | None = None,
    timeout_seconds: float = 60.0,
) -> Callable[[str], str]:
    """A :class:`LiveEndpointModel` transport over stdlib ``urllib``.

    POSTs ``{prompt_field: prompt}`` as JSON to ``url`` and returns the
    ``response_field`` string of the JSON reply.  Timeouts, connection
    failures and 408/429/5xx statuses raise
    :class:`TransientEndpointError` (retried by the adapter); other HTTP
    errors and malformed payloads raise :class:`EndpointError`
    (propagated).  Kept deliberately minimal — provider-specific schemas
    wrap their SDK call in a plain function instead.
    """

    def transport(prompt: str) -> str:
        body = json.dumps({prompt_field: prompt}).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=body,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout_seconds) as reply:
                payload = json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code in _TRANSIENT_STATUSES:
                raise TransientEndpointError(f"endpoint returned HTTP {exc.code}") from exc
            raise EndpointError(f"endpoint returned HTTP {exc.code}") from exc
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise TransientEndpointError(f"endpoint unreachable: {exc}") from exc
        try:
            return str(payload[response_field])
        except (TypeError, KeyError) as exc:
            raise EndpointError(
                f"endpoint reply is missing the {response_field!r} field"
            ) from exc

    return transport


class ReplayTransport:
    """A picklable transport replaying recorded ``prompt -> response`` pairs.

    The offline stand-in for a live endpoint: deterministic (the same
    prompt always yields the same recorded response), picklable (a plain
    mapping plus a float — unlike the :func:`http_transport` closure it
    ships to worker processes), and optionally *latency-bound* —
    ``latency_seconds`` is slept per call, so benchmarks can model an
    endpoint whose cost is wire time rather than CPU.  A prompt with no
    recording raises :class:`EndpointError` (a permanent failure — replay
    has nothing to retry toward).
    """

    def __init__(self, responses: dict[str, str], latency_seconds: float = 0.0) -> None:
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        self.responses = dict(responses)
        self.latency_seconds = latency_seconds

    def __call__(self, prompt: str) -> str:
        if self.latency_seconds > 0:
            time.sleep(self.latency_seconds)
        try:
            return self.responses[prompt]
        except KeyError:
            raise EndpointError(
                f"no recorded response for a {len(prompt)}-character prompt"
            ) from None


@dataclass(frozen=True)
class ModelSpec:
    """A picklable recipe for constructing a model in another process.

    The fleet's generation offload ships the *description* of a model —
    not the model — to its workers: a :class:`LiveEndpointModel` is built
    around an unpicklable transport closure and a shared rate limiter, so
    the spec carries the transport's configuration instead and each worker
    process rebuilds (and memoises — see
    :func:`repro.pipeline.stages.run_generation_task`) its own instance,
    exactly as :func:`~repro.scoring.compiled.warm_reference_store` warms
    the per-process reference store.

    Exactly one model source must be set:

    * ``model`` — an already-picklable model instance (the simulated
      registry models and :class:`RemoteEndpointModel` wrappers are pure
      data); :meth:`build` returns it as-is.
    * ``transport`` — a picklable ``(prompt) -> response`` callable (e.g.
      :class:`ReplayTransport`); wrapped in a :class:`LiveEndpointModel`.
    * ``url`` — endpoint config for :func:`http_transport` (built inside
      the worker, where the closure never needs to travel).

    ``rate_limit``/``burst`` describe the *global* pacing contract of the
    endpoint.  Inside a fleet worker the built model paces through the
    store-mediated :class:`~repro.evalcluster.fleet.DistributedTokenBucket`
    (every worker debits one server-side bucket named ``pacer_key``, so N
    processes together never exceed the rate); anywhere else — the parent
    process, a thread pool — :meth:`build` falls back to a local
    wall-clock :class:`~repro.utils.ratelimit.TokenBucket` with the same
    parameters.
    """

    name: str
    model: Any = None
    transport: Callable[[str], str] | None = None
    url: str | None = None
    response_field: str = "response"
    prompt_field: str = "prompt"
    headers: tuple[tuple[str, str], ...] = ()
    timeout_seconds: float = 60.0
    rate_limit: float | None = None
    burst: int = 1
    max_retries: int = 2
    backoff_seconds: float = 0.5
    backoff_multiplier: float = 2.0
    pacer_key: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a model spec needs a model name")
        sources = sum(
            source is not None for source in (self.model, self.transport, self.url)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one model source: model (picklable instance), "
                "transport (picklable callable), or url (http endpoint)"
            )
        if self.model is not None and getattr(self.model, "name", self.name) != self.name:
            raise ValueError(
                f"spec name {self.name!r} does not match model name {self.model.name!r}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")

    @classmethod
    def of(cls, model: Model, **overrides: Any) -> "ModelSpec":
        """Spec a picklable model instance under its own name."""

        return cls(name=model.name, model=model, **overrides)

    @property
    def limiter_key(self) -> str:
        """The distributed bucket this spec's builds share (default: the name)."""

        return self.pacer_key or self.name

    def build(self, limiter: Any = None) -> Model:
        """Construct the model this spec describes.

        ``limiter`` (anything with the :class:`~repro.utils.ratelimit.TokenBucket`
        ``acquire`` surface and ``virtual_clock=False``) overrides the
        pacing backend; with ``rate_limit`` set and no override, a local
        wall-clock bucket is built — the single-process semantics the
        parent path has always had.
        """

        if self.model is not None:
            return self.model
        transport = self.transport
        if transport is None:
            assert self.url is not None
            transport = http_transport(
                self.url,
                response_field=self.response_field,
                prompt_field=self.prompt_field,
                headers=dict(self.headers) or None,
                timeout_seconds=self.timeout_seconds,
            )
        if limiter is None and self.rate_limit is not None:
            limiter = TokenBucket(self.rate_limit, burst=self.burst, virtual_clock=False)
        return LiveEndpointModel(
            self.name,
            transport,
            limiter=limiter,
            max_retries=self.max_retries,
            backoff_seconds=self.backoff_seconds,
            backoff_multiplier=self.backoff_multiplier,
        )
