"""The master node: job queue management on top of the Redis-like store.

The master speaks one job/claim/report protocol that serves two runtimes:
the timing-only Figure 5 simulation and the real in-process execution used
by :class:`~repro.pipeline.executors.ClusterExecutor`.  A job optionally
carries a ``payload`` — the actual unit of work — and a report optionally
carries the payload's result, so both runtimes share the exact same queue
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.evalcluster.kvstore import RedisLikeStore

__all__ = ["EvaluationJob", "JobReport", "Master", "MasterStats"]


@dataclass(frozen=True)
class EvaluationJob:
    """One evaluation job: which problem to evaluate and what it needs.

    ``images`` and ``base_seconds`` drive the timing simulation; ``payload``
    carries the real work (a zero-argument callable) when the job is
    dispatched to an executing runtime.  A job may carry both, in which
    case the runner mode decides which side is used.
    """

    job_id: str
    problem_id: str
    images: tuple[str, ...] = ()
    base_seconds: float = 0.0  # apply + wait + assertions + cleanup, excluding pulls
    target: str = "kubernetes"
    payload: Callable[[], Any] | None = None


@dataclass(frozen=True)
class JobReport:
    """A finished job as recorded by the master."""

    job_id: str
    worker_id: str
    finished_at: float
    passed: bool
    result: Any = None


@dataclass(frozen=True)
class MasterStats:
    """A point-in-time snapshot of the master's queue and fleet health.

    ``heartbeat_ages`` maps worker id to seconds since its last recorded
    heartbeat (on the master's clock — worker clocks are never compared).
    ``worker_throughput`` maps worker id to its self-reported observed
    rates (EWMA records/second, keyed ``generate_rps``/``score_rps``) —
    piggybacked on heartbeats, so a silent worker's last report sticks.
    """

    pending: int
    claimed: int
    completed: int
    requeued: int
    abandoned: int
    heartbeat_ages: dict[str, float]
    worker_throughput: dict[str, dict[str, float]] = field(default_factory=dict)

    def _rate_of(self, worker: str) -> str:
        rates = self.worker_throughput.get(worker)
        if not rates:
            return ""
        return f" {sum(rates.values()):.1f}rec/s"

    def describe(self) -> str:
        """One-line summary for leaderboard footers and logs."""

        line = (
            f"fleet: {self.pending} pending | {self.claimed} claimed | "
            f"{self.completed} completed | {self.requeued} re-enqueued | "
            f"{self.abandoned} abandoned"
        )
        if self.heartbeat_ages:
            beats = ", ".join(
                f"{worker} {age:.1f}s{self._rate_of(worker)}"
                for worker, age in sorted(self.heartbeat_ages.items())
            )
            line += f" | heartbeats: {beats}"
        return line


class Master:
    """Manages the job queue and collects results, as the paper's master does.

    With ``lease_seconds`` set, every claim carries a deadline: a worker
    that dies between claim and report leaves its job leased-but-silent,
    and :meth:`reap_expired` re-enqueues it — once — for a surviving
    worker.  A job whose lease expires a second time is recorded as failed
    instead of looping forever.
    """

    QUEUE_KEY = "jobs:pending"
    RESULTS_KEY = "jobs:results"
    CLAIMS_KEY = "jobs:claims"

    def __init__(self, store: RedisLikeStore | None = None, lease_seconds: float | None = None) -> None:
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.store = store or RedisLikeStore()
        self.lease_seconds = lease_seconds
        self._jobs: dict[str, EvaluationJob] = {}
        self._leases: dict[str, float] = {}  # job_id -> deadline
        self._lease_holders: dict[str, str] = {}  # job_id -> worker_id
        self._requeued: set[str] = set()
        self._abandoned: set[str] = set()
        self._heartbeats: dict[str, float] = {}  # worker_id -> last beat (master clock)
        self._throughput: dict[str, dict[str, float]] = {}  # worker_id -> observed rates

    # -- job submission -------------------------------------------------------
    def submit(self, jobs: Sequence[EvaluationJob]) -> None:
        """Enqueue jobs for the workers to claim."""

        for job in jobs:
            self._jobs[job.job_id] = job
            self.store.rpush(self.QUEUE_KEY, job.job_id)
        self.store.set("jobs:total", len(self._jobs))

    def job(self, job_id: str) -> EvaluationJob:
        return self._jobs[job_id]

    # -- worker-facing API -------------------------------------------------------
    def claim(self, worker_id: str = "", now: float = 0.0) -> EvaluationJob | None:
        """Pop the next pending job, or None when the queue is drained.

        When leases are enabled, the claim is stamped with its deadline
        (``now + lease_seconds``); the report releases it.
        """

        job_id = self.store.lpop(self.QUEUE_KEY)
        if job_id is None:
            return None
        if self.lease_seconds is not None:
            self._leases[job_id] = now + self.lease_seconds
            self._lease_holders[job_id] = worker_id
        return self._jobs[job_id]

    def note_claim(self, job_id: str, worker_id: str, now: float = 0.0) -> None:
        """Record a claim that happened elsewhere (a remote worker popped
        the queue directly); stamps the lease exactly as :meth:`claim` would.

        ``now`` is the *master's* clock at the moment the claim was
        observed — remote clocks never enter the lease arithmetic.
        """

        if job_id not in self._jobs:
            return
        if self.lease_seconds is not None:
            self._leases[job_id] = now + self.lease_seconds
            self._lease_holders[job_id] = worker_id

    def note_completed(self, job_id: str) -> None:
        """Release a job's lease after its result was observed elsewhere."""

        self._leases.pop(job_id, None)
        self._lease_holders.pop(job_id, None)

    # -- fault tolerance -------------------------------------------------------
    def next_lease_expiry(self) -> float | None:
        """The earliest outstanding lease deadline, or None when none are held."""

        return min(self._leases.values()) if self._leases else None

    def reap_expired(
        self, now: float, attempts: Callable[[str], int] | None = None
    ) -> list[str]:
        """Re-enqueue jobs whose lease expired; returns the re-enqueued ids.

        Each job is given exactly one second chance.  A job whose lease
        expires again is reported failed by the master itself, so a
        poisonous job (one that kills every worker that touches it) cannot
        starve the run.

        ``attempts`` (job id -> execution attempts so far) refines the
        once-only budget for batch-claiming workers: a job whose claimant
        died *before executing it* — zero attempts — is re-enqueued
        without burning its second chance.  An unexecuted job cannot be
        poison; only executions that died mid-flight should count against
        it.  Without ``attempts`` every expiry burns the budget, as the
        timing simulation's single-claim workers expect.
        """

        requeued: list[str] = []
        for job_id, deadline in sorted(self._leases.items()):
            if now < deadline:
                continue
            del self._leases[job_id]
            self._lease_holders.pop(job_id, None)
            if attempts is not None and attempts(job_id) <= 0:
                self.store.hdel(self.CLAIMS_KEY, job_id)
                self.store.rpush(self.QUEUE_KEY, job_id)
                requeued.append(job_id)
                continue
            if job_id in self._requeued:
                self._abandoned.add(job_id)
                # The message is deliberately clock-free: under a seeded
                # fault plan the degraded result must be bit-identical
                # across runs, and a wall-clock deadline in the text
                # would break that.
                self.report(
                    job_id,
                    worker_id="master-reaper",
                    finished_at=now,
                    passed=False,
                    result="lease expired twice; job abandoned",
                    degraded=True,
                )
                continue
            self._requeued.add(job_id)
            # Clear the stale claim row *before* the id goes back on the
            # queue: a parked worker can claim the instant the push lands,
            # and a cleanup that ran after would wipe the fresh claim —
            # the new lease would never be stamped and a second expiry
            # could never be observed.
            self.store.hdel(self.CLAIMS_KEY, job_id)
            self.store.rpush(self.QUEUE_KEY, job_id)
            requeued.append(job_id)
        return requeued

    def report(
        self,
        job_id: str,
        worker_id: str,
        finished_at: float,
        passed: bool,
        result: Any = None,
        degraded: bool = False,
    ) -> None:
        """Record a finished job (optionally with the payload's result).

        Under leases, a report from a worker that no longer holds the
        job's lease is dropped: its lease expired and the job was handed
        to someone else, whose execution is now authoritative (the
        late-but-alive worker case of a real distributed deployment).

        ``degraded`` marks a synthetic failure the *infrastructure*
        produced (an abandoned or quarantined job) rather than one the
        payload raised — consumers convert these into error-marked
        records instead of crashing the run.
        """

        if self.lease_seconds is not None:
            holder = self._lease_holders.get(job_id)
            if holder is not None and holder != worker_id:
                return
        self._leases.pop(job_id, None)
        self._lease_holders.pop(job_id, None)
        row: dict[str, Any] = {
            "worker": worker_id,
            "finished_at": finished_at,
            "passed": passed,
            "result": result,
        }
        if degraded:
            row["degraded"] = True
        self.store.hset(self.RESULTS_KEY, job_id, row)

    # -- results --------------------------------------------------------------
    def reports(self) -> dict[str, JobReport]:
        """Every finished job keyed by job id."""

        out: dict[str, JobReport] = {}
        for job_id, row in self.store.hgetall(self.RESULTS_KEY).items():
            out[job_id] = JobReport(
                job_id=job_id,
                worker_id=row["worker"],
                finished_at=row["finished_at"],
                passed=row["passed"],
                result=row.get("result"),
            )
        return out

    def result_of(self, job_id: str) -> Any:
        """The payload result reported for ``job_id`` (None when unfinished)."""

        row = self.store.hget(self.RESULTS_KEY, job_id)
        return None if row is None else row.get("result")

    # -- progress -------------------------------------------------------------------
    def pending(self) -> int:
        return self.store.llen(self.QUEUE_KEY)

    def completed(self) -> int:
        return self.store.hlen(self.RESULTS_KEY)

    def all_done(self) -> bool:
        return self.completed() >= int(self.store.get("jobs:total", 0))

    # -- fleet health ---------------------------------------------------------------
    def record_heartbeat(
        self,
        worker_id: str,
        now: float = 0.0,
        jobs: Sequence[str] | None = None,
        throughput: Mapping[str, float] | None = None,
    ) -> None:
        """Note a worker's liveness at ``now`` (the master's clock) and
        renew the leases it holds — a worker still beating is still
        working, however long its current job runs.

        With ``jobs`` given, only those job ids are renewed: a remote
        worker's heartbeat names the job it is actually executing, so a
        claim that was registered but never delivered to it (a lost reply
        on the wire) is *not* kept alive forever — its lease expires and
        the job is re-enqueued.  ``None`` renews every held lease.

        ``throughput`` is the worker's self-reported observed rates
        (EWMA records/second by phase); the latest non-empty report is
        kept for :meth:`stats` and the steal policy's per-worker weights.
        """

        self._heartbeats[worker_id] = now
        if throughput:
            self._throughput[worker_id] = dict(throughput)
        if self.lease_seconds is None:
            return
        for job_id, holder in self._lease_holders.items():
            if holder != worker_id:
                continue
            if jobs is not None and job_id not in jobs:
                continue
            self._leases[job_id] = now + self.lease_seconds

    def abandoned_jobs(self) -> frozenset[str]:
        """Jobs whose lease expired twice and were reported failed by the
        master itself — no worker will ever send a completion for them."""

        return frozenset(self._abandoned)

    def stats(self, now: float = 0.0) -> MasterStats:
        """A snapshot of queue progress and per-worker heartbeat age."""

        return MasterStats(
            pending=self.pending(),
            claimed=len(self._leases),
            completed=self.completed(),
            requeued=len(self._requeued),
            abandoned=len(self._abandoned),
            heartbeat_ages={
                worker: max(0.0, now - beat) for worker, beat in self._heartbeats.items()
            },
            worker_throughput={
                worker: dict(rates) for worker, rates in self._throughput.items()
            },
        )
