"""Problem template catalog.

Each module in this package generates the original problems of one dataset
category.  Generators are deterministic functions of the RNG seed, so the
same seed always produces the identical corpus — problem ids, questions,
reference YAML and unit tests included.
"""

from repro.dataset.catalog import (
    envoy,
    istio,
    kubernetes_daemonset,
    kubernetes_deployment,
    kubernetes_job,
    kubernetes_misc,
    kubernetes_pod,
    kubernetes_service,
)
from repro.dataset.schema import Category

__all__ = ["CATEGORY_GENERATORS"]

# Category -> generate(rng, count) -> list[ProblemDraft]
CATEGORY_GENERATORS = {
    Category.POD: kubernetes_pod.generate,
    Category.DAEMONSET: kubernetes_daemonset.generate,
    Category.SERVICE: kubernetes_service.generate,
    Category.JOB: kubernetes_job.generate,
    Category.DEPLOYMENT: kubernetes_deployment.generate,
    Category.OTHERS: kubernetes_misc.generate,
    Category.ENVOY: envoy.generate,
    Category.ISTIO: istio.generate,
}
