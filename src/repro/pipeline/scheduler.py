"""The multi-model leaderboard scheduler.

A leaderboard run evaluates many models over the same corpus, and running
them strictly one after another wastes both wall-clock sinks: while model
A's last shard is being scored (CPU), the endpoint sits idle; while model
B's first shard is being generated (I/O), the scoring pool sits idle —
one fill/drain bubble *per model*.  :class:`MultiModelScheduler` removes
all but one of those bubbles: it splits every model's requests into
planned shards (:mod:`repro.pipeline.planner`), interleaves the shards'
batches round-robin across models, and drives them all through **one**
shared generation executor and **one** shared scoring executor, so a
leaderboard run saturates the endpoint and the scoring pool
simultaneously.

Determinism is preserved per model: a model's batches are produced in
request order (interleaving only weaves *between* models), every stage is
a pure function, and records are folded back per model — so each model's
:class:`~repro.pipeline.records.ModelEvaluation` is bit-identical to a
sequential ``evaluate_model`` run, for every executor backend and every
planner.

Each ``(model, shard)`` pair keeps its own checkpoint file derived from
the job's base path, so a killed leaderboard run resumes exactly where
every model's every shard stopped.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.llm.interface import GenerationRequest, Model
from repro.pipeline.checkpoint import PipelineCheckpoint, shard_checkpoint_path
from repro.pipeline.executors import Executor, close_executor, resolve_executor
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE, EvaluationPipeline
from repro.pipeline.planner import CountPlanner, ShardPlan, ShardPlanner
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.scoring.compiled import ReferenceStore

__all__ = ["ModelJob", "MultiModelScheduler"]


class _ProducerFailure:
    """An exception captured on the producer thread, re-raised on the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


@dataclass
class ModelJob:
    """One model's slice of a leaderboard run.

    ``checkpoint`` is the per-job base path; every shard of the job derives
    its own file from it (``<base>.shard-ii-of-nn``).  Jobs in one
    scheduler must have distinct model names — the name keys the results.
    """

    model: Model
    requests: list[GenerationRequest] = field(default_factory=list)
    checkpoint: str | os.PathLike[str] | None = None

    @property
    def name(self) -> str:
        return self.model.name


class MultiModelScheduler:
    """Interleave planned shards of several models over shared executors.

    Parameters mirror :class:`~repro.pipeline.sharding.ShardedEvaluationPipeline`
    — which is now the single-model client of this class — with two
    generalisations: ``jobs`` is a sequence of :class:`ModelJob`s instead
    of one model, and ``planner`` decides where each job's requests are
    cut (:class:`~repro.pipeline.planner.CountPlanner` by default,
    :class:`~repro.pipeline.planner.CostPlanner` to balance by predicted
    seconds).

    Executors resolved here from spec strings are owned by (and torn down
    with) this scheduler; instances passed in belong to the caller.
    """

    def __init__(
        self,
        jobs: Sequence[ModelJob],
        *,
        shards: int = 1,
        planner: ShardPlanner | None = None,
        executor: str | Executor = "serial",
        generate_executor: str | Executor | None = None,
        max_workers: int = 1,
        rate_limit: float | None = None,
        lease_seconds: float | None = None,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        prefetch_batches: int = 2,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")
        self.jobs = list(jobs)
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"jobs must have distinct model names; duplicated: {duplicates}")
        for job in self.jobs:
            if isinstance(job.checkpoint, PipelineCheckpoint):
                raise TypeError(
                    "scheduled runs derive one checkpoint file per (model, shard); pass "
                    "the base path (str or PathLike), not a PipelineCheckpoint instance"
                )
        self.shards = shards
        self.planner: ShardPlanner = planner if planner is not None else CountPlanner()
        self.max_workers = max_workers
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests
        self.batch_size = batch_size
        self.prefetch_batches = prefetch_batches
        # Executors are shared across every sub-pipeline of every model so
        # pools (threads, processes, the event-loop rate limiter) are built
        # once per leaderboard run.
        self._owns_executor = isinstance(executor, str)
        self._owns_generate_executor = isinstance(generate_executor, str)
        self.executor = resolve_executor(executor, max_workers, rate_limit, lease_seconds)
        self.generate_executor = (
            resolve_executor(generate_executor, max_workers, rate_limit, lease_seconds)
            if generate_executor is not None
            else None
        )
        self._pipelines: list[EvaluationPipeline] = []

    # ------------------------------------------------------------------
    # Sub-pipeline assembly
    # ------------------------------------------------------------------
    def plan_job(self, job: ModelJob) -> ShardPlan:
        """The shard plan the configured planner picks for ``job``."""

        return self.planner.plan(job.requests, self.shards)

    def job_shard_checkpoint(
        self, job: ModelJob, index: int, num_shards: int
    ) -> PipelineCheckpoint | None:
        """The checkpoint of ``job``'s shard ``index`` (None when disabled)."""

        if job.checkpoint is None:
            return None
        return PipelineCheckpoint(shard_checkpoint_path(job.checkpoint, index, num_shards))

    def _build_units(self) -> list[list[tuple[EvaluationPipeline, list[GenerationRequest]]]]:
        """Per-job batch units, in request order within each job.

        Empty shards (a job with zero requests) build no pipeline and no
        checkpoint file — there is nothing to resume and nothing to score.
        """

        per_job: list[list[tuple[EvaluationPipeline, list[GenerationRequest]]]] = []
        for job in self.jobs:
            plan = self.plan_job(job)
            units: list[tuple[EvaluationPipeline, list[GenerationRequest]]] = []
            for index, shard_requests in enumerate(plan.split(job.requests)):
                if not shard_requests:
                    continue
                pipeline = EvaluationPipeline(
                    job.model,
                    executor=self.executor,
                    generate_executor=self.generate_executor,
                    max_workers=self.max_workers,
                    store=self.store,
                    run_unit_tests=self.run_unit_tests,
                    checkpoint=self.job_shard_checkpoint(job, index, plan.num_shards),
                    batch_size=self.batch_size,
                )
                self._pipelines.append(pipeline)
                for start in range(0, len(shard_requests), self.batch_size):
                    units.append((pipeline, shard_requests[start : start + self.batch_size]))
            per_job.append(units)
        return per_job

    # ------------------------------------------------------------------
    # The interleaving scheduler
    # ------------------------------------------------------------------
    def _generation_workers(self, units: int) -> int:
        """How many generation workers may prepare batches concurrently.

        Up to ``prefetch_batches`` batches are in flight at once, so their
        endpoint waits overlap *across* batches (and models) instead of
        serialising in one producer loop — this is what actually saturates
        a latency-bound endpoint.  A shared token-bucket rate limiter
        forces a single worker: the bucket globally paces requests, and
        draining it from several event loops at once would race its clock.
        """

        # The generate stage falls back to the scoring executor when no
        # dedicated generation backend is configured, so check whichever
        # executor will actually carry the batches.
        generation_backend = self.generate_executor or self.executor
        if getattr(generation_backend, "limiter", None) is not None:
            return 1
        return max(1, min(self.prefetch_batches, units))

    def run_iter(self) -> Iterator[tuple[str, EvaluationRecord]]:
        """Stream ``(model_name, record)`` pairs, interleaving models.

        Generation workers run the generation-side half of every batch —
        round-robin across models, at most ``prefetch_batches`` in flight —
        while this thread scores and yields in the same round-robin order.
        A per-job lock keeps one model's batches from generating
        *concurrently* (models need not be thread-safe), though under the
        in-flight window a job's batches may prepare out of submission
        order; that is safe because generation is per-request
        deterministic — the same contract the async backend's within-batch
        overlap already relies on.  Prepared batches are then *released*
        (scored, checkpointed, yielded) strictly in schedule order, so
        per-model record streams are identical to a sequential run;
        between models they weave, which is what keeps the endpoint and
        the scoring pool busy at the same time.
        """

        per_job = self._build_units()
        # Round-robin interleaving order: batch k of every job before
        # batch k+1 of any job.  Deterministic, fair, and per-job ordered —
        # adjacent units usually belong to different models, so the per-job
        # locks almost never serialise concurrent generation workers.
        order: list[tuple[int, EvaluationPipeline, list[GenerationRequest]]] = [
            (job_index, *per_job[job_index][unit_index])
            for unit_index in range(max((len(units) for units in per_job), default=0))
            for job_index in range(len(per_job))
            if unit_index < len(per_job[job_index])
        ]

        stop = threading.Event()
        ready = threading.Condition()
        results: dict[int, object] = {}
        next_claim = [0]
        in_flight = threading.Semaphore(self.prefetch_batches)
        job_locks = [threading.Lock() for _ in self.jobs]

        def produce() -> None:
            while not stop.is_set():
                if not in_flight.acquire(timeout=0.05):
                    continue  # re-check stop while the window is full
                with ready:
                    if next_claim[0] >= len(order):
                        in_flight.release()
                        return
                    index = next_claim[0]
                    next_claim[0] += 1
                job_index, pipeline, batch = order[index]
                try:
                    with job_locks[job_index]:
                        entry: object = (job_index, pipeline, pipeline.prepare_batch(batch))
                except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                    entry = _ProducerFailure(exc)
                with ready:
                    results[index] = entry
                    ready.notify_all()
                if isinstance(entry, _ProducerFailure):
                    return

        workers = [
            threading.Thread(target=produce, name=f"leaderboard-generator-{i}", daemon=True)
            for i in range(self._generation_workers(len(order)))
        ]
        for worker in workers:
            worker.start()
        try:
            for index in range(len(order)):
                with ready:
                    while index not in results:
                        if not any(worker.is_alive() for worker in workers):
                            break
                        ready.wait(timeout=0.05)
                    entry = results.pop(index, None)
                if entry is None:
                    raise RuntimeError(
                        "generation workers exited without producing batch "
                        f"{index} of {len(order)}"
                    )  # pragma: no cover - defensive; a failure entry is the normal path
                if isinstance(entry, _ProducerFailure):
                    raise entry.error
                job_index, pipeline, prepared = entry
                name = self.jobs[job_index].name
                for record in pipeline.finish_batch(prepared):
                    yield name, record
                in_flight.release()
        finally:
            # Reached on completion, on error, and when the consumer
            # abandons the stream (the resumable-interrupt case): unblock
            # and retire the workers before handing control back.
            stop.set()
            with ready:
                ready.notify_all()
            for worker in workers:
                worker.join(timeout=30.0)

    def run(self) -> dict[str, ModelEvaluation]:
        """Evaluate every job and fold records into per-model evaluations.

        The mapping preserves job order; each evaluation's records are in
        that model's request order — bit-identical to sequential
        per-model runs.
        """

        records: dict[str, list[EvaluationRecord]] = {job.name: [] for job in self.jobs}
        for name, record in self.run_iter():
            records[name].append(record)
        return {
            job.name: ModelEvaluation(model_name=job.name, records=records[job.name])
            for job in self.jobs
        }

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the sub-pipelines' query pools and any owned executors."""

        for pipeline in self._pipelines:
            pipeline.query.close()
        if self._owns_executor:
            close_executor(self.executor)
        if self._owns_generate_executor and self.generate_executor is not None:
            close_executor(self.generate_executor)

    def __enter__(self) -> "MultiModelScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
