"""Acceptance: the global score cache is a pure cross-run optimisation.

Cold (empty cache), warm (same store, same process), cross-run-warm
(store reloaded from disk by a fresh benchmark) and cache-off runs must
all produce bit-identical records — across every executor backend and
both shard planners — and the multi-model scheduler must share one cache
across its jobs.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.pipeline.executors import EXECUTOR_NAMES
from repro.scoring.cache import SCORER_VERSION, ScoreCache

MODEL = "gpt-3.5"
SAMPLE_SIZE = 24


@pytest.fixture(scope="module")
def seeded_problems(small_dataset):
    return list(small_dataset)[:SAMPLE_SIZE]


@pytest.fixture(scope="module")
def cache_off_baseline(small_dataset, seeded_problems):
    """The seed path: no cache configured at all."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    return benchmark.evaluate_model(MODEL, problems=seeded_problems)


@pytest.mark.parametrize("shard_by", ["count", "cost"])
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_cold_warm_crossrun_identical_across_executors_and_planners(
    small_dataset, seeded_problems, cache_off_baseline, tmp_path, executor, shard_by
):
    path = tmp_path / "cache.jsonl"

    def run(config):
        return CloudEvalBenchmark(small_dataset, config).evaluate_model(
            MODEL, problems=seeded_problems
        )

    def config():
        return BenchmarkConfig(
            seed=7,
            executor=executor,
            max_workers=3,
            shards=2,
            shard_by=shard_by,
            score_cache=str(path),
        )

    cold = run(config())
    assert cold.records == cache_off_baseline.records

    # cross-run warm: a fresh benchmark reloads the store from disk and
    # serves every unique pair from it
    warm_benchmark = CloudEvalBenchmark(small_dataset, config())
    warm = warm_benchmark.evaluate_model(MODEL, problems=seeded_problems)
    assert warm.records == cold.records
    cache = warm_benchmark.score_cache()
    assert cache.hits > 0 and cache.misses == 0 and cache.writes == 0

    # in-process warm rerun over the very same store
    rewarm = warm_benchmark.evaluate_model(MODEL, problems=seeded_problems)
    assert rewarm.records == cold.records


def test_cache_hits_resolve_in_parent_for_process_pools(
    small_dataset, seeded_problems, cache_off_baseline, tmp_path
):
    """A warm process-pool run ships zero score tasks to the workers: every
    hit is resolved in the parent, so the pool only ever sees misses."""

    from repro.pipeline import stages as stages_module

    path = tmp_path / "cache.jsonl"

    def config():
        return BenchmarkConfig(
            seed=7, executor="process", max_workers=3, score_cache=str(path)
        )

    cold = CloudEvalBenchmark(small_dataset, config()).evaluate_model(
        MODEL, problems=seeded_problems
    )
    assert cold.records == cache_off_baseline.records

    envelopes: list[int] = []
    original = stages_module.run_timed_score_task

    def spy(task):
        envelopes.append(1)
        return original(task)

    stages_module.run_timed_score_task = spy
    try:
        warm = CloudEvalBenchmark(small_dataset, config()).evaluate_model(
            MODEL, problems=seeded_problems
        )
    finally:
        stages_module.run_timed_score_task = original
    assert warm.records == cold.records
    assert not envelopes  # nothing was shipped to the pool


def test_scheduler_shares_one_cache_across_models(small_dataset, seeded_problems, tmp_path):
    """Model B's lookups hit cards model A wrote within the same run when
    both emit the same extracted answer for the same reference — modelled
    here as two differently-named endpoints over one underlying model (the
    deployment where a shared cache absorbs the most: replicas/aliases of
    the same system on one leaderboard)."""

    class NamedEndpoint:
        def __init__(self, name, inner):
            self._name = name
            self.inner = inner

        @property
        def name(self):
            return self._name

        def generate(self, problem, shots=0, sample_index=0):
            return self.inner.generate(problem, shots=shots, sample_index=sample_index)

    config = BenchmarkConfig(seed=7, score_cache=str(tmp_path / "cache.jsonl"))
    benchmark = CloudEvalBenchmark(small_dataset, config)
    inner = benchmark._resolve_model("gpt-4")
    result = benchmark.evaluate_models(
        models=[NamedEndpoint("endpoint-a", inner), NamedEndpoint("endpoint-b", inner)],
        problems=seeded_problems,
    )
    cache = benchmark.score_cache()
    stats = cache.stats()
    # every unique (reference, answer) pair was written exactly once ...
    assert stats["entries"] == stats["writes"] == stats["misses"]
    # ... and the second endpoint's identical answers were served from the
    # card the first one wrote
    assert stats["hits"] == len(seeded_problems)
    assert result["endpoint-a"].records and result["endpoint-b"].records

    # per-model attribution adds up to the global counters
    per_model = [cache.stats_for(name) for name in result.models()]
    assert sum(s.hits for s in per_model) == stats["hits"]
    assert sum(s.misses for s in per_model) == stats["misses"]


def test_version_bump_invalidates_through_the_pipeline(
    small_dataset, seeded_problems, cache_off_baseline, tmp_path
):
    path = tmp_path / "cache.jsonl"
    cold_config = BenchmarkConfig(seed=7, score_cache=str(path))
    CloudEvalBenchmark(small_dataset, cold_config).evaluate_model(
        MODEL, problems=seeded_problems
    )

    bumped_store = ScoreCache(path, scorer_version=SCORER_VERSION + 1)
    assert bumped_store.stale > 0  # old entries were ignored on load
    bumped_config = BenchmarkConfig(seed=7, score_cache=bumped_store)
    bumped_benchmark = CloudEvalBenchmark(small_dataset, bumped_config)
    evaluation = bumped_benchmark.evaluate_model(MODEL, problems=seeded_problems)
    assert evaluation.records == cache_off_baseline.records
    # nothing could be served from the invalidated entries
    assert bumped_store.hits == 0 and bumped_store.writes > 0


def test_leaderboard_surfaces_cache_counters(small_dataset, seeded_problems, tmp_path):
    from repro.core.report import format_leaderboard

    config = BenchmarkConfig(seed=7, score_cache=str(tmp_path / "cache.jsonl"))
    benchmark = CloudEvalBenchmark(small_dataset, config)
    result = benchmark.evaluate_models(models=["gpt-4", "gpt-3.5"], problems=seeded_problems)
    report = format_leaderboard(result, score_cache=benchmark.score_cache())
    assert "cache_hits" in report
    assert "score cache:" in report
    stats = benchmark.score_cache().stats_for("gpt-4")
    assert f"{stats.hits}/{stats.lookups}" in report
