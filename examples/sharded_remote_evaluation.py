"""Overlapped sharded evaluation of a rate-limited "remote" endpoint.

The evaluation loop is wall-clock-bound twice over: a remote model
charges network latency per request, and scoring plus unit tests burn
CPU.  This example evaluates the same model three ways —

1. the plain serial pipeline (every latency paid in full, stages in
   lockstep),
2. the async executor alone (latencies overlap, scoring still barriers),
3. the sharded scheduler pairing async generation with process-pool
   scoring (generation of shard k+1 overlaps scoring of shard k),

then verifies all three produce bit-identical records.  The speedup is
real wall-clock; the scores cannot move.

Run with::

    python examples/sharded_remote_evaluation.py
"""

from __future__ import annotations

import time

from repro import build_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.schema import Variant
from repro.llm.remote import RemoteEndpointModel
from repro.pipeline import AsyncExecutor, EvaluationPipeline, ProcessExecutor, ShardedEvaluationPipeline
from repro.scoring.compiled import ReferenceStore

MODEL_NAME = "gpt-3.5"
PROBLEM_BUDGET = 120
LATENCY = 0.015  # 15ms per request, deterministic


def remote(inner):
    return RemoteEndpointModel(inner, latency_seconds=LATENCY, jitter_seconds=0.004, seed=5)


def main() -> None:
    dataset = build_dataset()
    problems = list(dataset.by_variant(Variant.ORIGINAL))[:PROBLEM_BUDGET]
    benchmark = CloudEvalBenchmark(dataset, BenchmarkConfig())
    inner, requests = benchmark.requests(MODEL_NAME, problems=problems)
    print(
        f"Evaluating {MODEL_NAME!r} on {len(requests)} problems behind a "
        f"{LATENCY * 1000:.0f}ms endpoint.\n"
    )

    start = time.perf_counter()
    serial = EvaluationPipeline(remote(inner), store=ReferenceStore()).run(requests)
    serial_s = time.perf_counter() - start
    print(f"serial pipeline                    : {serial_s:5.2f} s")

    start = time.perf_counter()
    with EvaluationPipeline(
        remote(inner), generate_executor="async", max_workers=16, store=ReferenceStore()
    ) as pipeline:
        async_only = pipeline.run(requests)
    async_s = time.perf_counter() - start
    print(f"async generation (16 in flight)    : {async_s:5.2f} s  ({serial_s / async_s:.1f}x)")

    start = time.perf_counter()
    # An executor passed as an instance stays caller-owned; the `with`
    # blocks shut both pools down deterministically.
    with ProcessExecutor(max_workers=2) as score_executor, ShardedEvaluationPipeline(
        remote(inner),
        shards=4,
        executor=score_executor,
        generate_executor=AsyncExecutor(max_concurrency=16),
        store=ReferenceStore(),
    ) as sharded:
        overlapped = sharded.run(requests)
    sharded_s = time.perf_counter() - start
    print(f"sharded async + process scoring    : {sharded_s:5.2f} s  ({serial_s / sharded_s:.1f}x)")

    assert async_only.records == serial.records, "async path changed a record"
    assert overlapped.records == serial.records, "sharded path changed a record"
    print("\nAll three runs are bit-identical.")
    scores = overlapped.mean_scores()
    print(f"unit-test mean {scores['unit_test']:.3f}, passes {overlapped.pass_count()}/{len(problems)}")


if __name__ == "__main__":
    main()
