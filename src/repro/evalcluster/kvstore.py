"""A Redis-like in-memory key-value store.

The master node of the paper's evaluation cluster keeps unit-test contexts,
inputs and outputs in Redis.  This class provides the handful of commands
the scheduler needs (strings, hashes and lists with blocking-free pops) so
the master/worker code reads like the real thing while staying in-process.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["RedisLikeStore"]


class RedisLikeStore:
    """In-memory subset of the Redis command surface."""

    def __init__(self) -> None:
        self._strings: dict[str, Any] = {}
        self._hashes: dict[str, dict[str, Any]] = {}
        self._lists: dict[str, deque[Any]] = {}

    # -- strings -----------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self._strings[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._strings.get(key, default)

    def incr(self, key: str, amount: int = 1) -> int:
        value = int(self._strings.get(key, 0)) + amount
        self._strings[key] = value
        return value

    def delete(self, key: str) -> None:
        self._strings.pop(key, None)
        self._hashes.pop(key, None)
        self._lists.pop(key, None)

    # -- hashes --------------------------------------------------------------
    def hset(self, key: str, field: str, value: Any) -> None:
        self._hashes.setdefault(key, {})[field] = value

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        """Set ``field`` only if it is absent; True when the write happened.

        First-write-wins is what makes duplicate job executions harmless:
        a re-enqueued job whose original worker turns out to have finished
        after all cannot overwrite the recorded result.
        """

        bucket = self._hashes.setdefault(key, {})
        if field in bucket:
            return False
        bucket[field] = value
        return True

    def hdel(self, key: str, field: str) -> bool:
        """Remove ``field`` from the hash; True when it existed."""

        bucket = self._hashes.get(key)
        if bucket is None or field not in bucket:
            return False
        del bucket[field]
        return True

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        return self._hashes.get(key, {}).get(field, default)

    def hgetall(self, key: str) -> dict[str, Any]:
        return dict(self._hashes.get(key, {}))

    def hlen(self, key: str) -> int:
        return len(self._hashes.get(key, {}))

    # -- lists ----------------------------------------------------------------
    def rpush(self, key: str, *values: Any) -> int:
        queue = self._lists.setdefault(key, deque())
        queue.extend(values)
        return len(queue)

    def lpop(self, key: str) -> Any:
        queue = self._lists.get(key)
        if not queue:
            return None
        return queue.popleft()

    def llen(self, key: str) -> int:
        return len(self._lists.get(key, ()))

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        items = list(self._lists.get(key, ()))
        if stop == -1:
            return items[start:]
        return items[start : stop + 1]

    # -- inspection --------------------------------------------------------------
    def keys(self) -> list[str]:
        return sorted(set(self._strings) | set(self._hashes) | set(self._lists))
