"""Dataset statistics (Tables 1 and 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.problem import ProblemSet
from repro.dataset.schema import Category, Variant

__all__ = [
    "AugmentationStats",
    "CategoryStats",
    "augmentation_statistics",
    "dataset_statistics",
    "format_table1",
    "format_table2",
]


@dataclass(frozen=True)
class AugmentationStats:
    """One column of Table 1."""

    variant: Variant
    count: int
    avg_words: float
    avg_tokens: float


@dataclass(frozen=True)
class CategoryStats:
    """One column of Table 2."""

    label: str
    count: int
    avg_question_words: float
    avg_solution_lines: float
    avg_solution_tokens: float
    max_solution_tokens: int
    avg_unit_test_lines: float


def augmentation_statistics(dataset: ProblemSet) -> dict[Variant, AugmentationStats]:
    """Compute Table 1: per-variant question counts and average lengths."""

    stats: dict[Variant, AugmentationStats] = {}
    for variant in Variant:
        subset = dataset.by_variant(variant)
        if len(subset) == 0:
            continue
        words = np.array([p.question_words() for p in subset], dtype=float)
        tokens = np.array([p.question_tokens() for p in subset], dtype=float)
        stats[variant] = AugmentationStats(
            variant=variant,
            count=len(subset),
            avg_words=float(words.mean()),
            avg_tokens=float(tokens.mean()),
        )
    return stats


def _category_stats(subset: ProblemSet, label: str) -> CategoryStats:
    words = np.array([p.question_words() for p in subset], dtype=float)
    lines = np.array([p.solution_lines() for p in subset], dtype=float)
    tokens = np.array([p.solution_tokens() for p in subset], dtype=float)
    test_lines = np.array([p.unit_test_lines() for p in subset], dtype=float)
    return CategoryStats(
        label=label,
        count=len(subset),
        avg_question_words=float(words.mean()) if len(subset) else 0.0,
        avg_solution_lines=float(lines.mean()) if len(subset) else 0.0,
        avg_solution_tokens=float(tokens.mean()) if len(subset) else 0.0,
        max_solution_tokens=int(tokens.max()) if len(subset) else 0,
        avg_unit_test_lines=float(test_lines.mean()) if len(subset) else 0.0,
    )


def dataset_statistics(dataset: ProblemSet) -> dict[str, CategoryStats]:
    """Compute Table 2: per-category statistics over the original problems."""

    originals = dataset.originals()
    stats: dict[str, CategoryStats] = {}
    for category in Category:
        subset = originals.by_category(category)
        if len(subset) == 0:
            continue
        stats[category.value] = _category_stats(subset, category.value)
    stats["total"] = _category_stats(originals, "total")
    return stats


def format_table1(stats: dict[Variant, AugmentationStats]) -> str:
    """Render Table 1 as aligned text."""

    original = stats[Variant.ORIGINAL]
    simplified = stats[Variant.SIMPLIFIED]
    translated = stats[Variant.TRANSLATED]
    lines = ["Table 1: Statistics of Practical Data Augmentation", ""]
    lines.append(f"{'':<14}{'Original':>12}{'Simplified':>22}{'Translated':>14}")
    lines.append(f"{'Count':<14}{original.count:>12}{simplified.count:>22}{translated.count:>14}")

    def _delta(value: float, base: float) -> str:
        return f"{value:.2f} ({(value - base) / base * 100:+.1f}%)"

    lines.append(
        f"{'Avg. words':<14}{original.avg_words:>12.2f}{_delta(simplified.avg_words, original.avg_words):>22}"
        f"{translated.avg_words:>14.2f}"
    )
    lines.append(
        f"{'Avg. tokens':<14}{original.avg_tokens:>12.1f}{_delta(simplified.avg_tokens, original.avg_tokens):>22}"
        f"{translated.avg_tokens:>14.1f}"
    )
    return "\n".join(lines)


def format_table2(stats: dict[str, CategoryStats]) -> str:
    """Render Table 2 as aligned text."""

    lines = ["Table 2: Statistics of the CloudEval-YAML dataset", ""]
    header = (
        f"{'Category':<12}{'Count':>7}{'Q words':>10}{'Sol lines':>11}"
        f"{'Sol tokens':>12}{'Max tokens':>12}{'Test lines':>12}"
    )
    lines.append(header)
    for label, row in stats.items():
        lines.append(
            f"{label:<12}{row.count:>7}{row.avg_question_words:>10.2f}{row.avg_solution_lines:>11.2f}"
            f"{row.avg_solution_tokens:>12.2f}{row.max_solution_tokens:>12}{row.avg_unit_test_lines:>12.2f}"
        )
    return "\n".join(lines)
