"""Figure 9 — Predicting unit-test outcomes from text-level and YAML-aware scores.

Paper observations: a gradient-boosted classifier trained on the cheap
scores of the other 11 models preserves the ranking of a held-out model for
most models, but per-model relative errors reach tens of percent, so unit
tests remain necessary for accurate evaluation; SHAP analysis shows the
key-value wildcard match is the most informative feature.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import full_zero_shot_result
from repro.analysis.predictor import FEATURE_NAMES, predict_unit_test_scores, shap_feature_importance


def _run_predictor():
    result = full_zero_shot_result()
    outcomes = predict_unit_test_scores(result, variant="original")
    importance = shap_feature_importance(result, variant="original", max_samples=300)
    return outcomes, importance


def test_fig9_unit_test_prediction(benchmark):
    outcomes, importance = benchmark.pedantic(_run_predictor, rounds=1, iterations=1)

    print("\nFigure 9a (leave-one-model-out prediction):")
    for outcome in sorted(outcomes, key=lambda o: o.actual_passes, reverse=True):
        print(
            f"  {outcome.model_name:<26} predicted {outcome.predicted_passes:6.1f}   "
            f"actual {outcome.actual_passes:4d}   error {outcome.error_percent:5.1f}%"
        )
    print("Figure 9b (mean |SHAP| per feature):")
    for name, value in sorted(importance.items(), key=lambda item: -item[1]):
        print(f"  {name:<14} {value:.4f}")

    assert len(outcomes) == 12
    predicted = np.array([o.predicted_passes for o in outcomes])
    actual = np.array([o.actual_passes for o in outcomes], dtype=float)

    # The predicted scores correlate strongly with the ground truth, so the
    # relative ordering is mostly preserved...
    correlation = np.corrcoef(predicted, actual)[0, 1]
    assert correlation > 0.75

    # ...the top proprietary models are predicted well above the weakest models...
    by_name = {o.model_name: o for o in outcomes}
    weakest = min(outcomes, key=lambda o: o.actual_passes)
    assert by_name["gpt-4"].predicted_passes > weakest.predicted_passes
    assert by_name["gpt-3.5"].predicted_passes > weakest.predicted_passes

    # ...but per-model errors are substantial, so unit tests are still needed.
    worst_error = max(o.error_percent for o in outcomes if o.actual_passes > 0)
    assert worst_error > 5.0

    # SHAP: key-value wildcard match is the dominant feature.
    assert set(importance) == set(FEATURE_NAMES)
    assert max(importance, key=importance.get) == "kv_wildcard"
