"""Tests for the Problem / ProblemSet data model."""

from __future__ import annotations

import pytest

from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Category, Variant
from repro.testexec import ApplyAnswer, UnitTestProgram


def _problem(problem_id="pod-0001-original", variant=Variant.ORIGINAL, context=None):
    return Problem(
        problem_id=problem_id,
        base_id=problem_id.rsplit("-", 1)[0],
        category=Category.POD,
        variant=variant,
        question="Create a pod named web.",
        yaml_context=context,
        reference_yaml="apiVersion: v1\nkind: Pod\nmetadata:\n  name: web  # *\nspec:\n  containers:\n  - name: c\n    image: nginx\n",
        unit_test=UnitTestProgram(steps=(ApplyAnswer(),)),
        difficulty=0.3,
        metadata={"primary_kind": "Pod"},
    )


def test_reference_plain_strips_labels():
    assert "# *" not in _problem().reference_plain()


def test_full_question_embeds_context_in_fence():
    with_context = _problem(context="apiVersion: v1\nkind: Pod\n")
    assert "```" in with_context.full_question()
    assert with_context.has_code_context
    assert not _problem().has_code_context


def test_statistics_helpers_positive():
    problem = _problem()
    assert problem.question_words() > 0
    assert problem.question_tokens() >= problem.question_words()
    assert problem.solution_lines() == 8
    assert problem.unit_test_lines() >= 2


def test_serialisation_round_trip():
    problem = _problem(context="kind: Pod\n")
    assert Problem.from_dict(problem.to_dict()) == problem


def test_application_property():
    assert _problem().application == "kubernetes"


def test_problem_set_filters():
    problems = [
        _problem("pod-0001-original"),
        _problem("pod-0001-simplified", variant=Variant.SIMPLIFIED),
        _problem("pod-0002-original"),
    ]
    dataset = ProblemSet(problems)
    assert len(dataset) == 3
    assert len(dataset.originals()) == 2
    assert len(dataset.by_variant(Variant.SIMPLIFIED)) == 1
    assert len(dataset.by_category(Category.POD)) == 3
    assert len(dataset.by_application("kubernetes")) == 3
    assert dataset.get("pod-0002-original").problem_id == "pod-0002-original"
    with pytest.raises(KeyError):
        dataset.get("missing")


def test_problem_set_index_is_cached_and_complete():
    problems = [
        _problem("pod-0001-original"),
        _problem("pod-0001-simplified", variant=Variant.SIMPLIFIED),
        _problem("pod-0002-original"),
    ]
    dataset = ProblemSet(problems)
    # Repeated lookups return the lazily built partition, not a rescan.
    originals = dataset.by_variant(Variant.ORIGINAL)
    assert dataset.by_variant(Variant.ORIGINAL) is originals
    assert [p.problem_id for p in originals] == ["pod-0001-original", "pod-0002-original"]
    pods = dataset.by_category(Category.POD)
    assert dataset.by_category(Category.POD) is pods
    # Absent partitions come back empty (and stay cached).
    assert len(dataset.by_variant(Variant.TRANSLATED)) == 0
    assert len(dataset.by_category(Category.ENVOY)) == 0


def test_problem_set_rejects_duplicate_ids():
    with pytest.raises(ValueError):
        ProblemSet([_problem(), _problem()])


def test_problem_set_dict_round_trip():
    dataset = ProblemSet([_problem()])
    restored = ProblemSet.from_dicts(dataset.to_dicts())
    assert restored[0] == dataset[0]


def test_problem_pickles_without_instance_caches(small_original_problems):
    """Regression: derived artifacts cached on the instance (compiled
    reference, image list) must not ride along in pickles — process-pool
    task envelopes depend on the problem staying small."""

    import pickle

    from repro.evalcluster.simulation import problem_images
    from repro.scoring.compiled import _CACHE_ATTR, get_compiled_reference

    problem = list(small_original_problems)[0]
    bare_size = len(pickle.dumps(problem))

    get_compiled_reference(problem)  # populate both instance caches
    problem_images(problem)
    assert _CACHE_ATTR in problem.__dict__

    data = pickle.dumps(problem)
    assert len(data) == bare_size  # caches stripped, fields only
    clone = pickle.loads(data)
    assert _CACHE_ATTR not in clone.__dict__
    assert clone == problem
