"""Unit tests for the typed pipeline stages and their composition."""

from __future__ import annotations

import pytest

from repro.llm.interface import GenerationRequest, QueryModule
from repro.llm.registry import get_model
from repro.pipeline import (
    EvaluationPipeline,
    ExtractStage,
    GenerateStage,
    PromptStage,
    ScoreStage,
    StageContext,
    WorkItem,
)
from repro.postprocess import extract_yaml
from repro.scoring.compiled import ReferenceStore


def _items(problems, shots=0):
    return [WorkItem(request=GenerationRequest(problem=p, shots=shots)) for p in problems]


def test_prompt_stage_materialises_prompts(small_original_problems):
    items = PromptStage().process(_items(list(small_original_problems)[:3]), StageContext())
    assert all(item.prompt.startswith("You are an expert engineer") for item in items)
    assert items[0].request.problem.question.split(".")[0] in items[0].prompt


def test_extract_stage_strips_prose(small_original_problems):
    items = _items(list(small_original_problems)[:1])
    items[0].response = "Here is the YAML:\n```yaml\napiVersion: v1\nkind: Pod\n```"
    ExtractStage().process(items, StageContext())
    assert items[0].extracted == "apiVersion: v1\nkind: Pod\n"


def test_score_stage_memoises_identical_answers(small_original_problems):
    problem = list(small_original_problems)[0]
    answer = problem.reference_plain()
    stage = ScoreStage(store=ReferenceStore())
    calls = []
    original = stage._score_one

    def counting(task):
        calls.append(task)
        return original(task)

    stage._score_one = counting
    # Two batches carrying the same (problem, answer) pair: one real scoring.
    for _ in range(2):
        items = _items([problem])
        items[0].response = answer
        items[0].extracted = extract_yaml(answer)
        stage.process(items, StageContext())
        assert items[0].scores is not None
        assert items[0].scores.exact_match == 1.0
    assert len(calls) == 1


def test_generate_errors_flow_into_records(small_original_problems):
    problems = list(small_original_problems)[:3]

    class Broken:
        name = "broken"

        def generate(self, problem, shots=0, sample_index=0):
            raise RuntimeError("rate limited")

    evaluation = EvaluationPipeline(Broken()).run(GenerationRequest(problem=p) for p in problems)
    assert len(evaluation.records) == len(problems)
    for record in evaluation.records:
        assert record.error.startswith("RuntimeError:")
        assert record.raw_response == ""
        assert record.scores.unit_test == 0.0
        assert record.scores.bleu == 0.0


def test_custom_stage_slots_into_chain(small_original_problems):
    """A user stage (answer rewriting) composes with the default chain."""

    problems = list(small_original_problems)[:2]
    model = get_model("gpt-4")
    query = QueryModule(model)

    class AppendProse:
        """Rewrites every response; extraction must still see clean YAML."""

        name = "append-prose"

        def process(self, items, context):
            for item in items:
                item.response += "\n\nThis configuration satisfies all the requirements."
            return items

    stages = [
        PromptStage(),
        GenerateStage(query),
        AppendProse(),
        ExtractStage(),
        ScoreStage(store=ReferenceStore()),
    ]
    pipeline = EvaluationPipeline(model, stages=stages)
    evaluation = pipeline.run(GenerationRequest(problem=p) for p in problems)
    baseline = EvaluationPipeline(model).run(GenerationRequest(problem=p) for p in problems)
    # The fence wrapper is undone by extraction, so scores are unchanged.
    assert [r.scores.as_dict() for r in evaluation.records] == [
        r.scores.as_dict() for r in baseline.records
    ]


def test_run_iter_streams_in_request_order(small_original_problems):
    problems = list(small_original_problems)[:7]
    pipeline = EvaluationPipeline(get_model("gpt-4"), batch_size=3)
    seen = [r.problem_id for r in pipeline.run_iter(GenerationRequest(problem=p) for p in problems)]
    assert seen == [p.problem_id for p in problems]


def test_pipeline_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        EvaluationPipeline(get_model("gpt-4"), batch_size=0)


def test_unscored_item_cannot_become_record(small_original_problems):
    item = _items(list(small_original_problems)[:1])[0]
    with pytest.raises(ValueError):
        item.to_record()
