"""Shared fixtures for the test suite.

The full 1011-problem dataset is cheap to build (fractions of a second) but
evaluating models over it is not, so most tests use ``small_dataset`` — a
reduced corpus with every category represented — and only the integration
tests touch the full corpus.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.builder import build_dataset, build_original_problems
from repro.dataset.problem import ProblemSet
from repro.dataset.schema import Category


SMALL_COUNTS = {
    Category.POD: 8,
    Category.DAEMONSET: 6,
    Category.SERVICE: 5,
    Category.JOB: 4,
    Category.DEPLOYMENT: 5,
    Category.OTHERS: 17,
    Category.ENVOY: 4,
    Category.ISTIO: 4,
}


@pytest.fixture(scope="session")
def small_original_problems() -> ProblemSet:
    """A reduced original-only corpus covering every category."""

    return build_original_problems(category_counts=SMALL_COUNTS)


@pytest.fixture(scope="session")
def small_dataset() -> ProblemSet:
    """The reduced corpus with simplified/translated variants included."""

    return build_dataset(category_counts=SMALL_COUNTS)


@pytest.fixture(scope="session")
def full_original_problems() -> ProblemSet:
    """The full 337-problem original corpus (session-cached)."""

    return build_original_problems()


@pytest.fixture(scope="session")
def full_dataset() -> ProblemSet:
    """The full 1011-problem dataset (session-cached)."""

    return build_dataset()


@pytest.fixture(scope="session")
def small_benchmark(small_dataset: ProblemSet) -> CloudEvalBenchmark:
    """A benchmark over the reduced corpus with default configuration."""

    return CloudEvalBenchmark(small_dataset, BenchmarkConfig())


@pytest.fixture(scope="session")
def small_benchmark_result(small_benchmark: CloudEvalBenchmark):
    """Five representative models evaluated over the reduced corpus.

    The selection spans the quality range of Table 4 (frontier, mid-tier
    chat models, a code model) so ranking- and predictor-related tests have
    enough signal without evaluating all twelve models.
    """

    return small_benchmark.evaluate_models(
        models=["gpt-4", "gpt-3.5", "llama-2-70b-chat", "llama-2-13b-chat", "codellama-7b-instruct"]
    )
