"""Tests for the line-level edit-distance metric."""

from __future__ import annotations

from repro.yamlkit.diffing import changed_lines, line_edit_distance, scaled_edit_similarity

REFERENCE = """apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  ports:
  - port: 80
"""


def test_identical_texts_have_zero_distance():
    assert line_edit_distance(REFERENCE, REFERENCE) == 0
    assert scaled_edit_similarity(REFERENCE, REFERENCE) == 1.0


def test_blank_lines_are_ignored():
    noisy = REFERENCE.replace("spec:", "spec:\n\n")
    assert line_edit_distance(noisy, REFERENCE) == 0


def test_single_changed_line_counts_two_edits():
    changed = REFERENCE.replace("port: 80", "port: 8080")
    assert line_edit_distance(changed, REFERENCE) == 2


def test_similarity_decreases_with_more_edits():
    one = REFERENCE.replace("port: 80", "port: 8080")
    two = one.replace("name: web", "name: other")
    assert scaled_edit_similarity(two, REFERENCE) < scaled_edit_similarity(one, REFERENCE)


def test_empty_generated_scores_zero():
    assert scaled_edit_similarity("", REFERENCE) == 0.0


def test_empty_reference_edge_cases():
    assert scaled_edit_similarity("", "") == 1.0
    assert scaled_edit_similarity("something", "") == 0.0


def test_similarity_clamped_at_zero_for_unrelated_text():
    unrelated = "\n".join(f"line-{i}: value" for i in range(30))
    assert scaled_edit_similarity(unrelated, REFERENCE) == 0.0


def test_changed_lines_reports_both_directions():
    changed = REFERENCE.replace("port: 80", "port: 8080")
    missing, extra = changed_lines(changed, REFERENCE)
    assert any("80" in line for line in missing)
    assert any("8080" in line for line in extra)
