"""Tests for the benchmark driver and its configuration."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark, format_leaderboard
from repro.dataset.schema import Variant
from repro.scoring.aggregate import METRIC_NAMES


def test_config_validation():
    with pytest.raises(ValueError):
        BenchmarkConfig(shots=5)
    with pytest.raises(ValueError):
        BenchmarkConfig(samples=0)
    with pytest.raises(ValueError):
        BenchmarkConfig(variants=())


def test_evaluate_model_covers_all_variants(small_benchmark, small_dataset):
    evaluation = small_benchmark.evaluate_model("gpt-4")
    assert len(evaluation.first_samples()) == len(small_dataset)
    variants = {record.variant for record in evaluation.records}
    assert variants == {"original", "simplified", "translated"}


def test_english_only_model_skips_translated(small_benchmark, small_dataset):
    evaluation = small_benchmark.evaluate_model("palm-2-bison")
    assert all(record.variant != Variant.TRANSLATED.value for record in evaluation.records)
    expected = len(small_dataset) - len(small_dataset.by_variant(Variant.TRANSLATED))
    assert len(evaluation.records) == expected


def test_mean_scores_contains_every_metric(small_benchmark_result):
    scores = small_benchmark_result["gpt-4"].mean_scores()
    assert set(scores) == set(METRIC_NAMES)
    assert all(0.0 <= value <= 1.0 for value in scores.values())


def test_stronger_model_scores_higher(small_benchmark_result):
    strong = small_benchmark_result["gpt-4"].unit_test_score()
    weak = small_benchmark_result["codellama-7b-instruct"].unit_test_score()
    assert strong > weak


def test_leaderboard_sorted_by_unit_test(small_benchmark_result):
    leaderboard = small_benchmark_result.leaderboard()
    unit_scores = [scores["unit_test"] for _, scores in leaderboard]
    assert unit_scores == sorted(unit_scores, reverse=True)
    rendered = format_leaderboard(small_benchmark_result)
    assert "gpt-4" in rendered and "unit_test" in rendered
    assert "pred_eval_s" not in rendered  # the cost column is opt-in


def test_leaderboard_breaks_ties_by_model_name():
    from copy import deepcopy

    from repro.core.benchmark import BenchmarkResult
    from repro.pipeline.records import ModelEvaluation

    tied = BenchmarkResult()
    # Two models with identical (empty) evaluations score identically on
    # every metric; their order must still be deterministic.
    tied.evaluations["zeta"] = ModelEvaluation(model_name="zeta")
    tied.evaluations["alpha"] = deepcopy(ModelEvaluation(model_name="alpha"))
    assert [name for name, _ in tied.leaderboard()] == ["alpha", "zeta"]


def test_leaderboard_predicted_cost_column(small_benchmark, small_benchmark_result, small_dataset):
    rendered = format_leaderboard(
        small_benchmark_result, cost_model=small_benchmark.cost_model()
    )
    assert "pred_eval_s" in rendered
    # Every model evaluated the same corpus here, so every row shows the
    # same predicted seconds: the warm-cache total over the dataset.
    expected = small_benchmark.cost_model().predict_problems_seconds(
        [small_dataset.get(r.problem_id)
         for r in small_benchmark_result["gpt-4"].first_samples()]
    )
    assert f"{expected:.1f}" in rendered
    with pytest.raises(ValueError, match="dataset"):
        from repro.evalcluster.cost import CostModel

        format_leaderboard(small_benchmark_result, cost_model=CostModel())


def test_pass_count_filters_by_variant(small_benchmark_result):
    evaluation = small_benchmark_result["gpt-4"]
    total = evaluation.pass_count()
    original_only = evaluation.pass_count(variant="original")
    assert 0 < original_only <= total


def test_records_carry_problem_metadata(small_benchmark_result, small_dataset):
    record = small_benchmark_result["gpt-4"].records[0]
    problem = small_dataset.get(record.problem_id)
    assert record.category == problem.category.value
    assert record.application == problem.application
    assert record.solution_lines == problem.solution_lines()
    assert record.raw_response


def test_evaluation_is_deterministic(small_dataset):
    config = BenchmarkConfig()
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))[:10]
    a = CloudEvalBenchmark(small_dataset, config).evaluate_model("llama-2-13b-chat", problems=problems)
    b = CloudEvalBenchmark(small_dataset, config).evaluate_model("llama-2-13b-chat", problems=problems)
    assert [r.scores.as_dict() for r in a.records] == [r.scores.as_dict() for r in b.records]


def test_multi_sample_evaluation(small_dataset):
    bench = CloudEvalBenchmark(small_dataset, BenchmarkConfig(samples=3))
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))[:5]
    evaluation = bench.evaluate_model("gpt-3.5", problems=problems)
    assert len(evaluation.records) == 15
    assert {r.sample_index for r in evaluation.records} == {0, 1, 2}


def test_filter_helper(small_benchmark_result):
    evaluation = small_benchmark_result["gpt-4"]
    envoy_records = evaluation.filter(application="envoy")
    assert envoy_records and all(r.application == "envoy" for r in envoy_records)


def test_skipping_unit_tests_zeroes_functional_score(small_dataset):
    bench = CloudEvalBenchmark(small_dataset, BenchmarkConfig(run_unit_tests=False))
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))[:5]
    evaluation = bench.evaluate_model("gpt-4", problems=problems)
    assert all(r.scores.unit_test == 0.0 for r in evaluation.records)
