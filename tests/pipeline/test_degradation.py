"""Graceful degradation: DegradedResult slots become error-marked records.

Exercises the executor-agnostic half of the chaos story: any executor
(the fleet in production, a stub here) may hand :class:`DegradedResult`
markers back from ``map`` when the infrastructure lost slots, and the
pipeline must absorb them — zero-score cards, ``error`` set, excluded
from the means, counted by ``coverage``, surfaced on the leaderboard.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.core.benchmark import BenchmarkResult
from repro.core.report import format_leaderboard
from repro.llm.interface import GenerationRequest
from repro.llm.registry import calibrate_models, get_model
from repro.pipeline import EvaluationPipeline
from repro.pipeline.executors import DegradedResult, SerialExecutor
from repro.pipeline.records import ModelEvaluation
from repro.scoring.compiled import ReferenceStore

MODEL = "gpt-3.5"

REASON = "lease expired twice; job abandoned"


class DegradingExecutor:
    """Wrap SerialExecutor, replacing chosen map slots with markers."""

    name = "degrading"

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.inner = SerialExecutor()

    def map(self, fn, tasks):
        results = self.inner.map(fn, tasks)
        return [
            DegradedResult(reason=REASON) if index in self.drop_indices else result
            for index, result in enumerate(results)
        ]


def _evaluate(small_dataset, executor, problems):
    model = calibrate_models([get_model(MODEL, seed=7)], small_dataset)[0]
    pipeline = EvaluationPipeline(
        model, executor=executor, store=ReferenceStore(), batch_size=len(problems)
    )
    requests = [
        GenerationRequest(problem=problem, shots=0, sample_index=0) for problem in problems
    ]
    return pipeline.run(requests)


class TestDegradedRecords:
    def test_degraded_slot_becomes_an_error_marked_record(self, small_dataset):
        problems = list(small_dataset)[:6]
        serial = _evaluate(small_dataset, SerialExecutor(), problems)
        degraded = _evaluate(small_dataset, DegradingExecutor({0}), problems)

        record = degraded.records[0]
        assert record.error == f"degraded: {REASON}"
        assert record.scores.failure_message == REASON
        assert all(value == 0.0 for value in record.scores.as_dict().values())
        assert record.score_seconds == 0.0
        # Generation still happened; only the scoring slot was lost.
        assert record.raw_response == serial.records[0].raw_response
        # Every other record is untouched.
        assert degraded.records[1:] == serial.records[1:]

    def test_coverage_counts_the_loss_and_means_exclude_it(self, small_dataset):
        problems = list(small_dataset)[:6]
        serial = _evaluate(small_dataset, SerialExecutor(), problems)
        degraded = _evaluate(small_dataset, DegradingExecutor({0, 2}), problems)

        assert serial.coverage == 1.0
        assert degraded.coverage == pytest.approx(4 / 6)
        healthy = [serial.records[i] for i in (1, 3, 4, 5)]
        assert degraded.mean_scores() == serial.mean_scores(healthy)

    def test_coverage_of_an_empty_evaluation_is_total(self):
        assert ModelEvaluation(model_name="empty").coverage == 1.0

    def test_leaderboard_coverage_column_is_opt_out_for_degraded_runs(self, small_dataset):
        problems = list(small_dataset)[:6]
        evaluation = _evaluate(small_dataset, DegradingExecutor({0}), problems)
        result = BenchmarkResult()
        result.evaluations[MODEL] = evaluation
        rendered = format_leaderboard(result)
        assert "coverage" in rendered
        assert "0.83" in rendered  # 5 of 6 records scored
        # Explicit opt-out restores the clean layout even for a lossy run.
        assert "coverage" not in format_leaderboard(result, coverage=False)

    def test_clean_leaderboard_is_byte_identical_to_before(self, small_dataset):
        problems = list(small_dataset)[:6]
        evaluation = _evaluate(small_dataset, SerialExecutor(), problems)
        result = BenchmarkResult()
        result.evaluations[MODEL] = evaluation
        clean = format_leaderboard(result)
        assert "coverage" not in clean
        # Forcing the column on a clean run shows full coverage.
        forced = format_leaderboard(result, coverage=True)
        assert "coverage" in forced
        assert "1.00" in forced

    def test_pre_existing_error_is_not_overwritten(self, small_dataset):
        problems = list(small_dataset)[:3]
        evaluation = _evaluate(small_dataset, DegradingExecutor({1}), problems)
        # The degraded record's error came from the degradation...
        assert evaluation.records[1].error.startswith("degraded: ")
        # ...but a record that already carried a generation error keeps it.
        generation_failed = dataclasses.replace(
            evaluation.records[0], error="model exploded"
        )
        assert generation_failed.error == "model exploded"
        evaluation.records[0] = generation_failed
        assert evaluation.coverage == pytest.approx(1 / 3)


class TestDegradedResultType:
    def test_is_a_frozen_value_type(self):
        marker = DegradedResult(reason="why")
        assert marker == DegradedResult(reason="why")
        with pytest.raises(dataclasses.FrozenInstanceError):
            marker.reason = "other"
