"""Executor backends: ordered-map semantics and cross-backend determinism."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.pipeline.executors import (
    ClusterExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)

MODELS = ["gpt-4", "llama-2-70b-chat"]


@pytest.mark.parametrize(
    "executor",
    [SerialExecutor(), ThreadedExecutor(max_workers=4), ClusterExecutor(num_workers=4)],
    ids=["serial", "thread", "cluster"],
)
def test_map_preserves_order(executor):
    tasks = list(range(37))
    assert executor.map(lambda x: x * x, tasks) == [x * x for x in tasks]


def test_cluster_executor_surfaces_task_failure():
    def boom(x):
        if x == 3:
            raise ValueError("bad task")
        return x

    with pytest.raises(RuntimeError, match="bad task"):
        ClusterExecutor(num_workers=2).map(boom, list(range(5)))


def test_cluster_executor_more_workers_same_results():
    tasks = list(range(50))
    one = ClusterExecutor(num_workers=1).map(lambda x: x + 1, tasks)
    many = ClusterExecutor(num_workers=16).map(lambda x: x + 1, tasks)
    assert one == many


def test_resolve_executor_specs():
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert isinstance(resolve_executor("thread", 8), ThreadedExecutor)
    assert isinstance(resolve_executor("cluster", 8), ClusterExecutor)
    custom = SerialExecutor()
    assert resolve_executor(custom) is custom
    with pytest.raises(ValueError):
        resolve_executor("ray")


def test_invalid_worker_counts_rejected():
    with pytest.raises(ValueError):
        ThreadedExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ClusterExecutor(num_workers=0)


def test_cluster_executor_determinism_vs_serial(small_dataset):
    """Acceptance: same seed => identical records and leaderboard across backends."""

    problems = list(small_dataset)[:30]
    results = {}
    for executor in ("serial", "cluster"):
        config = BenchmarkConfig(seed=7, executor=executor, max_workers=4 if executor == "cluster" else 1)
        benchmark = CloudEvalBenchmark(small_dataset, config)
        results[executor] = benchmark.evaluate_models(models=MODELS, problems=problems)

    serial, cluster = results["serial"], results["cluster"]
    assert serial.leaderboard() == cluster.leaderboard()
    for model in MODELS:
        assert serial[model].records == cluster[model].records
