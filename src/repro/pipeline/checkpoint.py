"""Checkpointing for partially evaluated pipeline runs.

A full benchmark run is hours of model queries and unit tests; losing it
to a crash at problem 900 of 1011 is exactly the failure mode the paper's
cluster design works around.  :class:`PipelineCheckpoint` stores finished
:class:`~repro.pipeline.records.EvaluationRecord`s keyed by the identity
of their unit of work — ``(model, problem, shots, sample)`` — so a re-run
of the same pipeline skips straight past everything already evaluated.

The store is an append-only JSON-lines file (one record per line) when
given a path, or purely in-memory otherwise.  Durability is torn-write
proof in both directions (:class:`repro.utils.jsonl.JsonlLog`): appends
are written per batch with a single flush + fsync, a kill mid-append
loses at most the final, partially written line — which later loads
skip and the next append seals into its own junk line so records can
never glue onto the fragment — and full rewrites (:meth:`clear`,
:meth:`compact`) go through a temporary file renamed over the original
with :func:`os.replace`, so the file is atomically either the old
content or the new, never a torn hybrid.  Loads stream and never write:
opening a checkpoint someone else is appending to is always safe.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.pipeline.records import EvaluationRecord, record_from_dict, record_to_dict
from repro.utils.jsonl import JsonlLog

__all__ = ["PipelineCheckpoint", "model_checkpoint_base", "shard_checkpoint_path"]

RecordKey = tuple[str, str, int, int]

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def model_checkpoint_base(base: str | os.PathLike[str], model_name: str) -> Path:
    """The per-model checkpoint base of a multi-model (leaderboard) run.

    A scheduled leaderboard run keeps each model's shards under its own
    base (``run.ckpt.jsonl`` → ``run.ckpt.jsonl.gpt-4``), from which
    :func:`shard_checkpoint_path` then derives the per-shard files, so
    every ``(model, shard)`` pair resumes independently.  Characters that
    are not filesystem-safe are collapsed to ``-``.
    """

    slug = _SLUG_RE.sub("-", model_name).strip("-") or "model"
    return Path(f"{os.fspath(base)}.{slug}")


def shard_checkpoint_path(base: str | os.PathLike[str], index: int, num_shards: int) -> Path:
    """The checkpoint file of shard ``index`` of a sharded run.

    A sharded evaluation keeps one append-only file per shard next to the
    base path (``run.ckpt.jsonl`` → ``run.ckpt.jsonl.shard-02-of-04``), so
    shards can be written concurrently — and resumed or even re-run on
    different machines — without sharing a file handle.
    """

    if not 0 <= index < num_shards:
        raise ValueError(f"shard index {index} out of range for {num_shards} shards")
    return Path(f"{os.fspath(base)}.shard-{index:02d}-of-{num_shards:02d}")


class PipelineCheckpoint:
    """Completed evaluation records, resumable across pipeline runs."""

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[RecordKey, EvaluationRecord] = {}
        self._log = JsonlLog(self.path) if self.path is not None else None
        if self._log is not None:
            # Stream every complete, parseable line; a torn tail is
            # ignored here and sealed off by the log on the next append,
            # so a new record can never glue onto the fragment.  Loading
            # writes nothing — observing a live checkpoint is always safe.
            for record in self._log.scan(
                lambda line: record_from_dict(json.loads(line)),
                errors=(ValueError, KeyError, TypeError),
            ):
                self._records[record.key] = record

    # -- persistence --------------------------------------------------------
    @staticmethod
    def _lines(records: Iterable[EvaluationRecord]) -> list[str]:
        return [json.dumps(record_to_dict(record)) + "\n" for record in records]

    # -- record access ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EvaluationRecord]:
        return iter(self._records.values())

    def get(self, key: RecordKey) -> EvaluationRecord | None:
        """The stored record for a unit of work, or None when not yet done."""

        return self._records.get(key)

    def put(self, record: EvaluationRecord) -> None:
        """Store a finished record (and append it to the backing file)."""

        self.put_batch([record])

    def put_batch(self, records: Iterable[EvaluationRecord]) -> None:
        """Store a batch of finished records with one durable append.

        Already-stored keys are skipped; the file is opened, flushed and
        fsynced once per batch rather than once per record.
        """

        fresh: list[EvaluationRecord] = []
        for record in records:
            if record.key in self._records:
                continue
            self._records[record.key] = record
            fresh.append(record)
        if self._log is not None and fresh:
            self._log.append(self._lines(fresh))

    def compact(self) -> None:
        """Atomically rewrite the backing file to exactly the live records.

        Useful after many resumed partial runs appended to the same file;
        the rewrite is all-or-nothing (temp file + ``os.replace``).
        """

        if self._log is not None:
            self._log.rewrite(self._lines(self._records.values()))

    def clear(self) -> None:
        """Forget every stored record (and atomically truncate the file)."""

        self._records.clear()
        if self._log is not None and self.path is not None and self.path.exists():
            self._log.rewrite(())
