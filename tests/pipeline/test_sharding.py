"""The sharded evaluation layer: plans, streaming overlap, merge, resume."""

from __future__ import annotations

import itertools

import pytest

from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.pipeline import (
    EvaluationPipeline,
    PipelineCheckpoint,
    ShardPlan,
    ShardedEvaluationPipeline,
    merge_evaluations,
    shard_checkpoint_path,
)
from repro.pipeline.records import ModelEvaluation
from repro.scoring.compiled import ReferenceStore


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


# ---------------------------------------------------------------------------
# ShardPlan
# ---------------------------------------------------------------------------

def test_shard_plan_sizes_are_balanced_and_exhaustive():
    plan = ShardPlan.for_size(10, 4)
    assert plan.sizes == (3, 3, 2, 2)
    assert sum(plan.sizes) == plan.total
    assert plan.bounds() == ((0, 3), (3, 6), (6, 8), (8, 10))


def test_shard_plan_split_is_contiguous_and_order_preserving():
    plan = ShardPlan.for_size(11, 3)
    items = list(range(11))
    shards = plan.split(items)
    assert [x for shard in shards for x in shard] == items
    assert [plan.shard_of(i) for i in (0, 3, 4, 7, 8, 10)] == [0, 0, 1, 1, 2, 2]


def test_shard_plan_clamps_empty_shards():
    assert ShardPlan.for_size(2, 8).num_shards == 2
    assert ShardPlan.for_size(0, 8).num_shards == 1
    with pytest.raises(ValueError):
        ShardPlan.for_size(5, 0)
    with pytest.raises(ValueError):
        ShardPlan.for_size(5, 3).split([1, 2])


def test_shard_checkpoint_path_is_stable_and_bounded(tmp_path):
    base = tmp_path / "run.ckpt.jsonl"
    assert shard_checkpoint_path(base, 2, 4).name == "run.ckpt.jsonl.shard-02-of-04"
    with pytest.raises(ValueError):
        shard_checkpoint_path(base, 4, 4)


# ---------------------------------------------------------------------------
# Streaming scheduler
# ---------------------------------------------------------------------------

def test_sharded_run_matches_unsharded(small_original_problems):
    problems = list(small_original_problems)[:20]
    truth = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(_requests(problems))
    with ShardedEvaluationPipeline(
        get_model("gpt-4"), shards=4, store=ReferenceStore(), batch_size=3
    ) as sharded:
        evaluation = sharded.run(_requests(problems))
    assert evaluation.records == truth.records
    assert evaluation.model_name == truth.model_name


def test_sharded_streaming_preserves_request_order(small_original_problems):
    problems = list(small_original_problems)[:15]
    with ShardedEvaluationPipeline(
        get_model("gpt-3.5"), shards=3, store=ReferenceStore(), batch_size=2
    ) as sharded:
        streamed = list(sharded.run_iter(_requests(problems)))
    assert [r.problem_id for r in streamed] == [p.problem_id for p in problems]


def test_sharded_rejects_checkpoint_instances(tmp_path):
    with pytest.raises(TypeError, match="base"):
        ShardedEvaluationPipeline(
            get_model("gpt-4"),
            shards=2,
            checkpoint=PipelineCheckpoint(tmp_path / "x.jsonl"),
        )


def test_producer_error_propagates_to_consumer(small_original_problems):
    class Exploding:
        name = "gpt-4"

        def generate(self, problem, shots=0, sample_index=0):
            raise KeyboardInterrupt("user abort")  # not caught by error capture

    with ShardedEvaluationPipeline(Exploding(), shards=2, store=ReferenceStore()) as sharded:
        with pytest.raises(KeyboardInterrupt, match="user abort"):
            list(sharded.run_iter(_requests(list(small_original_problems)[:4])))


# ---------------------------------------------------------------------------
# merge_evaluations
# ---------------------------------------------------------------------------

def test_merge_of_independently_run_shards_is_bit_identical(small_original_problems):
    problems = list(small_original_problems)[:18]
    requests = _requests(problems)
    truth = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(requests)

    plan = ShardPlan.for_size(len(requests), 4)
    shard_evaluations = [
        EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(chunk)
        for chunk in plan.split(requests)
    ]
    merged = merge_evaluations(shard_evaluations)
    assert merged.records == truth.records
    assert merged.mean_scores() == truth.mean_scores()


def test_merge_rejects_mixed_models_and_empty_input():
    with pytest.raises(ValueError, match="no evaluations"):
        merge_evaluations([])
    with pytest.raises(ValueError, match="different models"):
        merge_evaluations([ModelEvaluation(model_name="a"), ModelEvaluation(model_name="b")])


def test_merge_error_names_the_disagreeing_shard(small_original_problems):
    """The mismatch error must say which shard index disagreed and list the
    shard sizes, so a mis-assembled merge is debuggable from the message."""

    problems = list(small_original_problems)[:4]
    gpt4 = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(_requests(problems))
    gpt35 = EvaluationPipeline(get_model("gpt-3.5"), store=ReferenceStore()).run(
        _requests(problems[:2])
    )
    with pytest.raises(ValueError) as excinfo:
        merge_evaluations([gpt4, gpt4, gpt35])
    message = str(excinfo.value)
    assert "shard 2" in message and "'gpt-3.5'" in message and "'gpt-4'" in message
    assert "[4, 4, 2]" in message  # the shard sizes

    empty_message = ""
    with pytest.raises(ValueError) as excinfo:
        merge_evaluations([])
    empty_message = str(excinfo.value)
    assert "empty sequence" in empty_message


# ---------------------------------------------------------------------------
# Empty shards and planner pass-through
# ---------------------------------------------------------------------------

def test_empty_run_builds_no_checkpoints(tmp_path):
    """Zero requests plan to one empty shard, which must be skipped: no
    sub-pipeline, no checkpoint file, an empty evaluation."""

    base = tmp_path / "empty.ckpt.jsonl"
    with ShardedEvaluationPipeline(
        get_model("gpt-4"), shards=4, store=ReferenceStore(), checkpoint=base
    ) as sharded:
        evaluation = sharded.run([])
    assert evaluation.records == []
    assert evaluation.model_name == "gpt-4"
    assert list(tmp_path.iterdir()) == []


def test_cost_planned_shards_match_unsharded(small_original_problems):
    """A cost-balanced plan moves the cut points, not the records."""

    from repro.pipeline import CostPlanner

    problems = list(small_original_problems)[:18]
    truth = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(_requests(problems))
    with ShardedEvaluationPipeline(
        get_model("gpt-4"), shards=3, planner=CostPlanner(), store=ReferenceStore(), batch_size=4
    ) as sharded:
        evaluation = sharded.run(_requests(problems))
    assert evaluation.records == truth.records


# ---------------------------------------------------------------------------
# Acceptance: kill + resume
# ---------------------------------------------------------------------------

def test_killed_sharded_run_resumes_to_identical_evaluation(tmp_path, small_original_problems):
    """Resuming a killed sharded run from its per-shard checkpoints
    reproduces the uninterrupted run's ModelEvaluation exactly."""

    problems = list(small_original_problems)[:24]
    requests = _requests(problems)
    truth = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore()).run(requests)

    base = tmp_path / "sharded.ckpt.jsonl"
    first = ShardedEvaluationPipeline(
        get_model("gpt-4"), shards=4, store=ReferenceStore(), checkpoint=base, batch_size=3
    )
    # "Kill" the run: consume part of the stream, then abandon the generator.
    consumed = list(itertools.islice(first.run_iter(requests), 10))
    first.close()
    assert [r.problem_id for r in consumed] == [p.problem_id for p in problems[:10]]

    # Some shards checkpointed work, and none checkpointed everything.
    per_shard = [len(PipelineCheckpoint(shard_checkpoint_path(base, i, 4))) for i in range(4)]
    assert sum(per_shard) >= len(consumed)
    assert sum(per_shard) < len(requests)

    resumed = ShardedEvaluationPipeline(
        get_model("gpt-4"), shards=4, store=ReferenceStore(), checkpoint=base, batch_size=3
    )
    evaluation = resumed.run(requests)
    resumed.close()
    assert evaluation.records == truth.records


def test_resume_with_different_executors_still_identical(tmp_path, small_original_problems):
    """A run interrupted under one backend can resume under another."""

    problems = list(small_original_problems)[:12]
    requests = _requests(problems)
    truth = EvaluationPipeline(get_model("gpt-3.5"), store=ReferenceStore()).run(requests)

    base = tmp_path / "swap.ckpt.jsonl"
    first = ShardedEvaluationPipeline(
        get_model("gpt-3.5"), shards=3, executor="thread", max_workers=2,
        store=ReferenceStore(), checkpoint=base, batch_size=2,
    )
    list(itertools.islice(first.run_iter(requests), 5))
    first.close()

    second = ShardedEvaluationPipeline(
        get_model("gpt-3.5"), shards=3, executor="async", generate_executor="async",
        max_workers=4, store=ReferenceStore(), checkpoint=base, batch_size=2,
    )
    evaluation = second.run(requests)
    second.close()
    assert evaluation.records == truth.records
