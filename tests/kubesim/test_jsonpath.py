"""Tests for the kubectl-style JSONPath evaluator."""

from __future__ import annotations

import pytest

from repro.kubesim.jsonpath import JsonPathError, evaluate_jsonpath, render_jsonpath

DOCUMENT = {
    "metadata": {"name": "web", "labels": {"app": "web", "istio-injection": "enabled"}},
    "spec": {
        "containers": [
            {"name": "app", "image": "nginx", "env": [{"name": "A", "value": "1"}, {"name": "B", "value": "2"}]},
            {"name": "sidecar", "image": "busybox"},
        ]
    },
    "status": {"hostIP": "10.0.0.10", "ready": True},
    "items": [{"metadata": {"name": "p1"}}, {"metadata": {"name": "p2"}}],
    "data": {"requests.memory": "8Gi"},
}


def test_simple_field_access():
    assert evaluate_jsonpath(DOCUMENT, "{.metadata.name}") == ["web"]


def test_nested_index_access():
    assert evaluate_jsonpath(DOCUMENT, "{.spec.containers[0].image}") == ["nginx"]
    assert evaluate_jsonpath(DOCUMENT, "{.spec.containers[1].name}") == ["sidecar"]


def test_negative_index():
    assert evaluate_jsonpath(DOCUMENT, "{.spec.containers[-1].name}") == ["sidecar"]


def test_out_of_range_index_returns_empty():
    assert evaluate_jsonpath(DOCUMENT, "{.spec.containers[5].name}") == []


def test_wildcard_over_list():
    assert evaluate_jsonpath(DOCUMENT, "{.spec.containers[*].name}") == ["app", "sidecar"]


def test_wildcard_env_names():
    assert render_jsonpath(DOCUMENT, "{.spec.containers[0].env[*].name}") == "A B"


def test_recursive_descent():
    assert set(evaluate_jsonpath(DOCUMENT, "{..name}")) >= {"web", "app", "sidecar", "p1", "p2"}


def test_implicit_mapping_over_lists():
    assert evaluate_jsonpath(DOCUMENT, "{.items.metadata.name}") == ["p1", "p2"]


def test_hyphenated_field():
    assert render_jsonpath(DOCUMENT, "{.metadata.labels.istio-injection}") == "enabled"


def test_quoted_field_with_dots():
    assert render_jsonpath(DOCUMENT, "{.data['requests.memory']}") == "8Gi"


def test_render_booleans_lowercase():
    assert render_jsonpath(DOCUMENT, "{.status.ready}") == "true"


def test_missing_path_renders_empty():
    assert render_jsonpath(DOCUMENT, "{.spec.nodeName}") == ""


def test_empty_expression_returns_document():
    assert evaluate_jsonpath(DOCUMENT, "{}") == [DOCUMENT]


def test_malformed_expression_raises():
    with pytest.raises(JsonPathError):
        evaluate_jsonpath(DOCUMENT, "{.spec[?bad]}")
