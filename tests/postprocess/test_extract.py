"""Tests for the response post-processing policies."""

from __future__ import annotations

from repro.postprocess import extract_yaml

YAML_BODY = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  ports:\n  - port: 80\n"


def test_plain_yaml_passes_through():
    assert extract_yaml(YAML_BODY).strip() == YAML_BODY.strip()


def test_markdown_fence_extracted():
    response = f"Sure, here you go:\n```yaml\n{YAML_BODY}```\nHope this helps!"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_fence_without_language_tag_extracted():
    response = f"```\n{YAML_BODY}```"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_here_keyword_strips_leading_prose():
    response = f"Here is the YAML configuration you asked for:\n{YAML_BODY}"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_api_version_marks_document_start():
    response = f"The following manifest satisfies the requirements.\n{YAML_BODY}"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_static_resources_marks_envoy_start():
    envoy = "static_resources:\n  listeners: []\n  clusters: []\n"
    response = f"You can use this bootstrap file.\n{envoy}"
    assert extract_yaml(response).strip() == envoy.strip()


def test_code_tags_extracted():
    response = f"<code>\n{YAML_BODY}</code>"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_begin_code_blocks_extracted():
    response = "\\begin{code}\n" + YAML_BODY + "\\end{code}\n"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_solution_markers_extracted():
    response = f"START SOLUTION\n{YAML_BODY}END SOLUTION"
    assert extract_yaml(response).strip() == YAML_BODY.strip()


def test_trailing_prose_removed():
    response = f"{YAML_BODY}\nLet me know if you need anything else."
    extracted = extract_yaml(response)
    assert "Let me know" not in extracted
    assert "port: 80" in extracted


def test_empty_response_stays_empty():
    assert extract_yaml("") == ""
    assert extract_yaml("   \n  ") == ""


def test_pure_prose_is_preserved_as_is():
    prose = "I am not able to produce that configuration."
    assert extract_yaml(prose).strip() == prose
