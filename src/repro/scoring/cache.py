"""The content-addressed global score cache.

At production scale most submissions repeat: the same extracted YAML is
scored against the same reference over and over — across runs, across
models (different models frequently emit identical answers), and across
tenants replaying the same leaderboard.  The in-run dedupe of
:func:`~repro.scoring.compiled.score_batch` and the score stage's memo
already collapse repeats *within* one run; this module makes the repeat
workload O(1) *across* runs by persisting every scored answer under a
content-addressed key:

``(compiled-reference digest, extracted-answer digest, scorer version,
unit-tests flag)``

* The **reference digest** (:attr:`~repro.scoring.compiled.CompiledReference.digest`)
  covers everything reference-side that a metric can see: the problem id,
  the labeled reference YAML, and the serialised unit-test program.  Two
  problems that differ in any scored input can never share an entry.
* The **answer digest** (:func:`~repro.scoring.compiled.answer_digest`)
  is taken over the *extracted* YAML — the post-processed text every
  metric operates on — so prose-wrapped variants of the same answer
  collapse to one entry, exactly mirroring the in-run dedupe key.
* The **scorer version** (:data:`SCORER_VERSION`) is the invalidation
  discipline: every metric is a pure function of (reference, answer), so
  a cached card is valid until the *scoring implementation* changes.
  **Bump the constant whenever any metric, the extractor's semantics, or
  the unit-test substrate changes behaviour** — entries written under
  other versions are ignored on load (and dropped by :meth:`ScoreCache.compact`),
  so a stale card can never be served, while same-version entries keep
  absorbing traffic across deployments.

Durability reuses the torn-tail-safe JSON-lines layer
(:class:`~repro.utils.jsonl.JsonlLog`) shared with the pipeline
checkpoints and the calibration store: loads stream and skip a torn or
corrupt tail, appends are one flush+fsync per batch and seal a torn
fragment into its own junk line, and :meth:`ScoreCache.compact` rewrites
atomically.  A killed run therefore always leaves a readable cache.

The cache layers *above* the in-run dedupe: a hit skips scoring entirely
(resolved in the parent process, so process-pool executors only ever see
misses), a miss is scored once and written back once per unique key.
``hits``/``misses``/``writes`` counters — global and per lookup scope
(the model name, for the leaderboard's cache column) — make the absorbed
traffic observable.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.scoring.aggregate import ScoreCard
from repro.utils.jsonl import JsonlLog

__all__ = [
    "SCORER_VERSION",
    "CacheStats",
    "ScoreCache",
    "is_score_cache_spec",
    "resolve_score_cache",
]

#: Version of the scoring implementation the cache keys against.
#:
#: Bump-to-invalidate discipline: increment this constant whenever a
#: change can alter any ScoreCard value for some (reference, answer) pair
#: — a metric formula, text normalisation, YAML extraction semantics, the
#: unit-test substrate's behaviour.  Entries persisted under a different
#: version are skipped on load and purged by :meth:`ScoreCache.compact`;
#: refactors that provably preserve every score do NOT bump it, so the
#: cache keeps absorbing repeat traffic across releases.
SCORER_VERSION = 1

#: Key of one cached card: (reference digest, answer digest, unit-tests flag).
#: The scorer version is per cache store, not per key — see ``ScoreCache``.
CacheKey = tuple[str, str, bool]


@dataclass
class CacheStats:
    """Lookup counters of one scope (one model) or of the whole store."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1]; 0.0 when nothing was looked up."""

        return self.hits / self.lookups if self.lookups else 0.0


class ScoreCache:
    """Persistent, content-addressed ScoreCards shared across runs.

    Parameters
    ----------
    path:
        JSONL file backing the cache, or ``None`` for a purely in-memory
        store (still shared across every pipeline of one process).
    scorer_version:
        The version entries are written under and required on load;
        defaults to the module's :data:`SCORER_VERSION`.  Overriding it is
        how tests exercise the bump-to-invalidate discipline.

    Thread safety: lookups and write-backs take one lock — the scheduler's
    scoring consumer, several pipelines, and a monitoring reader may share
    one store.
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        scorer_version: int = SCORER_VERSION,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.scorer_version = scorer_version
        self._cards: dict[CacheKey, ScoreCard] = {}
        self._log = JsonlLog(self.path) if self.path is not None else None
        self._lock = threading.Lock()
        #: Lookup/write counters.  ``stale`` counts persisted entries that
        #: were ignored on load because their scorer version differs.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.stale = 0
        self._by_scope: dict[str, CacheStats] = {}
        if self._log is not None:
            for key, card in self._log.scan(self._decode):
                # Later lines win, mirroring append order: a re-written
                # entry (same key) converges on the newest card.
                self._cards[key] = card

    # -- persistence --------------------------------------------------------
    def _decode(self, line: bytes) -> tuple[CacheKey, ScoreCard]:
        payload = json.loads(line)
        if int(payload["scorer"]) != self.scorer_version:
            # A different scoring implementation wrote this entry; serving
            # it would mix score semantics, so it is invisible (and purged
            # on the next compact()).
            self.stale += 1
            raise ValueError("stale scorer version")
        key = (str(payload["ref"]), str(payload["ans"]), bool(payload["unit_tests"]))
        return key, ScoreCard(**payload["card"])

    def _encode(self, key: CacheKey, card: ScoreCard) -> str:
        ref, ans, unit_tests = key
        return (
            json.dumps(
                {
                    "ref": ref,
                    "ans": ans,
                    "unit_tests": unit_tests,
                    "scorer": self.scorer_version,
                    "card": {f: getattr(card, f) for f in card.__dataclass_fields__},
                }
            )
            + "\n"
        )

    # -- lookups ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cards)

    def __iter__(self) -> Iterator[CacheKey]:
        return iter(self._cards)

    def _scope_stats(self, scope: str) -> CacheStats:
        stats = self._by_scope.get(scope)
        if stats is None:
            stats = self._by_scope[scope] = CacheStats()
        return stats

    def get(
        self,
        reference_digest: str,
        answer_digest: str,
        run_unit_tests: bool = True,
        scope: str = "",
    ) -> ScoreCard | None:
        """The cached card for a key, or ``None`` (counted as hit/miss).

        ``scope`` labels the lookup for per-model accounting (the
        leaderboard's cache column); the empty scope still lands in the
        global counters.
        """

        key = (reference_digest, answer_digest, run_unit_tests)
        with self._lock:
            card = self._cards.get(key)
            stats = self._scope_stats(scope) if scope else None
            if card is None:
                self.misses += 1
                if stats is not None:
                    stats.misses += 1
            else:
                self.hits += 1
                if stats is not None:
                    stats.hits += 1
            return card

    def peek(
        self, reference_digest: str, answer_digest: str, run_unit_tests: bool = True
    ) -> ScoreCard | None:
        """Like :meth:`get` but without touching any counter."""

        with self._lock:
            return self._cards.get((reference_digest, answer_digest, run_unit_tests))

    # -- write-back ---------------------------------------------------------
    def put(
        self,
        reference_digest: str,
        answer_digest: str,
        card: ScoreCard,
        run_unit_tests: bool = True,
    ) -> None:
        """Store one freshly scored card (one durable append)."""

        self.put_batch([(reference_digest, answer_digest, card, run_unit_tests)])

    def put_batch(self, entries: Iterable[tuple[str, str, ScoreCard, bool]]) -> None:
        """Store a batch of freshly scored cards with one durable append.

        Keys already present are skipped (the first write wins — scoring
        is deterministic, so a second card for the same key is identical
        by construction), keeping repeat runs from growing the log.
        """

        with self._lock:
            fresh: list[tuple[CacheKey, ScoreCard]] = []
            for reference_digest, answer_digest, card, run_unit_tests in entries:
                key = (reference_digest, answer_digest, run_unit_tests)
                if key in self._cards:
                    continue
                self._cards[key] = card
                fresh.append((key, card))
            if not fresh:
                return
            self.writes += len(fresh)
            if self._log is not None:
                self._log.append(self._encode(key, card) for key, card in fresh)

    # -- maintenance --------------------------------------------------------
    def compact(self) -> None:
        """Atomically rewrite the file to the live, current-version entries.

        This is where entries invalidated by a :data:`SCORER_VERSION` bump
        (skipped on every load since) are physically dropped, and where a
        log grown by many partial runs collapses to one line per key.
        """

        with self._lock:
            if self._log is not None:
                self._log.rewrite(
                    self._encode(key, card) for key, card in self._cards.items()
                )
            self.stale = 0

    # -- observability ------------------------------------------------------
    def stats_for(self, scope: str) -> CacheStats:
        """Lookup counters of one scope (a model name); zeros when unseen."""

        with self._lock:
            return self._by_scope.get(scope, CacheStats())

    def stats(self) -> dict[str, int]:
        """Global counters: entries, hits, misses, writes, stale."""

        with self._lock:
            return {
                "entries": len(self._cards),
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "stale": self.stale,
            }

    def describe(self) -> str:
        """One-line human summary (the leaderboard report's footer)."""

        stats = self.stats()
        lookups = stats["hits"] + stats["misses"]
        rate = (100.0 * stats["hits"] / lookups) if lookups else 0.0
        return (
            f"score cache: {stats['entries']} entries, "
            f"{stats['hits']} hits / {stats['misses']} misses ({rate:.1f}% hit rate), "
            f"{stats['writes']} writes"
        )


def is_score_cache_spec(score_cache: object) -> bool:
    """Whether a value is an acceptable ``score_cache`` configuration —
    a cache instance, a JSONL path, or None.  The single definition both
    :func:`resolve_score_cache` and ``BenchmarkConfig`` validate against."""

    return score_cache is None or isinstance(score_cache, (ScoreCache, str, os.PathLike))


def resolve_score_cache(
    score_cache: "ScoreCache | str | os.PathLike[str] | None",
) -> ScoreCache | None:
    """Turn a config value (cache instance or JSONL path) into a store."""

    if not is_score_cache_spec(score_cache):
        raise TypeError(
            "score_cache must be a ScoreCache, a JSONL path, or None; "
            f"got {type(score_cache).__name__}"
        )
    if score_cache is None or isinstance(score_cache, ScoreCache):
        return score_cache
    return ScoreCache(score_cache)
