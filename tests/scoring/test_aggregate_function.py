"""Tests for the aggregate scorer and the function-level metric."""

from __future__ import annotations

from repro.scoring.aggregate import METRIC_NAMES, score_answer
from repro.scoring.function_level import run_unit_test, unit_test_score


def test_metric_names_match_table4_columns():
    assert METRIC_NAMES == ("bleu", "edit_distance", "exact_match", "kv_exact", "kv_wildcard", "unit_test")


def test_reference_answer_gets_full_scores(small_original_problems):
    problem = small_original_problems[0]
    card = score_answer(problem, problem.reference_plain())
    assert card.unit_test == 1.0
    assert card.exact_match == 1.0
    assert card.kv_exact == 1.0
    assert card.kv_wildcard == 1.0
    assert card.bleu == 1.0


def test_wrapped_reference_answer_still_passes(small_original_problems):
    problem = small_original_problems[0]
    wrapped = f"Here is the YAML you requested:\n```yaml\n{problem.reference_plain()}```\n"
    card = score_answer(problem, wrapped)
    assert card.unit_test == 1.0
    assert card.kv_exact == 1.0


def test_prose_answer_scores_zero_everywhere(small_original_problems):
    problem = small_original_problems[0]
    card = score_answer(problem, "I cannot generate that configuration, sorry.")
    assert card.unit_test == 0.0
    assert card.kv_exact == 0.0
    assert card.kv_wildcard == 0.0
    assert card.exact_match == 0.0


def test_score_answer_can_skip_unit_tests(small_original_problems):
    problem = small_original_problems[0]
    card = score_answer(problem, problem.reference_plain(), run_unit_tests=False)
    assert card.unit_test == 0.0  # skipped, not executed
    assert card.bleu == 1.0


def test_score_card_dict_and_features(small_original_problems):
    problem = small_original_problems[0]
    card = score_answer(problem, problem.reference_plain())
    as_dict = card.as_dict()
    assert set(as_dict) == set(METRIC_NAMES)
    assert len(card.text_features()) == 5


def test_unit_test_score_and_result_message(small_original_problems):
    problem = small_original_problems[0]
    assert unit_test_score(problem, problem.reference_plain()) == 1.0
    failing = run_unit_test(problem, "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\n")
    assert not failing.passed
    assert failing.message
