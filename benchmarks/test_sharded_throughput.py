"""Sharded overlapped evaluation vs the serial pipeline — the headline run.

The end-to-end evaluation loop is wall-clock-bound on two different
resources: querying a remote endpoint is dominated by per-request network
latency (§3.1 — the paper parallelised it with ray precisely because a
sequential client pays the latencies one after another), and scoring plus
in-process unit tests burn CPU (§3.3 — the 10-hour single-machine run of
Figure 5).  The sharded scheduler attacks both at once: an async
generation backend keeps many rate-limited requests in flight while the
process-pool scoring backend chews through already-generated shards.

The model under test is the zero-shot corpus model behind a
:class:`~repro.llm.remote.RemoteEndpointModel` — identical answers,
realistic per-request latency — so the measured speedup is exactly what
the executor machinery buys, and the ScoreCard assertions prove it buys
it without moving a single score.

The regression guard is ratio-based (sharded vs serial on the same
machine in the same process), so CI runner speed cannot flake it; only a
real loss of overlap can.
"""

from __future__ import annotations

import time

from benchmarks.common import FAST_MODE, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.remote import RemoteEndpointModel
from repro.pipeline import (
    AsyncExecutor,
    EvaluationPipeline,
    ProcessExecutor,
    ShardedEvaluationPipeline,
)
from repro.scoring.compiled import ReferenceStore

MODEL_NAME = "gpt-4"

#: Per-request endpoint latency.  The fast corpus has far fewer requests,
#: so it charges a little more per request to keep the serial baseline
#: comfortably latency-dominated (and the measured ratio stable).
LATENCY_SECONDS = 0.02 if FAST_MODE else 0.012
JITTER_SECONDS = LATENCY_SECONDS / 4

SHARDS = 4
GENERATE_CONCURRENCY = 16
SCORE_WORKERS = 2

#: The guard: the sharded process+async path must beat the serial pipeline
#: end to end by at least this factor.  Measured ~4-5x on a single core
#: (latency overlap dominates); multicore runners only widen the gap.
MIN_SPEEDUP = 2.5


def _remote_model(inner):
    return RemoteEndpointModel(
        inner,
        latency_seconds=LATENCY_SECONDS,
        jitter_seconds=JITTER_SECONDS,
        seed=11,
    )


def test_sharded_throughput(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    inner, requests = driver.requests(MODEL_NAME)

    # --- serial baseline: one request at a time, latency paid in full ----
    start = time.perf_counter()
    serial_eval = EvaluationPipeline(_remote_model(inner), store=ReferenceStore()).run(requests)
    serial_seconds = time.perf_counter() - start

    # --- sharded process+async path --------------------------------------
    def run_sharded():
        with ProcessExecutor(max_workers=SCORE_WORKERS) as score_executor:
            sharded = ShardedEvaluationPipeline(
                _remote_model(inner),
                shards=SHARDS,
                executor=score_executor,
                generate_executor=AsyncExecutor(max_concurrency=GENERATE_CONCURRENCY),
                store=ReferenceStore(),
            )
            try:
                return sharded.run(requests)
            finally:
                sharded.close()

    sharded_eval = benchmark.pedantic(run_sharded, rounds=1, iterations=1)
    sharded_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / sharded_seconds

    benchmark.extra_info["requests"] = len(requests)
    benchmark.extra_info["latency_ms"] = LATENCY_SECONDS * 1000
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["sharded_seconds"] = round(sharded_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nSharded overlapped evaluation over {len(requests)} zero-shot requests "
        f"({MODEL_NAME} behind a {LATENCY_SECONDS * 1000:.0f}ms endpoint):"
        f"\n  serial pipeline              : {serial_seconds:6.2f} s"
        f"\n  sharded async+process (x{SHARDS})  : {sharded_seconds:6.2f} s"
        f"\n  speedup                      : {speedup:6.2f} x"
    )

    # The overlap must not move a single score...
    assert sharded_eval.records == serial_eval.records

    # ...and must actually deliver the wall-clock win (ratio-based guard).
    assert speedup >= MIN_SPEEDUP, (
        f"sharded path speedup {speedup:.2f}x fell below the {MIN_SPEEDUP}x floor "
        f"(serial {serial_seconds:.2f}s, sharded {sharded_seconds:.2f}s)"
    )
