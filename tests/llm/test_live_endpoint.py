"""The live-endpoint adapter: retries, pacing, protocols, HTTP transport."""

from __future__ import annotations

import asyncio
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.llm.interface import AsyncModel, GenerationRequest, Model, QueryModule
from repro.llm.remote import (
    EndpointError,
    LiveEndpointModel,
    TransientEndpointError,
    http_transport,
)
from repro.utils.ratelimit import TokenBucket


@pytest.fixture(scope="module")
def problem(small_dataset):
    return next(iter(small_dataset))


def make_flaky(answer: str, failures: int):
    """A transport failing transiently ``failures`` times, then answering."""

    state = {"calls": 0}

    def transport(prompt: str) -> str:
        state["calls"] += 1
        if state["calls"] <= failures:
            raise TransientEndpointError("simulated 503")
        return answer

    return transport, state


def test_implements_both_model_protocols():
    model = LiveEndpointModel("live", lambda prompt: "ok")
    assert isinstance(model, Model)
    assert isinstance(model, AsyncModel)


def test_generate_sends_the_built_prompt(problem):
    seen = []
    model = LiveEndpointModel("live", lambda prompt: seen.append(prompt) or "ok")
    assert model.generate(problem, shots=0) == "ok"
    assert seen == [GenerationRequest(problem=problem).prompt()]


def test_retries_transient_failures_with_backoff(problem):
    transport, state = make_flaky("answer", failures=2)
    sleeps = []
    model = LiveEndpointModel(
        "live", transport, max_retries=2, backoff_seconds=0.5, sleep=sleeps.append
    )
    assert model.generate(problem) == "answer"
    assert state["calls"] == 3
    assert model.requests == 3 and model.retries == 2
    assert sleeps == [0.5, 1.0]  # deterministic exponential backoff


def test_exhausted_retries_propagate(problem):
    transport, state = make_flaky("never", failures=10)
    model = LiveEndpointModel(
        "live", transport, max_retries=1, backoff_seconds=0.0, sleep=lambda s: None
    )
    with pytest.raises(TransientEndpointError):
        model.generate(problem)
    assert state["calls"] == 2  # max_retries + 1 attempts


def test_permanent_errors_are_not_retried(problem):
    calls = []

    def transport(prompt: str) -> str:
        calls.append(1)
        raise EndpointError("HTTP 400")

    model = LiveEndpointModel("live", transport, max_retries=3, sleep=lambda s: None)
    with pytest.raises(EndpointError):
        model.generate(problem)
    assert len(calls) == 1


def test_virtual_clock_limiter_rejected():
    with pytest.raises(ValueError, match="wall-clock"):
        LiveEndpointModel("live", lambda p: "ok", limiter=TokenBucket(10.0))


def test_every_attempt_takes_a_token(problem):
    transport, _state = make_flaky("answer", failures=2)
    limiter = TokenBucket(10_000.0, burst=8, virtual_clock=False)
    model = LiveEndpointModel(
        "live", transport, limiter=limiter, max_retries=2,
        backoff_seconds=0.0, sleep=lambda s: None,
    )
    model.generate(problem)
    assert limiter.acquired == 3  # retried attempts re-queue, never cut the line


def test_async_path_retries_and_matches_sync(problem):
    transport, _state = make_flaky("answer", failures=1)

    async def run():
        async_sleeps = []

        async def recorder(seconds):
            async_sleeps.append(seconds)

        model = LiveEndpointModel(
            "live", transport, max_retries=1, backoff_seconds=0.25, async_sleep=recorder
        )
        response = await model.generate_async(problem)
        return response, async_sleeps, model.retries

    response, async_sleeps, retries = asyncio.run(run())
    assert response == "answer"
    assert async_sleeps == [0.25] and retries == 1


def test_native_async_transport_is_preferred(problem):
    async def async_transport(prompt: str) -> str:
        return "from-async"

    model = LiveEndpointModel("live", lambda p: "from-sync", async_transport=async_transport)
    assert asyncio.run(model.generate_async(problem)) == "from-async"
    assert model.generate(problem) == "from-sync"


def test_query_module_routes_live_endpoint_async(problem):
    """The async query path overlaps a LiveEndpointModel's requests and
    captures per-request transport failures into failed results."""

    def transport(prompt: str) -> str:
        raise TransientEndpointError("down")

    model = LiveEndpointModel("live", transport, max_retries=0)
    query = QueryModule(model)
    requests = [GenerationRequest(problem=problem)]
    results = asyncio.run(query.query_batch_async(requests, max_concurrency=2))
    assert not results[0].ok
    assert "TransientEndpointError" in results[0].error
    query.close()


# ---------------------------------------------------------------------------
# http_transport (urllib is monkeypatched; no network is touched)
# ---------------------------------------------------------------------------


class _Reply(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


def test_http_transport_posts_json_and_parses_reply(monkeypatch):
    captured = {}

    def fake_urlopen(request, timeout=None):
        captured["url"] = request.full_url
        captured["body"] = json.loads(request.data.decode("utf-8"))
        captured["timeout"] = timeout
        return _Reply(json.dumps({"response": "the yaml"}).encode("utf-8"))

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    transport = http_transport("http://endpoint/v1/generate", timeout_seconds=5.0)
    assert transport("write me yaml") == "the yaml"
    assert captured["url"] == "http://endpoint/v1/generate"
    assert captured["body"] == {"prompt": "write me yaml"}
    assert captured["timeout"] == 5.0


@pytest.mark.parametrize("status", [408, 429, 500, 503])
def test_http_transport_transient_statuses(monkeypatch, status):
    def fake_urlopen(request, timeout=None):
        raise urllib.error.HTTPError(request.full_url, status, "err", {}, None)

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    with pytest.raises(TransientEndpointError):
        http_transport("http://endpoint")("prompt")


def test_http_transport_permanent_status_and_bad_payload(monkeypatch):
    def bad_request(request, timeout=None):
        raise urllib.error.HTTPError(request.full_url, 400, "err", {}, None)

    monkeypatch.setattr(urllib.request, "urlopen", bad_request)
    with pytest.raises(EndpointError) as excinfo:
        http_transport("http://endpoint")("prompt")
    assert not isinstance(excinfo.value, TransientEndpointError)

    monkeypatch.setattr(
        urllib.request, "urlopen",
        lambda request, timeout=None: _Reply(b'{"unexpected": 1}'),
    )
    with pytest.raises(EndpointError, match="missing"):
        http_transport("http://endpoint")("prompt")


def test_http_transport_unreachable_is_transient(monkeypatch):
    def fake_urlopen(request, timeout=None):
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    with pytest.raises(TransientEndpointError, match="unreachable"):
        http_transport("http://endpoint")("prompt")
