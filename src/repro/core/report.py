"""Textual report rendering for benchmark results."""

from __future__ import annotations

from repro.core.benchmark import BenchmarkResult, ModelEvaluation
from repro.evalcluster.cost import CostModel
from repro.evalcluster.master import MasterStats
from repro.scoring.aggregate import METRIC_NAMES
from repro.scoring.cache import ScoreCache

__all__ = ["format_leaderboard"]

#: Header of the optional predicted-cost column (seconds of evaluation
#: cluster time the Figure 5 model predicts for the model's problem set).
_COST_HEADER = "pred_eval_s"

#: Header of the optional measured-cost column (wall-clock stage seconds
#: the run actually recorded on its evaluation records).
_MEASURED_HEADER = "meas_eval_s"

#: Header of the optional score-cache column (the model's lookups served
#: from the content-addressed global cache, as ``hits/lookups``).
_CACHE_HEADER = "cache_hits"

#: Header of the coverage column (fraction of first-sample records that
#: scored for real — error-marked/degraded records are excluded from the
#: metric means and surface here instead).
_COVERAGE_HEADER = "coverage"


def _predicted_evaluation_seconds(evaluation: ModelEvaluation, cost_model: CostModel) -> float:
    """Figure 5-predicted seconds to evaluate this model's problem set.

    Problems are taken from the evaluation's first-sample records (so an
    English-only model that skipped translated questions is priced for
    exactly what it ran), deduplicated in record order, and accounted with
    a warm image cache across the run.
    """

    dataset = cost_model.dataset
    if dataset is None:
        raise ValueError("the predicted-cost column needs a CostModel built with a dataset")
    problems = []
    seen: set[str] = set()
    for record in evaluation.first_samples():
        if record.problem_id in seen:
            continue
        seen.add(record.problem_id)
        try:
            problems.append(dataset.get(record.problem_id))
        except KeyError:
            continue  # evaluated against a different corpus; price what we know
    return cost_model.predict_problems_seconds(problems)


def _measured_evaluation_seconds(evaluation: ModelEvaluation) -> float:
    """Measured stage seconds over the model's first-sample problem set.

    Sums the per-record ground truth the timing capture stamps on every
    evaluation record (generation plus scoring), over exactly the scope
    :func:`_predicted_evaluation_seconds` prices — first samples,
    deduplicated by problem in record order — so the two columns are
    directly comparable.
    """

    seen: set[str] = set()
    total = 0.0
    for record in evaluation.first_samples():
        if record.problem_id in seen:
            continue
        seen.add(record.problem_id)
        total += record.measured_seconds
    return total


def _cache_cell(score_cache: ScoreCache, model: str) -> str:
    """The model's ``hits/lookups (rate%)`` cache cell, or ``-`` if unseen."""

    stats = score_cache.stats_for(model)
    if not stats.lookups:
        return "-"
    return f"{stats.hits}/{stats.lookups} ({100.0 * stats.hit_rate:.0f}%)"


def format_leaderboard(
    result: BenchmarkResult,
    title: str = "Zero-shot benchmark",
    cost_model: CostModel | None = None,
    measured: bool = False,
    score_cache: ScoreCache | None = None,
    fleet_stats: MasterStats | None = None,
    coverage: bool | None = None,
) -> str:
    """Render a Table 4-style leaderboard as aligned text.

    Rows are ranked by unit-test score with deterministic name
    tie-breaking.  With a ``cost_model``, a ``pred_eval_s`` column is
    appended: the Figure 5-predicted seconds of evaluation cluster time
    for each model's problem set (warm image cache across the run).  With
    ``measured=True``, a ``meas_eval_s`` column shows the wall-clock stage
    seconds the run actually recorded — putting the model's prediction and
    its ground truth side by side is the quickest check of how far the
    calibration loop has converged.  With a ``score_cache``, a
    ``cache_hits`` column shows each model's lookups served from the
    content-addressed global cache (``hits/lookups (rate%)``) plus the
    store's one-line summary as a footer — how much scoring the cache
    absorbed for this leaderboard.  With ``fleet_stats`` (a
    :meth:`~repro.evalcluster.master.Master.stats` snapshot, e.g. from
    :meth:`~repro.evalcluster.fleet.FleetExecutor.stats`), a footer line
    summarises the fleet run: queue counters, re-enqueues/abandons, and
    per-worker heartbeat age.

    ``coverage`` controls the ``coverage`` column — the fraction of each
    model's first-sample records that scored for real (degraded fleet
    slots and failed requests are excluded from the means and counted
    here instead).  ``None`` (the default) shows the column automatically
    whenever any model's coverage dipped below 1.0, so a clean run's
    leaderboard is byte-identical to what it was before coverage existed.
    """

    models = [model for model, _ in result.leaderboard()]
    if coverage is None:
        coverage = any(result[model].coverage < 1.0 for model in models)
    lines = [title, ""]
    header = f"{'#':<4}{'Model':<26}" + "".join(f"{name:>14}" for name in METRIC_NAMES)
    if cost_model is not None:
        header += f"{_COST_HEADER:>14}"
    if measured:
        header += f"{_MEASURED_HEADER:>14}"
    if score_cache is not None:
        header += f"{_CACHE_HEADER:>16}"
    if coverage:
        header += f"{_COVERAGE_HEADER:>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for rank, (model, scores) in enumerate(result.leaderboard(), start=1):
        row = f"{rank:<4}{model:<26}" + "".join(f"{scores[name]:>14.3f}" for name in METRIC_NAMES)
        if cost_model is not None:
            seconds = _predicted_evaluation_seconds(result[model], cost_model)
            row += f"{seconds:>14.1f}"
        if measured:
            row += f"{_measured_evaluation_seconds(result[model]):>14.1f}"
        if score_cache is not None:
            row += f"{_cache_cell(score_cache, model):>16}"
        if coverage:
            row += f"{result[model].coverage:>10.2f}"
        lines.append(row)
    if score_cache is not None:
        lines.append("")
        lines.append(score_cache.describe())
    if fleet_stats is not None:
        if score_cache is None:
            lines.append("")
        lines.append(fleet_stats.describe())
    return "\n".join(lines)
