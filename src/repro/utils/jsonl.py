"""Torn-tail-safe JSON-lines persistence.

The pipeline checkpoints and the calibration store share one durability
discipline, implemented once here:

* **Loads stream and never write.**  :meth:`JsonlLog.scan` yields the
  decoded items of the file's complete, parseable lines one at a time
  (O(1 line) memory).  A line that fails to decode — a torn fragment
  from an interrupted run, a corrupted byte, a record from an older
  schema — is *skipped*, not fatal, so one bad line can never hide the
  valid records after it.  An unterminated final line is ignored
  entirely: it is either a torn tail from a kill or another process's
  append still in flight, and in both cases it is not durable data yet.
  The file itself is left untouched, so concurrent readers (a monitoring
  script, a CI artifact inspection) can never damage a live writer's
  data.
* **Appends never glue.**  A torn final line only becomes dangerous on
  the next append — a new line written directly after a fragment without
  its newline would fuse with it into one malformed line.
  :meth:`JsonlLog.append` therefore starts with a newline whenever the
  file does not already end with one: the fragment is sealed into a
  (skipped) junk line of its own and every appended record stays intact.
  Nothing is ever truncated, so a concurrent writer's fsynced records
  can never be destroyed.  One ``write``/``flush``/``fsync`` per call.
* **Rewrites are atomic.**  :meth:`JsonlLog.rewrite` goes through a
  temporary file renamed over the original with :func:`os.replace`: a
  kill at any instant leaves either the complete old file or the
  complete new one.
* **Writers exclude each other.**  Append and rewrite take an advisory
  ``flock`` on a sidecar ``.lock`` file, so a fleet of worker processes
  sharing one score cache or calibration store on a shared filesystem
  cannot interleave bytes inside one another's writes.  The lock lives
  on the *sidecar* — never the data file — because the rewrite replaces
  the data file's inode, and a lock taken on a replaced inode excludes
  nobody.  Readers never lock (:meth:`scan` tolerates every in-flight
  state), and on platforms without ``fcntl`` the lock degrades to the
  previous torn-tail-sealing behaviour.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Iterator, TypeVar

try:  # pragma: no cover - import guard for non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = ["JsonlLog"]

T = TypeVar("T")


class JsonlLog:
    """One append-only JSON-lines file with kill-safe load/append/rewrite."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    # -- loading ------------------------------------------------------------
    def scan(
        self,
        decode: Callable[[bytes], T],
        errors: tuple[type[BaseException], ...] = (ValueError, KeyError, TypeError),
    ) -> Iterator[T]:
        """Stream the decoded items of the file's complete, parseable lines.

        ``decode`` turns one stripped line into an item; raising any of
        ``errors`` skips that line.  An unterminated final line (torn
        tail or another writer's append in flight) is ignored.  Missing
        file: yields nothing.
        """

        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    return  # not durable data (yet); never decode it
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    item = decode(stripped)
                except errors:
                    continue  # skip junk; later lines are still good
                yield item

    # -- writing ------------------------------------------------------------
    @contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Exclusive advisory lock serialising writers of this file.

        Both :meth:`append` and :meth:`rewrite` of every process take it,
        so concurrent appends land whole-lines-at-a-time and an append can
        never race a compaction's ``os.replace``.  The sidecar is shared
        by all writers and never replaced, which is what makes the lock
        meaningful across rewrites.  No-op where ``fcntl`` is missing.
        """

        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        with lock_path.open("a+b") as lock_handle:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)

    def _tail_is_open(self) -> bool:
        """Whether the file ends mid-line (no trailing newline)."""

        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size == 0:
            return False
        with self.path.open("rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def append(self, lines: Iterable[str]) -> None:
        """Durably append ``lines`` (each newline-terminated) in one shot.

        One open/flush/fsync per call — batching is what makes per-record
        streaming affordable, and the flush before close bounds the
        damage a kill can do to the final (possibly torn) line, which
        :meth:`scan` ignores and the next append seals off.
        """

        lines = list(lines)
        if not lines:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._write_lock():
            # The tail check must happen *inside* the lock: another
            # process's append between check and write would make the
            # sealing newline land in the wrong place.
            if self._tail_is_open():
                lines[0] = "\n" + lines[0]  # seal the torn fragment into its own line
            with self.path.open("a", encoding="utf-8") as handle:
                handle.writelines(lines)
                handle.flush()
                os.fsync(handle.fileno())

    def rewrite(self, lines: Iterable[str]) -> None:
        """Atomically replace the whole file via temp + ``os.replace``."""

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._write_lock():
            temp = self.path.with_name(self.path.name + ".tmp")
            with temp.open("w", encoding="utf-8") as handle:
                handle.writelines(lines)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
