"""Checkpoint/resume: a partial pipeline run continues without redoing work."""

from __future__ import annotations

import itertools
import json

from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.pipeline import EvaluationPipeline, PipelineCheckpoint
from repro.pipeline.records import record_from_dict, record_to_dict


class _CountingModel:
    """Delegates to a registry model while counting generate() calls."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.calls = 0

    @property
    def name(self) -> str:
        return self.inner.name

    def generate(self, problem, shots: int = 0, sample_index: int = 0) -> str:
        self.calls += 1
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


def test_record_roundtrips_through_checkpoint_format(small_original_problems):
    problems = list(small_original_problems)[:2]
    evaluation = EvaluationPipeline(get_model("gpt-4")).run(_requests(problems))
    for record in evaluation.records:
        assert record_from_dict(json.loads(json.dumps(record_to_dict(record)))) == record


def test_resume_skips_completed_work(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:10]
    path = tmp_path / "run.ckpt.jsonl"

    # Full uninterrupted run: the ground truth.
    truth = EvaluationPipeline(get_model("gpt-4")).run(_requests(problems)).records

    # Interrupted run: consume only the first 5 streamed records, then drop
    # the generator (batch_size=2 means 6 records were actually finished).
    first = _CountingModel(get_model("gpt-4"))
    pipeline = EvaluationPipeline(first, checkpoint=PipelineCheckpoint(path), batch_size=2)
    partial = list(itertools.islice(pipeline.run_iter(_requests(problems)), 5))
    assert [r.problem_id for r in partial] == [p.problem_id for p in problems[:5]]
    assert first.calls == 6

    # Resumed run: a fresh pipeline on the same checkpoint file only queries
    # the model for the 4 problems that never finished.
    second = _CountingModel(get_model("gpt-4"))
    resumed = EvaluationPipeline(second, checkpoint=PipelineCheckpoint(path), batch_size=2)
    records = resumed.run(_requests(problems)).records
    assert second.calls == 4
    assert records == truth


def test_resumed_run_with_full_checkpoint_never_queries(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:6]
    path = tmp_path / "run.ckpt.jsonl"
    EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path)).run(_requests(problems))

    model = _CountingModel(get_model("gpt-4"))
    evaluation = EvaluationPipeline(model, checkpoint=PipelineCheckpoint(path)).run(_requests(problems))
    assert model.calls == 0
    assert len(evaluation.records) == len(problems)


def test_checkpoint_is_per_model_and_per_shots(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:3]
    checkpoint = PipelineCheckpoint(tmp_path / "run.ckpt.jsonl")
    EvaluationPipeline(get_model("gpt-4"), checkpoint=checkpoint).run(_requests(problems))

    # A different model or shot count misses the checkpoint entirely.
    other = _CountingModel(get_model("gpt-3.5"))
    EvaluationPipeline(other, checkpoint=checkpoint).run(_requests(problems))
    assert other.calls == len(problems)

    again = _CountingModel(get_model("gpt-4"))
    EvaluationPipeline(again, checkpoint=checkpoint).run(
        [GenerationRequest(problem=p, shots=2) for p in problems]
    )
    assert again.calls == len(problems)


def test_failed_generations_are_retried_on_resume(tmp_path, small_original_problems):
    """A captured endpoint error is transient: it is not checkpointed, so a
    resumed run queries the model again instead of serving zeros forever."""

    problems = list(small_original_problems)[:6]
    path = tmp_path / "run.ckpt.jsonl"
    flaky_id = problems[2].problem_id

    class FlakyOnce:
        name = "gpt-4"  # same identity as the healthy model below

        def __init__(self, inner) -> None:
            self.inner = inner

        def generate(self, problem, shots=0, sample_index=0):
            if problem.problem_id == flaky_id:
                raise ConnectionError("endpoint reset")
            return self.inner.generate(problem, shots=shots, sample_index=sample_index)

    first = EvaluationPipeline(FlakyOnce(get_model("gpt-4")), checkpoint=PipelineCheckpoint(path))
    partial = first.run(_requests(problems))
    assert [r.problem_id for r in partial.records if r.error] == [flaky_id]
    assert len(PipelineCheckpoint(path)) == len(problems) - 1

    # The endpoint recovered: only the failed problem is re-queried.
    healthy = _CountingModel(get_model("gpt-4"))
    resumed = EvaluationPipeline(healthy, checkpoint=PipelineCheckpoint(path))
    records = resumed.run(_requests(problems)).records
    assert healthy.calls == 1
    assert all(not r.error for r in records)
    assert records == EvaluationPipeline(get_model("gpt-4")).run(_requests(problems)).records


def test_torn_final_line_is_dropped_on_load(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:4]
    path = tmp_path / "run.ckpt.jsonl"
    EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path)).run(_requests(problems))

    # Simulate a crash mid-append: the last line is truncated JSON.
    content = path.read_text(encoding="utf-8")
    path.write_text(content + '{"model_name": "gpt-4", "problem_id"', encoding="utf-8")

    reloaded = PipelineCheckpoint(path)
    assert len(reloaded) == len(problems)


def test_string_checkpoint_path_accepted(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:2]
    path = str(tmp_path / "nested" / "run.ckpt.jsonl")
    EvaluationPipeline(get_model("gpt-4"), checkpoint=path).run(_requests(problems))
    assert len(PipelineCheckpoint(path)) == 2


def test_truncate_torture_every_cut_recovers_on_resume(tmp_path, small_original_problems):
    """Kill-safety: chop the checkpoint file at arbitrary byte offsets and
    confirm the load keeps exactly the intact-line prefix and a resumed run
    still reproduces the uninterrupted result."""

    problems = list(small_original_problems)[:6]
    path = tmp_path / "run.ckpt.jsonl"
    truth = (
        EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path))
        .run(_requests(problems))
        .records
    )
    blob = path.read_bytes()
    line_ends = [i + 1 for i, byte in enumerate(blob) if byte == ord("\n")]
    # Every line boundary, the byte right after it, and a spread of
    # mid-line cuts — a kill can land anywhere.
    cuts = sorted(
        {0, 1, len(blob)}
        | set(line_ends)
        | {end + 1 for end in line_ends if end + 1 <= len(blob)}
        | set(range(7, len(blob), max(1, len(blob) // 23)))
    )
    for cut in cuts:
        torn = tmp_path / "torn.ckpt.jsonl"
        torn.write_bytes(blob[:cut])
        reloaded = PipelineCheckpoint(torn)
        intact_lines = sum(1 for end in line_ends if end <= cut)
        # Every newline-terminated line survives; a cut landing exactly on
        # a line's closing brace keeps that (complete) record too.
        assert intact_lines <= len(reloaded) <= intact_lines + 1, f"cut at byte {cut}"
        resumed = (
            EvaluationPipeline(get_model("gpt-4"), checkpoint=reloaded)
            .run(_requests(problems))
            .records
        )
        assert resumed == truth, f"cut at byte {cut}"


def test_torn_tail_is_truncated_so_resume_appends_cleanly(tmp_path, small_original_problems):
    """Regression: kill → resume → reload.  Loading a torn file must
    truncate the fragment, otherwise the resume's first appended record
    glues onto it and every later load silently loses the whole tail."""

    problems = list(small_original_problems)[:6]
    path = tmp_path / "run.ckpt.jsonl"
    truth = (
        EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path))
        .run(_requests(problems))
        .records
    )
    # Kill mid-append: chop the last line in half (no trailing newline).
    blob = path.read_bytes()
    cut = (blob.rstrip(b"\n").rfind(b"\n") + 1 + len(blob)) // 2
    path.write_bytes(blob[:cut])

    # Resume appends the re-evaluated records after the (truncated) tail.
    resumed = PipelineCheckpoint(path)
    assert len(resumed) == len(problems) - 1
    records = (
        EvaluationPipeline(get_model("gpt-4"), checkpoint=resumed).run(_requests(problems)).records
    )
    assert records == truth

    # The reloaded file must serve EVERY record — nothing glued, nothing lost.
    reloaded = PipelineCheckpoint(path)
    assert len(reloaded) == len(problems)
    untouched = _CountingModel(get_model("gpt-4"))
    final = EvaluationPipeline(untouched, checkpoint=reloaded).run(_requests(problems)).records
    assert untouched.calls == 0
    assert final == truth


def test_loading_a_torn_checkpoint_never_writes(tmp_path, small_original_problems):
    """Reads must be side-effect free: a monitoring script opening a live
    (possibly mid-append) checkpoint must not truncate the writer's file —
    the torn-tail repair belongs to the next append, not to the load."""

    problems = list(small_original_problems)[:4]
    path = tmp_path / "run.ckpt.jsonl"
    EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path)).run(
        _requests(problems)
    )
    torn = path.read_bytes()[:-5]  # as a concurrent reader would see mid-append
    path.write_bytes(torn)
    reader = PipelineCheckpoint(path)
    assert len(reader) == len(problems) - 1
    assert path.read_bytes() == torn  # untouched: the load wrote nothing


def test_put_batch_is_one_durable_append(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:4]
    records = EvaluationPipeline(get_model("gpt-4")).run(_requests(problems)).records
    path = tmp_path / "batch.ckpt.jsonl"
    checkpoint = PipelineCheckpoint(path)
    checkpoint.put_batch(records)
    checkpoint.put_batch(records)  # duplicates are skipped, not re-appended
    assert len(path.read_text(encoding="utf-8").splitlines()) == len(records)
    assert len(PipelineCheckpoint(path)) == len(records)


def test_clear_and_compact_rewrite_atomically(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:4]
    path = tmp_path / "run.ckpt.jsonl"
    checkpoint = PipelineCheckpoint(path)
    records = EvaluationPipeline(get_model("gpt-4"), checkpoint=checkpoint).run(
        _requests(problems)
    ).records
    # Append the same records again at the file level to simulate several
    # resumed partial runs, then compact back to the deduped live set.
    blob = path.read_text(encoding="utf-8")
    path.write_text(blob + blob, encoding="utf-8")
    checkpoint.compact()
    assert len(PipelineCheckpoint(path)) == len(records)
    assert len(path.read_text(encoding="utf-8").splitlines()) == len(records)
    assert not path.with_name(path.name + ".tmp").exists()  # replaced, not left behind
    checkpoint.clear()
    assert path.read_text(encoding="utf-8") == ""
    assert len(PipelineCheckpoint(path)) == 0
