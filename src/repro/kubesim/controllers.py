"""Workload controllers for the simulated cluster.

Controllers reconcile the desired state expressed by workload objects into
Pods and Endpoints, mimicking the behaviour unit tests observe through
``kubectl`` on a real cluster:

* Deployment / ReplicaSet / StatefulSet create ``spec.replicas`` pods,
* DaemonSet creates one pod per node,
* Job creates a single pod that runs to completion,
* Service selects ready pods with matching labels into Endpoints and, for
  LoadBalancer services, receives a simulated external IP,
* Pods become ``Ready`` when every container image is pullable and the
  manifest passed validation; the readiness condition carries the reasons
  otherwise.

Reconciliation is synchronous and idempotent — the cluster calls
:func:`reconcile` after every mutation, so by the time a unit test queries
state the controllers have converged (the real benchmark uses
``kubectl wait`` for the same purpose).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.kubesim.images import is_pullable
from repro.kubesim.resources import Resource
from repro.kubesim.selectors import matches_selector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.kubesim.cluster import Cluster

__all__ = ["reconcile"]


def _pod_name(owner: Resource, index: int) -> str:
    suffix = f"{abs(hash((owner.kind, owner.name, index))) % 100000:05d}"
    return f"{owner.name}-{suffix}"


def _make_pod_from_template(owner: Resource, template: dict[str, Any], index: int, node: str) -> Resource:
    metadata = copy.deepcopy(template.get("metadata") or {})
    metadata.setdefault("labels", {})
    metadata["name"] = _pod_name(owner, index)
    metadata["namespace"] = owner.namespace
    metadata.setdefault("ownerReferences", [
        {"kind": owner.kind, "name": owner.name, "apiVersion": owner.api_version}
    ])
    manifest = {
        "apiVersion": "v1",
        "kind": "Pod",
        "metadata": metadata,
        "spec": copy.deepcopy(template.get("spec") or {}),
    }
    pod = Resource(manifest=manifest, owner=(owner.kind, owner.namespace, owner.name))
    pod.manifest["spec"]["nodeName"] = node
    return pod


def _pod_ready(pod: Resource, cluster: "Cluster") -> tuple[bool, str]:
    """Decide readiness of a pod and give a reason when not ready."""

    containers = pod.manifest.get("spec", {}).get("containers", [])
    if not containers:
        return False, "no containers"
    for container in containers:
        image = container.get("image", "")
        if not is_pullable(image):
            return False, f"ImagePullBackOff: cannot pull {image!r}"
        for env in container.get("env") or []:
            value_from = env.get("valueFrom") if isinstance(env, dict) else None
            if isinstance(value_from, dict):
                ref = value_from.get("secretKeyRef") or value_from.get("configMapKeyRef")
                if isinstance(ref, dict) and ref.get("name"):
                    kind = "Secret" if "secretKeyRef" in value_from else "ConfigMap"
                    if not cluster.exists(kind, ref["name"], pod.namespace):
                        return False, f"CreateContainerConfigError: {kind} {ref['name']!r} not found"
        for env_from in container.get("envFrom") or []:
            if isinstance(env_from, dict):
                ref = env_from.get("secretRef") or env_from.get("configMapRef")
                if isinstance(ref, dict) and ref.get("name"):
                    kind = "Secret" if "secretRef" in env_from else "ConfigMap"
                    if not cluster.exists(kind, ref["name"], pod.namespace):
                        return False, f"CreateContainerConfigError: {kind} {ref['name']!r} not found"
    # Volumes referencing PVCs must resolve to an existing claim.
    for volume in pod.manifest.get("spec", {}).get("volumes") or []:
        pvc = volume.get("persistentVolumeClaim") if isinstance(volume, dict) else None
        if isinstance(pvc, dict) and pvc.get("claimName"):
            if not cluster.exists("PersistentVolumeClaim", pvc["claimName"], pod.namespace):
                return False, f"unbound PersistentVolumeClaim {pvc['claimName']!r}"
    return True, "Ready"


def _update_pod_status(pod: Resource, cluster: "Cluster") -> None:
    ready, reason = _pod_ready(pod, cluster)
    node = pod.manifest.get("spec", {}).get("nodeName") or cluster.node_names()[0]
    phase = "Running" if ready else "Pending"
    owner_kind = pod.owner[0] if pod.owner else None
    if ready and owner_kind == "Job":
        phase = "Succeeded"
    pod.status = {
        "phase": phase,
        "hostIP": cluster.node_ip(node),
        "podIP": cluster.allocate_pod_ip(pod.name),
        "conditions": [
            {
                "type": "Ready",
                "status": "True" if ready else "False",
                "reason": reason if not ready else "PodReady",
            }
        ],
        "containerStatuses": [
            {
                "name": c.get("name", f"container-{i}"),
                "image": c.get("image", ""),
                "ready": ready,
                "restartCount": 0,
            }
            for i, c in enumerate(pod.manifest.get("spec", {}).get("containers", []))
        ],
    }


def _desired_pod_count(workload: Resource, cluster: "Cluster") -> int:
    if workload.kind == "DaemonSet":
        return len(cluster.node_names())
    if workload.kind == "Job":
        completions = workload.spec.get("completions", 1)
        return int(completions) if isinstance(completions, int) and completions > 0 else 1
    replicas = workload.spec.get("replicas", 1)
    return int(replicas) if isinstance(replicas, int) and replicas >= 0 else 1


def _reconcile_workload(workload: Resource, cluster: "Cluster") -> None:
    template = workload.pod_template()
    if not template:
        return
    desired = _desired_pod_count(workload, cluster)
    owned = cluster.pods_owned_by(workload)
    nodes = cluster.node_names()

    # Scale up.
    for index in range(len(owned), desired):
        node = nodes[index % len(nodes)]
        pod = _make_pod_from_template(workload, template, index, node)
        cluster.store_pod(pod)
    # Scale down.
    for pod in owned[desired:]:
        cluster.remove(pod)

    owned = cluster.pods_owned_by(workload)
    ready = sum(1 for pod in owned if cluster.pod_is_ready(pod))
    if workload.kind == "Deployment":
        workload.status = {
            "replicas": len(owned),
            "readyReplicas": ready,
            "availableReplicas": ready,
            "updatedReplicas": len(owned),
            "conditions": [
                {"type": "Available", "status": "True" if ready >= desired else "False"},
                {"type": "Progressing", "status": "True"},
            ],
        }
    elif workload.kind == "DaemonSet":
        workload.status = {
            "desiredNumberScheduled": desired,
            "currentNumberScheduled": len(owned),
            "numberReady": ready,
            "numberAvailable": ready,
        }
    elif workload.kind in ("StatefulSet", "ReplicaSet"):
        workload.status = {"replicas": len(owned), "readyReplicas": ready}
    elif workload.kind == "Job":
        succeeded = sum(1 for pod in owned if pod.status.get("phase") == "Succeeded")
        workload.status = {
            "succeeded": succeeded,
            "active": len(owned) - succeeded,
            "conditions": [
                {"type": "Complete", "status": "True" if succeeded >= desired else "False"}
            ],
        }


def _reconcile_service(service: Resource, cluster: "Cluster") -> None:
    spec = service.spec
    selector = spec.get("selector")
    ready_addresses: list[dict[str, Any]] = []
    if isinstance(selector, dict) and selector:
        for pod in cluster.list_resources("Pod", namespace=service.namespace):
            if matches_selector(pod.labels, selector) and cluster.pod_is_ready(pod):
                ready_addresses.append({"ip": pod.status.get("podIP", ""), "targetRef": {"kind": "Pod", "name": pod.name}})
    service.status = {
        "loadBalancer": {},
        "endpoints": ready_addresses,
    }
    if spec.get("type") == "LoadBalancer" and ready_addresses:
        service.status["loadBalancer"] = {"ingress": [{"ip": cluster.allocate_lb_ip(service.name)}]}
    cluster.store_endpoints(service, ready_addresses)


def reconcile(cluster: "Cluster") -> None:
    """Run every controller until the cluster state is consistent.

    Two passes are enough: the first creates pods and refreshes their
    status, the second lets services observe pods created in the first.
    """

    for _ in range(2):
        for workload in cluster.list_workloads():
            if workload.kind != "Pod":
                _reconcile_workload(workload, cluster)
        for pod in cluster.list_resources("Pod"):
            _update_pod_status(pod, cluster)
        for service in cluster.list_resources("Service"):
            _reconcile_service(service, cluster)
