"""In-memory Kubernetes simulator used as the functional-evaluation substrate.

The real CloudEval-YAML benchmark runs unit tests against a Minikube
cluster with ``kubectl``.  Offline, this package provides the equivalent
behaviour:

* :class:`~repro.kubesim.cluster.Cluster` stores resources per namespace,
  validates them against per-kind schemas and runs lightweight controllers
  (Deployment/DaemonSet/Job/StatefulSet create Pods, Services gain
  Endpoints, Pods become Ready when their image is pullable).
* :class:`~repro.kubesim.kubectl.Kubectl` exposes a ``kubectl``-like
  facade (``apply``, ``get`` with JSONPath, ``wait``, ``describe``,
  ``delete``) which the unit-test executor drives.

A manifest that would be rejected or mis-behave on a real cluster — wrong
``apiVersion``, a selector that does not match the pod template, a missing
required field, a port out of range — is rejected or fails readiness here
too, which is what the function-level score needs.
"""

from repro.kubesim.cluster import Cluster
from repro.kubesim.errors import (
    AlreadyExistsError,
    KubeError,
    NotFoundError,
    ValidationError,
)
from repro.kubesim.kubectl import Kubectl
from repro.kubesim.resources import Resource

__all__ = [
    "AlreadyExistsError",
    "Cluster",
    "KubeError",
    "Kubectl",
    "NotFoundError",
    "Resource",
    "ValidationError",
]
