"""Figure 5 — Evaluation time over all problems vs number of workers, with and without image caching.

Paper: a single machine needs over 10 hours; a 64-worker cluster with shared
Docker image caching finishes in under 30 minutes (a >20x speedup, ~13x from
parallelism and ~1.6x from caching).
"""

from __future__ import annotations

from benchmarks.common import FAST_MODE, bench_dataset
from repro.analysis.paper_reference import PAPER_FIGURE5_HOURS
from repro.evalcluster import sweep_workers


def test_fig5_evaluation_time_sweep(benchmark):
    dataset = bench_dataset()
    sweep = benchmark.pedantic(sweep_workers, args=(dataset,), rounds=1, iterations=1)

    print("\nFigure 5 (hours, measured vs paper):")
    for caching in (False, True):
        label = "w/ caching " if caching else "w/o caching"
        for workers, hours in sweep[caching].items():
            paper = PAPER_FIGURE5_HOURS[caching][workers]
            print(f"  {label} {workers:>3} workers: {hours:6.2f} h   (paper {paper:.2f} h)")

    cached = sweep[True]
    uncached = sweep[False]

    # More workers means faster evaluation (both settings, monotone).
    assert cached[1] > cached[4] > cached[16] > cached[64]
    assert uncached[1] > uncached[4] > uncached[16] >= uncached[64]

    if not FAST_MODE:
        # Single machine takes on the order of 10 hours.
        assert 7.0 < cached[1] < 14.0
        # The 64-worker cached cluster finishes in well under an hour.
        assert cached[64] < 1.0
        # Overall speedup exceeds the paper's 20x claim threshold.
        assert cached[1] / cached[64] > 13.0

    # Caching helps, and helps most at high worker counts.
    assert cached[64] < uncached[64]
    caching_gain_64 = uncached[64] / cached[64]
    caching_gain_1 = uncached[1] / cached[1]
    assert caching_gain_64 > caching_gain_1
    assert caching_gain_64 > 1.3
