"""A kubectl-style JSONPath evaluator.

Unit tests in the dataset extract fields with expressions such as::

    {.items[0].spec.containers[0].resources.limits.cpu}
    {.items..metadata.name}
    {.items[*].spec.containers[0].env[*].name}
    {.status.hostIP}

This module implements the subset of JSONPath that ``kubectl -o jsonpath``
supports and that the dataset uses: child access, positional indexing,
wildcard ``[*]``, recursive descent ``..`` and filter-free list flattening.
The evaluator returns all matching values; :func:`render_jsonpath` joins
them with spaces exactly like ``kubectl`` does.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

__all__ = ["evaluate_jsonpath", "render_jsonpath", "JsonPathError"]


class JsonPathError(ValueError):
    """Raised for malformed JSONPath expressions."""


_TOKEN_RE = re.compile(
    r"""
    \.\.(?P<recursive>[A-Za-z0-9_\-]+)      # ..field (recursive descent)
    | \.(?P<field>[A-Za-z0-9_\-]+)          # .field
    | \[(?P<index>-?\d+)\]                  # [0]
    | \[(?P<star>\*)\]                      # [*]
    | \['(?P<quoted>[^']+)'\]               # ['field.with.dots']
    """,
    re.VERBOSE,
)


def _strip_braces(expression: str) -> str:
    expression = expression.strip()
    if expression.startswith("{") and expression.endswith("}"):
        expression = expression[1:-1]
    return expression.strip()


def _tokenize(expression: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    body = _strip_braces(expression)
    if body in ("", "."):
        return tokens
    while pos < len(body):
        match = _TOKEN_RE.match(body, pos)
        if not match:
            raise JsonPathError(f"cannot parse JSONPath {expression!r} at offset {pos}")
        if match.group("recursive") is not None:
            tokens.append(("recursive", match.group("recursive")))
        elif match.group("field") is not None:
            tokens.append(("field", match.group("field")))
        elif match.group("index") is not None:
            tokens.append(("index", match.group("index")))
        elif match.group("star") is not None:
            tokens.append(("star", "*"))
        elif match.group("quoted") is not None:
            tokens.append(("field", match.group("quoted")))
        pos = match.end()
    return tokens


def _descend(value: Any, field: str) -> Iterable[Any]:
    """Yield every value stored under ``field`` anywhere below ``value``."""

    if isinstance(value, dict):
        for key, child in value.items():
            if key == field:
                yield child
            yield from _descend(child, field)
    elif isinstance(value, list):
        for child in value:
            yield from _descend(child, field)


def evaluate_jsonpath(document: Any, expression: str) -> list[Any]:
    """Evaluate ``expression`` against ``document`` returning all matches."""

    current: list[Any] = [document]
    for token_type, token_value in _tokenize(expression):
        next_values: list[Any] = []
        for value in current:
            if token_type == "field":
                if isinstance(value, dict) and token_value in value:
                    next_values.append(value[token_value])
                elif isinstance(value, list):
                    # kubectl implicitly maps field access over lists.
                    for item in value:
                        if isinstance(item, dict) and token_value in item:
                            next_values.append(item[token_value])
            elif token_type == "recursive":
                next_values.extend(_descend(value, token_value))
            elif token_type == "index":
                idx = int(token_value)
                if isinstance(value, list) and -len(value) <= idx < len(value):
                    next_values.append(value[idx])
            elif token_type == "star":
                if isinstance(value, list):
                    next_values.extend(value)
                elif isinstance(value, dict):
                    next_values.extend(value.values())
        current = next_values
    return current


def render_jsonpath(document: Any, expression: str) -> str:
    """Render matches the way ``kubectl -o jsonpath`` does (space separated)."""

    values = evaluate_jsonpath(document, expression)
    rendered: list[str] = []
    for value in values:
        if isinstance(value, bool):
            rendered.append("true" if value else "false")
        elif isinstance(value, (dict, list)):
            rendered.append(str(value))
        elif value is None:
            rendered.append("")
        else:
            rendered.append(str(value))
    return " ".join(rendered)
