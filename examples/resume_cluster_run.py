"""Checkpoint/resume and the cluster executor: survive an interrupted run.

The paper's full evaluation is hours of model queries and unit tests, so
the reproduction's pipeline checkpoints every finished record and can pick
a run back up where it stopped.  This example simulates the crash: it
evaluates half the corpus, "dies", then resumes from the checkpoint file —
the resumed run only queries the model for the problems that never
finished.  Scoring work is dispatched through the in-process evaluation
cluster (the same master/worker job queue the Figure 5 simulation uses),
and the result is verified identical to a plain serial run.

Run with::

    python examples/resume_cluster_run.py
"""

from __future__ import annotations

import itertools
import tempfile
from pathlib import Path

from repro import CloudEvalBenchmark, build_dataset
from repro.core import BenchmarkConfig
from repro.dataset.schema import Variant
from repro.pipeline import PipelineCheckpoint

MODEL_NAME = "gpt-3.5"
PROBLEM_BUDGET = 60
INTERRUPT_AFTER = 25


def main() -> None:
    dataset = build_dataset()
    problems = list(dataset.by_variant(Variant.ORIGINAL))[:PROBLEM_BUDGET]

    # "cluster" routes scoring through the master/worker job protocol with
    # 8 in-process workers; scores are identical to the serial backend.
    benchmark = CloudEvalBenchmark(dataset, BenchmarkConfig(executor="cluster", max_workers=8))
    model, requests = benchmark.requests(MODEL_NAME, problems=problems)

    checkpoint_path = Path(tempfile.mkdtemp()) / "benchmark-run.ckpt.jsonl"
    print(f"Evaluating {MODEL_NAME!r} on {len(requests)} problems (checkpoint: {checkpoint_path}).")

    # --- first run, interrupted after INTERRUPT_AFTER records ------------
    pipeline = benchmark.pipeline(model, checkpoint=PipelineCheckpoint(checkpoint_path))
    consumed = list(itertools.islice(pipeline.run_iter(requests), INTERRUPT_AFTER))
    done = len(PipelineCheckpoint(checkpoint_path))
    print(f"Interrupted after {len(consumed)} records ({done} checkpointed).")

    # --- resumed run ------------------------------------------------------
    resumed = benchmark.pipeline(model, checkpoint=PipelineCheckpoint(checkpoint_path))
    evaluation = resumed.run(requests)
    print(f"Resumed run finished: {len(evaluation.records)} records "
          f"({len(requests) - done} evaluated fresh, {done} from the checkpoint).")

    # --- the resume changed nothing --------------------------------------
    clean = CloudEvalBenchmark(dataset, BenchmarkConfig()).evaluate_model(MODEL_NAME, problems=problems)
    assert evaluation.records == clean.records, "resumed records differ from a clean run"
    scores = evaluation.mean_scores()
    print("\nMean scores (identical to an uninterrupted serial run):")
    for metric, value in scores.items():
        print(f"  {metric:<14} {value:.3f}")
    print(f"Unit-test passes: {evaluation.pass_count()} / {len(problems)}")


if __name__ == "__main__":
    main()
