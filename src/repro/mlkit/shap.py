"""Exact Shapley-value explanations for low-dimensional models.

Figure 9(b) of the paper reports SHAP values for the five scoring features
feeding the unit-test predictor.  With only five features the exact
Shapley value is tractable: for every feature we enumerate all 2^(d-1)
coalitions of the remaining features and average the marginal contribution
of adding the feature, where "a feature is absent" is modelled by replacing
it with its background (dataset mean) value — the standard interventional
expectation approximated with a mean-imputation baseline.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Sequence

import numpy as np

__all__ = ["exact_shap_values", "mean_abs_shap"]

PredictFn = Callable[[np.ndarray], np.ndarray]


def exact_shap_values(
    predict: PredictFn,
    X: np.ndarray,
    background: np.ndarray | None = None,
    max_features: int = 12,
) -> np.ndarray:
    """Compute exact Shapley values for each row of ``X``.

    ``predict`` maps an (n, d) array to an (n,) array of model outputs
    (probabilities or raw margins).  ``background`` is the reference point
    used for "missing" features; by default it is the column-wise mean of
    ``X``.  Returns an (n, d) array of per-feature attributions such that
    ``background_prediction + sum(shap_values[i]) == predict(X[i])`` up to
    floating-point error.
    """

    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    n_samples, n_features = X.shape
    if n_features > max_features:
        raise ValueError(
            f"exact Shapley enumeration is exponential; {n_features} features "
            f"exceeds the limit of {max_features}"
        )
    if background is None:
        background = X.mean(axis=0)
    background = np.asarray(background, dtype=float)

    features = list(range(n_features))
    shap_values = np.zeros((n_samples, n_features), dtype=float)

    # Pre-compute model output for every coalition (subset of present
    # features).  There are 2^d coalitions; each requires one batched
    # predict call over all samples.
    coalition_outputs: dict[frozenset[int], np.ndarray] = {}
    for size in range(n_features + 1):
        for subset in combinations(features, size):
            key = frozenset(subset)
            masked = np.tile(background, (n_samples, 1))
            if subset:
                cols = list(subset)
                masked[:, cols] = X[:, cols]
            coalition_outputs[key] = np.asarray(predict(masked), dtype=float)

    for feature in features:
        others = [f for f in features if f != feature]
        for size in range(len(others) + 1):
            weight = 1.0 / (n_features * comb(n_features - 1, size))
            for subset in combinations(others, size):
                without = frozenset(subset)
                with_feature = without | {feature}
                marginal = coalition_outputs[with_feature] - coalition_outputs[without]
                shap_values[:, feature] += weight * marginal

    return shap_values


def mean_abs_shap(shap_values: np.ndarray, feature_names: Sequence[str]) -> dict[str, float]:
    """Summarise per-sample attributions into mean |SHAP| per feature."""

    shap_values = np.asarray(shap_values, dtype=float)
    if shap_values.shape[1] != len(feature_names):
        raise ValueError("feature_names length must match SHAP columns")
    means = np.abs(shap_values).mean(axis=0)
    return {name: float(value) for name, value in zip(feature_names, means)}
