"""Validators and query helpers for Istio networking CRDs."""

from __future__ import annotations

from typing import Any

from repro.kubesim.errors import ValidationError
from repro.kubesim.resources import Resource
from repro.kubesim.validation import register_validator

__all__ = [
    "register_istio_validators",
    "destination_rule_lb_policy",
    "destination_rule_subsets",
    "virtual_service_destinations",
    "gateway_servers",
]

_LB_POLICIES = {"ROUND_ROBIN", "LEAST_REQUEST", "LEAST_CONN", "RANDOM", "PASSTHROUGH"}


def _require(condition: bool, message: str, field: str | None = None) -> None:
    if not condition:
        raise ValidationError(message, field=field)


def _validate_traffic_policy(policy: Any, path: str) -> None:
    if policy is None:
        return
    _require(isinstance(policy, dict), "trafficPolicy must be a mapping", path)
    load_balancer = policy.get("loadBalancer")
    if load_balancer is not None:
        _require(isinstance(load_balancer, dict), "loadBalancer must be a mapping", f"{path}.loadBalancer")
        simple = load_balancer.get("simple")
        if simple is not None:
            _require(simple in _LB_POLICIES, f"unknown load balancer policy {simple!r}", f"{path}.loadBalancer.simple")


def _validate_destination_rule(resource: Resource) -> None:
    spec = resource.spec
    _require(bool(spec.get("host")), "DestinationRule needs spec.host", "spec.host")
    _validate_traffic_policy(spec.get("trafficPolicy"), "spec.trafficPolicy")
    for index, subset in enumerate(spec.get("subsets") or []):
        _require(isinstance(subset, dict), "subset must be a mapping", f"spec.subsets[{index}]")
        _require(bool(subset.get("name")), "subset needs a name", f"spec.subsets[{index}].name")
        labels = subset.get("labels")
        _require(isinstance(labels, dict) and labels, "subset needs labels", f"spec.subsets[{index}].labels")
        _validate_traffic_policy(subset.get("trafficPolicy"), f"spec.subsets[{index}].trafficPolicy")


def _validate_virtual_service(resource: Resource) -> None:
    spec = resource.spec
    hosts = spec.get("hosts")
    _require(isinstance(hosts, list) and hosts, "VirtualService needs spec.hosts", "spec.hosts")
    routes = spec.get("http") or spec.get("tcp") or spec.get("tls")
    _require(isinstance(routes, list) and routes, "VirtualService needs http/tcp/tls routes", "spec.http")
    for index, route in enumerate(routes):
        _require(isinstance(route, dict), "route must be a mapping", f"spec.http[{index}]")
        destinations = route.get("route")
        _require(isinstance(destinations, list) and destinations, "route needs a destination list", f"spec.http[{index}].route")
        for d_index, destination in enumerate(destinations):
            dest = (destination or {}).get("destination") if isinstance(destination, dict) else None
            _require(isinstance(dest, dict) and dest.get("host"), "destination.host is required", f"spec.http[{index}].route[{d_index}].destination.host")


def _validate_gateway(resource: Resource) -> None:
    spec = resource.spec
    selector = spec.get("selector")
    _require(isinstance(selector, dict) and selector, "Gateway needs spec.selector", "spec.selector")
    servers = spec.get("servers")
    _require(isinstance(servers, list) and servers, "Gateway needs spec.servers", "spec.servers")
    for index, server in enumerate(servers):
        _require(isinstance(server, dict), "server must be a mapping", f"spec.servers[{index}]")
        port = server.get("port")
        _require(isinstance(port, dict) and isinstance(port.get("number"), int), "server.port.number is required", f"spec.servers[{index}].port.number")
        _require(bool(port.get("protocol")), "server.port.protocol is required", f"spec.servers[{index}].port.protocol")
        hosts = server.get("hosts")
        _require(isinstance(hosts, list) and hosts, "server needs hosts", f"spec.servers[{index}].hosts")


def _validate_service_entry(resource: Resource) -> None:
    spec = resource.spec
    _require(bool(spec.get("hosts")), "ServiceEntry needs spec.hosts", "spec.hosts")
    _require(bool(spec.get("resolution")), "ServiceEntry needs spec.resolution", "spec.resolution")


def _validate_peer_authentication(resource: Resource) -> None:
    mtls = resource.spec.get("mtls")
    if mtls is not None:
        mode = mtls.get("mode") if isinstance(mtls, dict) else None
        _require(mode in ("STRICT", "PERMISSIVE", "DISABLE", "UNSET"), f"invalid mTLS mode {mode!r}", "spec.mtls.mode")


def _validate_authorization_policy(resource: Resource) -> None:
    action = resource.spec.get("action", "ALLOW")
    _require(action in ("ALLOW", "DENY", "AUDIT", "CUSTOM"), f"invalid action {action!r}", "spec.action")


def register_istio_validators() -> None:
    """Register the Istio CRD validators with the Kubernetes simulator."""

    register_validator("DestinationRule", _validate_destination_rule)
    register_validator("VirtualService", _validate_virtual_service)
    register_validator("Gateway", _validate_gateway)
    register_validator("ServiceEntry", _validate_service_entry)
    register_validator("PeerAuthentication", _validate_peer_authentication)
    register_validator("AuthorizationPolicy", _validate_authorization_policy)


# ---------------------------------------------------------------------------
# Query helpers used by unit tests
# ---------------------------------------------------------------------------

def destination_rule_lb_policy(resource: Resource, subset: str | None = None) -> str | None:
    """The simple load-balancer policy of a DestinationRule (or a subset)."""

    spec = resource.spec
    if subset is None:
        policy = spec.get("trafficPolicy") or {}
    else:
        policy = {}
        for entry in spec.get("subsets") or []:
            if isinstance(entry, dict) and entry.get("name") == subset:
                policy = entry.get("trafficPolicy") or {}
                break
    load_balancer = policy.get("loadBalancer") or {}
    simple = load_balancer.get("simple")
    return str(simple) if simple else None


def destination_rule_subsets(resource: Resource) -> dict[str, dict[str, str]]:
    """Map of subset name to its labels."""

    out: dict[str, dict[str, str]] = {}
    for entry in resource.spec.get("subsets") or []:
        if isinstance(entry, dict) and entry.get("name"):
            labels = entry.get("labels") or {}
            out[str(entry["name"])] = {str(k): str(v) for k, v in labels.items()}
    return out


def virtual_service_destinations(resource: Resource) -> list[tuple[str, str | None]]:
    """(host, subset) pairs referenced by a VirtualService's routes."""

    destinations: list[tuple[str, str | None]] = []
    for route in resource.spec.get("http") or []:
        for destination in (route or {}).get("route") or []:
            dest = (destination or {}).get("destination") or {}
            if dest.get("host"):
                destinations.append((str(dest["host"]), dest.get("subset")))
    return destinations


def gateway_servers(resource: Resource) -> list[dict[str, Any]]:
    """The servers (port/protocol/hosts) exposed by a Gateway."""

    return [s for s in resource.spec.get("servers") or [] if isinstance(s, dict)]
