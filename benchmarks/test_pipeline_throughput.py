"""Pipeline throughput — the staged pipeline vs the raw query+score loop.

``evaluate_model`` now routes through ``EvaluationPipeline``; this module
guards the cost of that indirection.  The direct baseline is the
pre-pipeline driver body (one ``query_batch`` + one ``score_batch``); the
pipeline adds prompt materialisation, stage dispatch, batching, and — for
the cluster backend — the master/worker job protocol.  The recorded
timings track all three so BENCH_*.json shows the trajectory, and the
assertions keep the stage machinery from ever becoming the bottleneck.
"""

from __future__ import annotations

import time

from benchmarks.common import FAST_MODE, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.interface import QueryModule
from repro.pipeline import EvaluationPipeline
from repro.scoring.compiled import ReferenceStore, score_batch

MODEL_NAME = "gpt-4"


def _direct_loop(model, requests):
    """The legacy evaluate_model body: one query batch, one score batch."""

    results = QueryModule(model, max_workers=1).query_batch(requests)
    return score_batch(
        ((result.request.problem, result.response) for result in results),
        run_unit_tests=True,
        store=ReferenceStore(),
        max_workers=1,
    )


def test_pipeline_throughput(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    model, requests = driver.requests(MODEL_NAME)

    start = time.perf_counter()
    direct_cards = _direct_loop(model, requests)
    direct_seconds = time.perf_counter() - start

    def run_pipeline():
        return EvaluationPipeline(model, store=ReferenceStore()).run(requests)

    evaluation = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    pipeline_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    cluster_eval = EvaluationPipeline(
        model, executor="cluster", max_workers=8, store=ReferenceStore()
    ).run(requests)
    cluster_seconds = time.perf_counter() - start

    benchmark.extra_info["requests"] = len(requests)
    benchmark.extra_info["direct_seconds"] = round(direct_seconds, 4)
    benchmark.extra_info["cluster_seconds"] = round(cluster_seconds, 4)
    benchmark.extra_info["records_per_second"] = round(len(requests) / pipeline_seconds, 1)

    print(
        f"\nPipeline throughput over {len(requests)} zero-shot requests ({MODEL_NAME}):"
        f"\n  direct query+score loop : {direct_seconds:6.2f} s"
        f"\n  staged pipeline (serial): {pipeline_seconds:6.2f} s"
        f"\n  staged pipeline (cluster): {cluster_seconds:6.2f} s"
        f"\n  throughput              : {len(requests) / pipeline_seconds:7.0f} records/s"
    )

    # The stages must not change a single score...
    assert [r.scores for r in evaluation.records] == direct_cards
    assert [r.scores for r in cluster_eval.records] == direct_cards

    # ...and the stage/runtime machinery must stay cheap.  Generous bounds:
    # timing noise should never fail CI, only a real architecture regression.
    assert pipeline_seconds <= direct_seconds * 1.5 + 1.0, (
        f"staged pipeline {pipeline_seconds:.2f}s vs direct {direct_seconds:.2f}s"
    )
    assert cluster_seconds <= direct_seconds * 2.0 + 2.0, (
        f"cluster pipeline {cluster_seconds:.2f}s vs direct {direct_seconds:.2f}s"
    )
    if not FAST_MODE:
        # Full-corpus floor: the pipeline must sustain benchmark-scale rates.
        assert len(requests) / pipeline_seconds > 20.0
