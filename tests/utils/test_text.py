"""Tests for text helpers (word/token counting)."""

from __future__ import annotations

from repro.utils.text import count_tokens, count_words, normalize_whitespace, split_camel_case, tokenize_text


def test_count_words_whitespace_separated():
    assert count_words("create a pod named web") == 5


def test_count_words_handles_newlines_and_tabs():
    assert count_words("a\tb\nc   d") == 4


def test_count_words_empty_string():
    assert count_words("") == 0


def test_normalize_whitespace_collapses_runs():
    assert normalize_whitespace("  a \n b\t\tc ") == "a b c"


def test_split_camel_case():
    assert split_camel_case("containerPort") == ["container", "Port"]
    assert split_camel_case("HTTPServer") == ["HTTP", "Server"]
    assert split_camel_case("plain") == ["plain"]


def test_tokenize_splits_punctuation():
    tokens = tokenize_text("name: nginx-service")
    assert ":" in tokens and "-" in tokens


def test_tokenize_long_words_are_chunked():
    tokens = tokenize_text("deployment")
    assert all(len(t) <= 4 for t in tokens)
    assert "".join(tokens) == "deployment"


def test_count_tokens_monotone_in_text_length():
    short = count_tokens("create a pod")
    long = count_tokens("create a pod named web in the production namespace with nginx")
    assert long > short


def test_count_tokens_counts_cjk_characters_individually():
    assert count_tokens("创建一个") == 4
