"""Table 7 — Comparison of CloudEval-YAML with other code-generation benchmarks."""

from __future__ import annotations

from benchmarks.common import bench_dataset
from repro.analysis.related import RELATED_BENCHMARKS, format_table7
from repro.dataset.schema import Variant


def test_table7_related_benchmarks(benchmark):
    table = benchmark.pedantic(format_table7, rounds=1, iterations=1)
    print("\n" + table)

    rows = {row.name: row for row in RELATED_BENCHMARKS}
    cloudeval = rows["CloudEval-YAML"]

    # CloudEval-YAML is the only benchmark targeting YAML for cloud apps with
    # unit tests plus the key-value wildcard metric, and it is bilingual.
    assert cloudeval.problem_domain == "YAML for Cloud apps"
    assert "Unit tests" in cloudeval.special_eval_metric and "wildcard" in cloudeval.special_eval_metric
    assert set(cloudeval.natural_languages) == {"EN", "ZH"}
    yaml_benchmarks = [row for row in RELATED_BENCHMARKS if "YAML" in row.problem_domain]
    assert {row.name for row in yaml_benchmarks} == {"Ansible", "CloudEval-YAML"}

    # The problem count stated in the table matches the generated dataset.
    dataset = bench_dataset()
    assert cloudeval.num_problems == "1011"
    if len(dataset) == 1011:
        assert len(dataset.by_variant(Variant.ORIGINAL)) == 337

    # Hand-written benchmarks listed in the paper are present for comparison.
    assert {"HumanEval", "MBPP", "WikiSQL", "DS-1000"} <= set(rows)
