"""Tests for the YAML-aware metrics (key-value exact and wildcard match)."""

from __future__ import annotations

from repro.scoring.yaml_aware import key_value_exact_match, key_value_wildcard_match

REFERENCE_PLAIN = """apiVersion: v1
kind: Service
metadata:
  name: web-svc
  namespace: default
spec:
  selector:
    app: web
  ports:
  - port: 80
    targetPort: 80
  type: LoadBalancer
"""

REFERENCE_LABELED = REFERENCE_PLAIN.replace("name: web-svc", "name: web-svc  # *")


def test_kv_exact_ignores_key_order():
    reordered = """kind: Service
apiVersion: v1
spec:
  type: LoadBalancer
  ports:
  - targetPort: 80
    port: 80
  selector:
    app: web
metadata:
  namespace: default
  name: web-svc
"""
    assert key_value_exact_match(reordered, REFERENCE_PLAIN) == 1.0


def test_kv_exact_detects_value_change():
    assert key_value_exact_match(REFERENCE_PLAIN.replace("port: 80", "port: 81"), REFERENCE_PLAIN) == 0.0


def test_kv_exact_zero_for_invalid_yaml():
    assert key_value_exact_match("kind: [unclosed", REFERENCE_PLAIN) == 0.0
    assert key_value_exact_match("just prose", REFERENCE_PLAIN) == 0.0


def test_kv_exact_requires_same_document_count():
    doubled = REFERENCE_PLAIN + "---\n" + REFERENCE_PLAIN
    assert key_value_exact_match(doubled, REFERENCE_PLAIN) == 0.0


def test_kv_wildcard_perfect_answer_scores_one():
    assert key_value_wildcard_match(REFERENCE_PLAIN, REFERENCE_LABELED) == 1.0


def test_kv_wildcard_accepts_renamed_wildcard_field():
    renamed = REFERENCE_PLAIN.replace("name: web-svc", "name: anything-else")
    assert key_value_wildcard_match(renamed, REFERENCE_LABELED) == 1.0
    # ...but the exact kv match rejects it.
    assert key_value_exact_match(renamed, REFERENCE_PLAIN) == 0.0


def test_kv_wildcard_penalises_wrong_value():
    wrong = REFERENCE_PLAIN.replace("app: web", "app: other")
    score = key_value_wildcard_match(wrong, REFERENCE_LABELED)
    assert 0.0 < score < 1.0


def test_kv_wildcard_penalises_missing_section():
    missing = REFERENCE_PLAIN.replace("  type: LoadBalancer\n", "")
    assert key_value_wildcard_match(missing, REFERENCE_LABELED) < 1.0


def test_kv_wildcard_penalises_extra_fields():
    extra = REFERENCE_PLAIN + "  externalTrafficPolicy: Local\n  sessionAffinity: None\n"
    score = key_value_wildcard_match(extra, REFERENCE_LABELED)
    assert 0.0 < score < 1.0


def test_kv_wildcard_zero_for_garbage():
    assert key_value_wildcard_match("not yaml at all {", REFERENCE_LABELED) == 0.0


def test_kv_wildcard_conditional_label():
    labeled = "spec:\n  image: ubuntu:22.04  # v in ['20.04', '22.04']\n"
    assert key_value_wildcard_match("spec:\n  image: ubuntu:20.04\n", labeled) == 1.0
    assert key_value_wildcard_match("spec:\n  image: debian:12\n", labeled) == 0.0


def test_kv_wildcard_multi_document_alignment():
    reference = "kind: Service\nmetadata:\n  name: a\n---\nkind: Deployment\nmetadata:\n  name: b\n"
    answer = "kind: Service\nmetadata:\n  name: a\n---\nkind: Deployment\nmetadata:\n  name: b\n"
    assert key_value_wildcard_match(answer, reference) == 1.0
