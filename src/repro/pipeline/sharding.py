"""Sharded evaluation: split a run across sub-pipelines and stream them.

A full benchmark run is wall-clock-bound in two different places: the
generate stage waits on (rate-limited) model endpoints, the score stage
burns CPU on metrics and in-process unit tests.  Running them strictly
stage-by-stage leaves one resource idle while the other works.  This
module removes the barrier:

* :class:`ShardPlan` splits a request list into ``N`` contiguous,
  balanced shards.  Each shard is evaluated by its own sub-pipeline with
  its own :class:`~repro.pipeline.checkpoint.PipelineCheckpoint`, so
  shards resume independently and could even run on separate machines.
* :class:`ShardedEvaluationPipeline` is the streaming scheduler: a
  producer thread drives the generation-side stages (prompt → generate →
  extract) shard by shard while the consuming thread scores — generation
  of shard *k+1* overlaps scoring of shard *k* instead of the full-barrier
  stage-by-stage pass.  Pair an async generation backend with a
  process-pool scoring backend and both axes saturate at once.
* :func:`merge_evaluations` recombines per-shard
  :class:`~repro.pipeline.records.ModelEvaluation`s into the evaluation an
  unsharded run would have produced, bit-identically: the split is
  contiguous and every metric is a pure function, so shard count can
  never change a ScoreCard.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TypeVar

from repro.llm.interface import GenerationRequest, Model
from repro.pipeline.checkpoint import PipelineCheckpoint, shard_checkpoint_path
from repro.pipeline.executors import Executor, close_executor, resolve_executor
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE, EvaluationPipeline, PreparedBatch
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.scoring.compiled import ReferenceStore

__all__ = ["ShardPlan", "ShardedEvaluationPipeline", "merge_evaluations"]

T = TypeVar("T")

#: Producer→consumer queue sentinel marking a clean end of the stream.
_DONE = object()


class _ProducerFailure:
    """An exception captured on the producer thread, re-raised on the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous, balanced split of ``total`` work units into shards.

    Contiguity is the property that makes merging trivial *and* exact:
    concatenating per-shard results in shard order reproduces the original
    request order, so a sharded run streams records in exactly the same
    sequence as an unsharded one.
    """

    total: int
    num_shards: int

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("total must be >= 0")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")

    @classmethod
    def for_size(cls, total: int, num_shards: int) -> "ShardPlan":
        """A plan over ``total`` units, clamping away empty shards."""

        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        return cls(total=total, num_shards=max(1, min(num_shards, total)))

    @property
    def sizes(self) -> tuple[int, ...]:
        """Per-shard sizes; they differ by at most one unit."""

        base, extra = divmod(self.total, self.num_shards)
        return tuple(base + (1 if index < extra else 0) for index in range(self.num_shards))

    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``(start, stop)`` index ranges of every shard."""

        out: list[tuple[int, int]] = []
        start = 0
        for size in self.sizes:
            out.append((start, start + size))
            start += size
        return tuple(out)

    def shard_of(self, index: int) -> int:
        """Which shard owns global work-unit ``index``."""

        if not 0 <= index < self.total:
            raise IndexError(f"index {index} out of range for {self.total} units")
        for shard, (start, stop) in enumerate(self.bounds()):
            if start <= index < stop:
                return shard
        raise AssertionError("unreachable")  # pragma: no cover

    def split(self, items: Sequence[T]) -> list[list[T]]:
        """Slice ``items`` into per-shard lists."""

        if len(items) != self.total:
            raise ValueError(f"expected {self.total} items, got {len(items)}")
        return [list(items[start:stop]) for start, stop in self.bounds()]


class ShardedEvaluationPipeline:
    """Evaluate one model's requests as ``N`` overlapped sub-pipelines.

    Parameters mirror :class:`~repro.pipeline.pipeline.EvaluationPipeline`
    with three additions:

    shards:
        Number of sub-pipelines; each gets its own checkpoint file
        (``<base>.shard-ii-of-nn``) derived from the ``checkpoint`` base
        path.
    generate_executor:
        Optional separate backend for the generate stage (typically
        ``"async"`` so remote-endpoint latencies overlap) while
        ``executor`` backs scoring (typically ``"process"`` for CPU-bound
        metric and unit-test work).
    prefetch_batches:
        How many prepared batches the generation thread may run ahead of
        scoring; bounds memory while keeping the overlap saturated.

    The streamed records — and therefore the merged
    :class:`~repro.pipeline.records.ModelEvaluation` — are bit-identical
    to an unsharded serial run over the same requests.
    """

    def __init__(
        self,
        model: Model,
        *,
        shards: int,
        executor: str | Executor = "serial",
        generate_executor: str | Executor | None = None,
        max_workers: int = 1,
        rate_limit: float | None = None,
        lease_seconds: float | None = None,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        checkpoint: str | os.PathLike[str] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        prefetch_batches: int = 2,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")
        if isinstance(checkpoint, PipelineCheckpoint):
            raise TypeError(
                "sharded runs derive one checkpoint file per shard; pass the base "
                "path (str or PathLike), not a PipelineCheckpoint instance"
            )
        self.model = model
        self.shards = shards
        self.max_workers = max_workers
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests
        self.checkpoint_base = checkpoint
        self.batch_size = batch_size
        self.prefetch_batches = prefetch_batches
        # Executors are shared across every sub-pipeline so pools (threads,
        # processes, event-loop rate limiter) are built once per run, and
        # owned by this scheduler when resolved from spec strings.
        self._owns_executor = isinstance(executor, str)
        self._owns_generate_executor = isinstance(generate_executor, str)
        self.executor = resolve_executor(executor, max_workers, rate_limit, lease_seconds)
        self.generate_executor = (
            resolve_executor(generate_executor, max_workers, rate_limit, lease_seconds)
            if generate_executor is not None
            else None
        )
        self._pipelines: list[EvaluationPipeline] = []

    # ------------------------------------------------------------------
    # Sub-pipeline assembly
    # ------------------------------------------------------------------
    def shard_checkpoint(self, index: int, num_shards: int) -> PipelineCheckpoint | None:
        """The checkpoint of shard ``index``, or None when checkpointing is off."""

        if self.checkpoint_base is None:
            return None
        return PipelineCheckpoint(shard_checkpoint_path(self.checkpoint_base, index, num_shards))

    def _build_pipelines(self, plan: ShardPlan) -> list[EvaluationPipeline]:
        pipelines = [
            EvaluationPipeline(
                self.model,
                executor=self.executor,
                generate_executor=self.generate_executor,
                max_workers=self.max_workers,
                store=self.store,
                run_unit_tests=self.run_unit_tests,
                checkpoint=self.shard_checkpoint(index, plan.num_shards),
                batch_size=self.batch_size,
            )
            for index in range(plan.num_shards)
        ]
        self._pipelines = pipelines
        return pipelines

    # ------------------------------------------------------------------
    # The streaming shard scheduler
    # ------------------------------------------------------------------
    def run_iter(self, requests: Iterable[GenerationRequest]) -> Iterator[EvaluationRecord]:
        """Stream finished records in request order, overlapping shards.

        A producer thread runs the generation-side half of every batch
        (shard by shard, at most ``prefetch_batches`` ahead); this thread
        scores and yields.  While shard *k*'s responses are being scored
        here, shard *k+1*'s are already being generated over there — the
        overlap that removes the full-barrier stage-by-stage pass.
        """

        request_list = list(requests)
        plan = ShardPlan.for_size(len(request_list), self.shards)
        shard_requests = plan.split(request_list)
        pipelines = self._build_pipelines(plan)

        handoff: queue_module.Queue = queue_module.Queue(maxsize=self.prefetch_batches)
        stop = threading.Event()

        def _put(entry: object) -> bool:
            while not stop.is_set():
                try:
                    handoff.put(entry, timeout=0.05)
                    return True
                except queue_module.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for shard_index, pipeline in enumerate(pipelines):
                    pending = shard_requests[shard_index]
                    for start in range(0, len(pending), self.batch_size):
                        batch = pending[start : start + self.batch_size]
                        prepared = pipeline.prepare_batch(batch)
                        if not _put((shard_index, prepared)):
                            return
            except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                _put(_ProducerFailure(exc))
            else:
                _put(_DONE)

        producer = threading.Thread(target=produce, name="shard-generator", daemon=True)
        producer.start()
        try:
            while True:
                entry = handoff.get()
                if entry is _DONE:
                    break
                if isinstance(entry, _ProducerFailure):
                    raise entry.error
                shard_index, prepared = entry
                yield from pipelines[shard_index].finish_batch(prepared)
        finally:
            # Reached on completion, on error, and when the consumer
            # abandons the stream (the resumable-interrupt case): unblock
            # and retire the producer before handing control back.
            stop.set()
            while True:
                try:
                    handoff.get_nowait()
                except queue_module.Empty:
                    break
            producer.join(timeout=30.0)

    def run(self, requests: Iterable[GenerationRequest]) -> ModelEvaluation:
        """Evaluate every request and merge the shards' records."""

        records = list(self.run_iter(requests))
        return ModelEvaluation(model_name=self.model.name, records=records)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the sub-pipelines' query pools and any owned executors."""

        for pipeline in self._pipelines:
            pipeline.query.close()
        if self._owns_executor:
            close_executor(self.executor)
        if self._owns_generate_executor and self.generate_executor is not None:
            close_executor(self.generate_executor)

    def __enter__(self) -> "ShardedEvaluationPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def merge_evaluations(evaluations: Sequence[ModelEvaluation]) -> ModelEvaluation:
    """Recombine per-shard evaluations of one model, in shard order.

    Because a :class:`ShardPlan` split is contiguous, concatenating the
    shards' records reproduces the unsharded record order — and therefore
    an unsharded run's :class:`~repro.pipeline.records.ModelEvaluation` —
    bit-identically.  Use this when shards were evaluated independently
    (separate processes or machines) rather than through
    :class:`ShardedEvaluationPipeline`.
    """

    if not evaluations:
        raise ValueError("no evaluations to merge")
    names = {evaluation.model_name for evaluation in evaluations}
    if len(names) > 1:
        raise ValueError(f"cannot merge evaluations of different models: {sorted(names)}")
    records: list[EvaluationRecord] = []
    for evaluation in evaluations:
        records.extend(evaluation.records)
    return ModelEvaluation(model_name=evaluations[0].model_name, records=records)
