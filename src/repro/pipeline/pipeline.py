"""The staged evaluation pipeline.

:class:`EvaluationPipeline` connects the typed stages of
:mod:`repro.pipeline.stages` and streams per-record results incrementally:
requests are processed in order, in batches, and every finished
:class:`~repro.pipeline.records.EvaluationRecord` is yielded (and
checkpointed) as soon as its batch clears the last stage.  A run that is
interrupted — or deliberately stopped after consuming part of the stream —
resumes from its :class:`~repro.pipeline.checkpoint.PipelineCheckpoint`
without re-querying the model or re-running unit tests for anything
already recorded.

``CloudEvalBenchmark.evaluate_model`` is a thin wrapper over this class;
using the pipeline directly buys streaming, checkpoint/resume and executor
selection without changing a single score.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.llm.interface import GenerationRequest, Model, QueryModule
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.executors import Executor, resolve_executor
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.stages import AggregateStage, Stage, StageContext, WorkItem, default_stages
from repro.scoring.compiled import ReferenceStore

__all__ = ["EvaluationPipeline"]

#: Records are streamed out (and checkpointed) in batches of this size.
DEFAULT_BATCH_SIZE = 32


class EvaluationPipeline:
    """Evaluate one model's requests through the staged pipeline.

    Parameters
    ----------
    model:
        The model under evaluation (anything implementing the
        :class:`~repro.llm.interface.Model` protocol).
    stages:
        The per-item stage chain; defaults to the paper's
        prompt → generate → extract → score sequence.
    executor:
        Backend for parallelisable stage work: ``"serial"``, ``"thread"``,
        ``"cluster"`` or any :class:`~repro.pipeline.executors.Executor`.
    max_workers:
        Worker count handed to the thread/cluster executor and to the
        query module's request fan-out.
    store:
        Shared :class:`~repro.scoring.compiled.ReferenceStore`; benchmarks
        pass one store so references compile once across models.
    run_unit_tests:
        Forwarded to the score stage.
    checkpoint:
        Optional :class:`PipelineCheckpoint` enabling resume; pass the
        same checkpoint (or path) again to continue a partial run.
    batch_size:
        Streaming granularity of :meth:`run_iter` — smaller batches
        checkpoint more often, larger ones amortise stage overhead.
    """

    def __init__(
        self,
        model: Model,
        *,
        stages: Sequence[Stage] | None = None,
        executor: str | Executor = "serial",
        max_workers: int = 1,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        checkpoint: PipelineCheckpoint | str | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.query = QueryModule(model, max_workers=max(1, max_workers))
        self.stages: list[Stage] = (
            list(stages)
            if stages is not None
            else default_stages(self.query, store=store, run_unit_tests=run_unit_tests)
        )
        self.aggregate = AggregateStage()
        self.context = StageContext(executor=resolve_executor(executor, max_workers))
        self.checkpoint = (
            PipelineCheckpoint(checkpoint) if isinstance(checkpoint, str) else checkpoint
        )
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    # Streaming evaluation
    # ------------------------------------------------------------------
    def run_iter(self, requests: Iterable[GenerationRequest]) -> Iterator[EvaluationRecord]:
        """Stream finished records in request order, batch by batch.

        Requests whose ``(model, problem, shots, sample)`` identity is
        already in the checkpoint are served from it without touching the
        model or the scorer; everything else flows through the stages and
        is checkpointed the moment its record exists.
        """

        batch: list[GenerationRequest] = []
        for request in requests:
            batch.append(request)
            if len(batch) >= self.batch_size:
                yield from self._run_batch(batch)
                batch = []
        if batch:
            yield from self._run_batch(batch)

    def _run_batch(self, requests: list[GenerationRequest]) -> Iterator[EvaluationRecord]:
        cached: dict[int, EvaluationRecord] = {}
        todo: list[tuple[int, GenerationRequest]] = []
        for index, request in enumerate(requests):
            record = self._cached_record(request)
            if record is not None:
                cached[index] = record
            else:
                todo.append((index, request))

        fresh: dict[int, EvaluationRecord] = {}
        if todo:
            items = [WorkItem(request=request) for _, request in todo]
            for stage in self.stages:
                items = stage.process(items, self.context)
            for (index, _), item in zip(todo, items):
                fresh[index] = item.to_record()

        # Checkpoint the whole batch before yielding anything: the work is
        # done, and it must survive even when the consumer abandons the
        # stream mid-batch.  Failed generations are NOT checkpointed — a
        # captured endpoint error is transient, and a resume must retry it
        # rather than serve the zero-score record forever.
        if self.checkpoint is not None:
            for record in fresh.values():
                if not record.error:
                    self.checkpoint.put(record)
        for index in range(len(requests)):
            yield cached[index] if index in cached else fresh[index]

    def _cached_record(self, request: GenerationRequest) -> EvaluationRecord | None:
        if self.checkpoint is None:
            return None
        key = (self.model.name, request.problem.problem_id, request.shots, request.sample_index)
        return self.checkpoint.get(key)

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def run(self, requests: Iterable[GenerationRequest]) -> ModelEvaluation:
        """Evaluate every request and aggregate into a :class:`ModelEvaluation`."""

        records = list(self.run_iter(requests))
        return self.aggregate.finalize(self.model.name, records)
