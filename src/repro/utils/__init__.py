"""Shared utilities: deterministic RNG, text helpers and small IO helpers."""

from repro.utils.rng import DeterministicRNG, stable_hash
from repro.utils.text import count_tokens, count_words, normalize_whitespace

__all__ = [
    "DeterministicRNG",
    "count_tokens",
    "count_words",
    "normalize_whitespace",
    "stable_hash",
]
