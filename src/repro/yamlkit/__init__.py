"""YAML handling utilities: parsing, reference labels, normalization, diffs.

The CloudEval-YAML dataset annotates reference YAML files with three kinds
of match labels expressed as trailing comments:

* ``# *`` — wildcard match: any value is acceptable at this position,
* ``# v in ['a', 'b']`` — conditional (set) match: the value must be one of
  the listed alternatives,
* no label — exact match (the default).

:mod:`repro.yamlkit.labels` parses those annotations into a
:class:`~repro.yamlkit.labels.LabeledNode` tree that the YAML-aware scorer
consumes.  :mod:`repro.yamlkit.parsing` wraps ``yaml.safe_load`` with
multi-document support and helpful errors, and :mod:`repro.yamlkit.diffing`
implements the line-level edit-distance used by the text-level scorer.
"""

from repro.yamlkit.diffing import line_edit_distance, scaled_edit_similarity
from repro.yamlkit.labels import LabeledNode, MatchKind, parse_labeled_yaml, strip_labels
from repro.yamlkit.normalize import canonical_dump, normalize_document
from repro.yamlkit.parsing import (
    YamlParseError,
    is_valid_yaml,
    load_all_documents,
    load_document,
)

__all__ = [
    "LabeledNode",
    "MatchKind",
    "YamlParseError",
    "canonical_dump",
    "is_valid_yaml",
    "line_edit_distance",
    "load_all_documents",
    "load_document",
    "normalize_document",
    "parse_labeled_yaml",
    "scaled_edit_similarity",
    "strip_labels",
]
