"""The distributed fleet: wire protocol, worker death, bit-identity.

Three layers under test:

* the frame protocol and :class:`StoreServer` command surface — including
  a torn half-frame on disconnect, which must drop only that connection;
* the :class:`FleetExecutor` map contract — ordered results, error
  propagation, duplicate-execution safety;
* the end-to-end invariant: a fleet evaluation with a worker SIGKILLed
  mid-batch re-enqueues its job exactly once and still produces records
  bit-identical to a serial run.
"""

from __future__ import annotations

import math
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.fleet import (
    CLAIMS_KEY,
    FleetExecutor,
    FrameError,
    RemoteStore,
    StoreCommandError,
    StoreServer,
    recv_frame,
    send_frame,
)
from repro.evalcluster.kvstore import RedisLikeStore
from repro.evalcluster.master import Master
from repro.utils.faults import FaultPlan, FaultSpec

MODEL = "gpt-3.5"

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")



@pytest.fixture()
def server():
    with StoreServer() as served:
        served.start()
        yield served


@pytest.fixture()
def client(server):
    store = RemoteStore(server.address, reconnect_attempts=2, reconnect_delay=0.05)
    yield store
    store.close()


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_every_store_command_round_trips(self, client):
        assert client.ping() == "pong"
        client.set("s", {"nested": [1, 2]})
        assert client.get("s") == {"nested": [1, 2]}
        assert client.get("absent", "fallback") == "fallback"
        assert client.incr("n") == 1
        assert client.incr("n", 5) == 6
        client.hset("h", "a", 1)
        assert client.hsetnx("h", "a", 99) is False
        assert client.hsetnx("h", "b", 2) is True
        assert client.hget("h", "a") == 1
        assert client.hgetall("h") == {"a": 1, "b": 2}
        assert client.hlen("h") == 2
        assert client.hdel("h", "a") is True
        assert client.hdel("h", "a") is False
        assert client.rpush("l", "x", "y", "z") == 3
        assert client.llen("l") == 3
        assert client.lrange("l") == ["x", "y", "z"]
        assert client.lpop("l") == "x"
        client.delete("l")
        assert client.llen("l") == 0
        assert "s" in client.keys() and "h" in client.keys()

    def test_blpop_waits_for_a_push(self, server, client):
        producer = RemoteStore(server.address)
        try:
            start = time.monotonic()
            assert client.blpop("queue", 0.2) is None  # times out empty
            assert time.monotonic() - start >= 0.15
            producer.rpush("queue", "item")
            assert client.blpop("queue", 2.0) == "item"
        finally:
            producer.close()

    def test_claim_pops_and_registers_atomically(self, client):
        client.rpush("q", "job-1")
        assert client.claim("q", CLAIMS_KEY, "w0", 1.0) == "job-1"
        worker, sequence = client.hgetall(CLAIMS_KEY)["job-1"]
        assert worker == "w0"
        assert sequence >= 1
        # Re-claims get a fresh sequence number, so a stale claim row is
        # distinguishable from the re-claim of a re-enqueued job.
        client.rpush("q", "job-1")
        _, second_sequence = (
            client.claim("q", CLAIMS_KEY, "w1", 1.0),
            client.hgetall(CLAIMS_KEY)["job-1"][1],
        )
        assert second_sequence > sequence
        assert client.claim("q", CLAIMS_KEY, "w2", 0.1) is None  # drained

    def test_server_error_is_relayed_not_fatal(self, client):
        with pytest.raises(StoreCommandError):
            client.call("no-such-command")
        assert client.ping() == "pong"  # connection still healthy

    def test_torn_half_frame_drops_only_that_connection(self, server, client):
        """A peer that dies mid-frame must not take the server down."""

        payload = pickle.dumps(("set", "torn", "never-arrives"))
        raw = socket.create_connection(server.address)
        raw.sendall(struct.pack(">I", len(payload)) + payload[: len(payload) // 2])
        raw.close()  # half a frame, then gone
        # The server survives and keeps serving other connections.
        assert client.ping() == "pong"
        assert client.get("torn") is None  # the torn command never executed

    def test_recv_frame_raises_on_mid_frame_eof(self):
        left, right = socket.socketpair()
        try:
            payload = pickle.dumps("data")
            left.sendall(struct.pack(">I", len(payload)) + payload[:2])
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            right.close()

    def test_recv_frame_mid_length_prefix_reports_bytes_read(self):
        """A peer that dies inside the 4-byte length prefix is a torn
        frame too — the error must say how far the prefix got, not
        masquerade as a clean EOF or a short pickle."""

        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 64)[:2])  # half a length prefix
            left.close()
            with pytest.raises(FrameError, match=r"length-prefix \(2/4 bytes\)"):
                recv_frame(right)
        finally:
            right.close()

    def test_claim_many_pops_a_batch_atomically(self, client):
        client.rpush("q", "job-1", "job-2", "job-3", "job-4", "job-5")
        claimed = client.claim_many("q", CLAIMS_KEY, "w0", 3, 1.0)
        assert claimed == ["job-1", "job-2", "job-3"]
        claims = client.hgetall(CLAIMS_KEY)
        sequences = [claims[job_id][1] for job_id in claimed]
        assert all(claims[job_id][0] == "w0" for job_id in claimed)
        # Every claim in the batch gets its own fresh sequence number.
        assert len(set(sequences)) == 3
        # A partial batch now beats a full batch later: the two leftover
        # jobs come back immediately even though limit is 3 again...
        assert client.claim_many("q", CLAIMS_KEY, "w1", 3, 1.0) == ["job-4", "job-5"]
        # ...and a drained queue times out to an empty batch, not None.
        assert client.claim_many("q", CLAIMS_KEY, "w2", 3, 0.1) == []

    def test_report_many_writes_rows_and_completion_events(self, client):
        reports = [
            ("job-1", {"worker_id": "w0", "passed": True}),
            ("job-2", {"worker_id": "w0", "passed": False}),
        ]
        assert client.report_many("results", "done", reports) == 2
        assert client.hgetall("results") == dict(reports)
        assert client.lrange("done") == ["job-1", "job-2"]
        # Rows are first-write-wins like single reports: a retried batch
        # writes zero rows but still pushes its completion events.
        retry = [("job-1", {"worker_id": "w9", "passed": False})]
        assert client.report_many("results", "done", retry) == 0
        assert client.hget("results", "job-1") == {"worker_id": "w0", "passed": True}

    def test_rate_acquire_debits_one_shared_bucket(self, server):
        """Two connections drain a single server-side token balance."""

        first = RemoteStore(server.address)
        second = RemoteStore(server.address)
        try:
            waits = [
                store.rate_acquire("pace", 10.0, burst=2)
                for store in (first, second, first, second)
            ]
        finally:
            first.close()
            second.close()
        # Burst covers the first two grants; after that every grant waits
        # one refill interval longer than the last — proof the two
        # connections debit the same bucket, not one each.
        assert waits[0] == 0.0 and waits[1] == 0.0
        assert waits[2] == pytest.approx(0.1, abs=0.05)
        assert waits[3] == pytest.approx(0.2, abs=0.05)
        # First-config-wins: later parameters cannot reset the balance.
        third = RemoteStore(server.address)
        try:
            assert third.rate_acquire("pace", 1_000_000.0, burst=64) > 0.0
        finally:
            third.close()

    def test_reconnect_while_parked_in_blpop(self):
        """A store *crash* under a parked ``blpop`` is survivable: the
        client's retry loop re-dials the restarted server and re-issues
        the pop, so the next push is delivered.

        A graceful shutdown would answer the parked pop with ``None``
        before closing, so the crash must be a SIGKILL of a real store
        process — the connection dies without a reply.
        """

        def spawn_store(port: int) -> subprocess.Popen:
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.evalcluster.fleet",
                    "store",
                    "--port",
                    str(port),
                ],
                env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
                stdout=subprocess.PIPE,
                text=True,
            )
            assert "serving" in process.stdout.readline()
            return process

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        first = spawn_store(port)
        client = RemoteStore(
            ("127.0.0.1", port), reconnect_attempts=20, reconnect_delay=0.05
        )
        second = None
        try:
            parked: list[object] = []
            waiter = threading.Thread(
                target=lambda: parked.append(client.blpop("queue", 30.0)), daemon=True
            )
            waiter.start()
            time.sleep(0.3)  # let the blpop park server-side
            first.kill()  # crash: the parked call dies without a reply
            first.wait()
            second = spawn_store(port)
            producer = RemoteStore(("127.0.0.1", port))
            try:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and not parked:
                    producer.rpush("queue", "after-restart")
                    time.sleep(0.1)
            finally:
                producer.close()
            waiter.join(timeout=5.0)
            assert not waiter.is_alive()
            assert parked == ["after-restart"]
        finally:
            client.close()
            for process in (first, second):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait()

    def test_send_recv_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"k": [1, "two", 3.0]})
            assert recv_frame(right) == {"k": [1, "two", 3.0]}
        finally:
            left.close()
            right.close()

    def test_remote_store_drives_an_unmodified_master(self, client):
        """The Master's queue semantics hold verbatim over the wire."""

        from repro.evalcluster.master import EvaluationJob

        master = Master(store=client, lease_seconds=None)
        master.submit([EvaluationJob(job_id=f"j{i}", problem_id=f"p{i}") for i in range(3)])
        assert master.pending() == 3
        job = master.claim("w0")
        master.report(job.job_id, worker_id="w0", finished_at=1.0, passed=True, result=42)
        assert master.completed() == 1
        assert master.result_of(job.job_id) == 42


# ---------------------------------------------------------------------------
# FleetExecutor map contract
# ---------------------------------------------------------------------------


class TestFleetExecutor:
    def test_map_returns_ordered_results(self):
        with FleetExecutor(num_workers=2, lease_seconds=10.0) as executor:
            values = list(range(30))
            assert executor.map(math.factorial, values) == [math.factorial(v) for v in values]

    def test_consecutive_maps_reuse_the_fleet(self):
        with FleetExecutor(num_workers=2, lease_seconds=10.0) as executor:
            first = executor.map(math.factorial, [3, 4])
            second = executor.map(math.factorial, [5, 6])
            assert (first, second) == ([6, 24], [120, 720])
            stats = executor.stats()
            assert stats.completed == 4
            assert stats.pending == 0

    def test_chunked_map_amortises_jobs(self):
        # 64 tasks on 2 workers auto-chunk to 8 tasks/job: the store
        # round-trips are paid 8 times, not 64, and order still holds.
        with FleetExecutor(num_workers=2, lease_seconds=10.0) as executor:
            values = list(range(64))
            assert executor.map(math.factorial, values) == [math.factorial(v) for v in values]
            assert executor.stats().completed == 8

    def test_rejects_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            FleetExecutor(num_workers=1, chunk_size=0)

    def test_task_exception_propagates(self):
        with FleetExecutor(num_workers=1, lease_seconds=10.0) as executor:
            with pytest.raises(RuntimeError, match="fleet job .* failed"):
                executor.map(math.sqrt, [4.0, -1.0])

    def test_requires_exactly_one_deployment_shape(self):
        with pytest.raises(ValueError):
            FleetExecutor()
        with pytest.raises(ValueError):
            FleetExecutor(num_workers=2, address=("127.0.0.1", 1))

    def test_construction_is_lazy(self):
        # Parametrised suites construct every executor name; a fleet that
        # never maps must not spawn processes or bind sockets.
        executor = FleetExecutor(num_workers=4, lease_seconds=10.0)
        assert executor.stats() is None
        executor.close()

    def test_attach_to_external_store(self, server):
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.evalcluster.fleet",
                "worker",
                "--connect",
                f"{server.host}:{server.port}",
                "--claim-timeout",
                "0.1",
            ],
            env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
        )
        try:
            with FleetExecutor(address=server.address, lease_seconds=10.0) as executor:
                assert executor.map(math.factorial, [5, 7]) == [120, 5040]
        finally:
            worker.terminate()
            worker.wait(timeout=10)


# ---------------------------------------------------------------------------
# Worker death: exactly-once re-enqueue, bit-identical results
# ---------------------------------------------------------------------------


def _spawn_worker(address, *, worker_id, die_after_claims=None, heartbeat="0.25"):
    command = [
        sys.executable,
        "-m",
        "repro.evalcluster.fleet",
        "worker",
        "--connect",
        f"{address[0]}:{address[1]}",
        "--worker-id",
        worker_id,
        "--heartbeat",
        heartbeat,
        "--claim-timeout",
        "0.1",
    ]
    if die_after_claims is not None:
        # The old ad-hoc --die-after-claims hook, expressed as a fault plan:
        # SIGKILL on the Nth claim.
        plan = FaultPlan([FaultSpec(site="worker.claim", kind="kill", after=die_after_claims)])
        command += ["--fault-plan", plan.to_json()]
    return subprocess.Popen(command, env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"})


class TestWorkerDeath:
    def test_sigkilled_worker_batch_requeued_without_burning_second_chances(self, server):
        """One worker SIGKILLs itself right after a claim — the window
        between claim and report that leases exist for.  The reaper must
        re-enqueue the stranded claim batch, and because none of those
        jobs ever *executed* (zero strikes), none of them burns its
        once-only re-enqueue budget: the run finishes with every result
        correct and nothing a second expiry could abandon."""

        workers = [
            _spawn_worker(server.address, worker_id="healthy"),
            _spawn_worker(server.address, worker_id="doomed", die_after_claims=2),
        ]
        try:
            # chunk_size=1 pins one task per job so die_after_claims and the
            # completed-job count below stay exact.
            with FleetExecutor(
                address=server.address, lease_seconds=1.2, poll_seconds=0.05, chunk_size=1
            ) as executor:
                values = list(range(40))
                results = executor.map(math.factorial, values)
                assert results == [math.factorial(v) for v in values]
                stats = executor.stats()
            assert stats.requeued == 0, stats.describe()
            assert stats.abandoned == 0
            assert stats.completed == len(values)
            assert workers[1].wait(timeout=10) == -9  # it really was SIGKILL
        finally:
            for worker in workers:
                worker.terminate()
                worker.wait(timeout=10)

    def test_fleet_evaluation_with_mid_run_kill_is_bit_identical_to_serial(
        self, small_dataset, server
    ):
        """The acceptance invariant: a real evaluation whose worker dies
        mid-batch, resumed via the lease reaper, produces records
        bit-identical to the serial backend."""

        problems = list(small_dataset)[:18]
        serial = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7)).evaluate_model(
            MODEL, problems=problems
        )

        workers = [
            _spawn_worker(server.address, worker_id="survivor"),
            _spawn_worker(server.address, worker_id="casualty", die_after_claims=3),
        ]
        executor = FleetExecutor(address=server.address, lease_seconds=1.2, poll_seconds=0.05)
        try:
            from repro.pipeline import EvaluationPipeline
            from repro.llm.registry import calibrate_models, get_model
            from repro.llm.interface import GenerationRequest
            from repro.scoring.compiled import ReferenceStore

            model = calibrate_models([get_model(MODEL, seed=7)], small_dataset)[0]
            pipeline = EvaluationPipeline(
                model, executor=executor, store=ReferenceStore(), batch_size=6
            )
            requests = [
                GenerationRequest(problem=problem, shots=0, sample_index=0)
                for problem in problems
            ]
            evaluation = pipeline.run(requests)
            stats = executor.stats()
        finally:
            executor.close()
            for worker in workers:
                worker.terminate()
                worker.wait(timeout=10)

        assert evaluation.records == serial.records
        # The kill really disrupted the run: the casualty died by SIGKILL
        # mid-map and its stranded claims were resumed (without burning
        # their once-only re-enqueue budget — they never executed).
        assert workers[1].poll() == -9, stats.describe()
        assert stats.abandoned == 0


# ---------------------------------------------------------------------------
# Stats surface
# ---------------------------------------------------------------------------


class TestStats:
    def test_stats_track_heartbeats_and_counts(self):
        with FleetExecutor(num_workers=2, lease_seconds=10.0) as executor:
            executor.map(math.factorial, list(range(8)))
            completed = 8
            stats = executor.stats()
            # On a loaded machine the first jobs can drain before the
            # second worker finishes booting; heartbeats are observed
            # during maps, so keep mapping until it has shown up.
            deadline = time.monotonic() + 30.0
            while len(stats.heartbeat_ages) < 2 and time.monotonic() < deadline:
                time.sleep(0.1)
                executor.map(math.factorial, [3])
                completed += 1
                stats = executor.stats()
        assert stats.completed == completed
        assert stats.pending == 0
        assert len(stats.heartbeat_ages) == 2
        assert all(age >= 0.0 for age in stats.heartbeat_ages.values())
        description = stats.describe()
        assert f"{completed} completed" in description
        assert "heartbeats:" in description

    def test_leaderboard_footer_shows_fleet_stats(self):
        from repro.core.benchmark import BenchmarkResult
        from repro.core.report import format_leaderboard
        from repro.evalcluster.master import MasterStats

        stats = MasterStats(
            pending=0,
            claimed=0,
            completed=24,
            requeued=1,
            abandoned=0,
            heartbeat_ages={"worker-0": 0.4},
        )
        rendered = format_leaderboard(BenchmarkResult(), fleet_stats=stats)
        assert "fleet: 0 pending" in rendered
        assert "1 re-enqueued" in rendered
        assert "worker-0 0.4s" in rendered

    def test_worker_throughput_rides_heartbeats_into_stats(self):
        """An executed batch's EWMA throughput reaches MasterStats (and
        the leaderboard footer) on the worker's next heartbeat."""

        from repro.core.benchmark import BenchmarkResult
        from repro.core.report import format_leaderboard

        with FleetExecutor(
            num_workers=1, lease_seconds=10.0, heartbeat_seconds=0.1
        ) as executor:
            # math.frexp returns a (mantissa, exponent) 2-tuple — the
            # same shape as a timed score envelope, and importable from
            # the worker subprocess (the test module itself is not).
            executor.map(math.frexp, list(range(1, 9)))
            # Throughput publishes on the beat *after* an execution, so
            # keep mapping until the observation lands.
            deadline = time.monotonic() + 30.0
            stats = executor.stats()
            while not stats.worker_throughput and time.monotonic() < deadline:
                time.sleep(0.1)
                executor.map(math.frexp, [3])
                stats = executor.stats()
        assert stats.worker_throughput, "no throughput arrived on any heartbeat"
        rates = next(iter(stats.worker_throughput.values()))
        assert rates and all(rate > 0.0 for rate in rates.values())
        # The observed rate renders next to the heartbeat age, wherever
        # the stats line is shown (describe() and the leaderboard footer).
        assert "rec/s" in stats.describe()
        assert "rec/s" in format_leaderboard(BenchmarkResult(), fleet_stats=stats)

    def test_worker_relative_speeds_normalise_observed_throughput(self):
        from repro.evalcluster.master import MasterStats

        with FleetExecutor(num_workers=1, lease_seconds=10.0) as executor:
            executor.map(math.factorial, [1])
            executor._master.record_heartbeat("w-fast", throughput={"score_rps": 30.0})
            executor._master.record_heartbeat("w-slow", throughput={"score_rps": 10.0})
            speeds = executor.worker_relative_speeds()
        assert speeds == [1.5, 0.5]
        assert speeds[0] / speeds[1] == pytest.approx(3.0)
