"""The cost-model calibration loop: the persistent store, the blended
predictions, the prediction memo invalidation, and the timing capture
that feeds the whole thing."""

from __future__ import annotations

import json

import pytest

from repro.evalcluster.calibration import (
    CalibratedCostModel,
    CalibrationStore,
    resolve_calibration,
)
from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.pipeline import EvaluationPipeline, PipelineCheckpoint


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


# ---------------------------------------------------------------------------
# CalibrationStore
# ---------------------------------------------------------------------------

def test_ewma_fold():
    store = CalibrationStore(smoothing=0.5)
    store.observe("p", "original", 2.0)
    assert store.seconds_for("p") == 2.0
    store.observe("p", "original", 4.0)
    assert store.seconds_for("p") == pytest.approx(3.0)
    assert store.count_for("p") == 2
    assert store.version == 2
    assert store.seconds_for("unknown") is None
    assert store.count_for("unknown") == 0


def test_observe_batch_is_one_fold_per_observation():
    a, b = CalibrationStore(), CalibrationStore()
    a.observe_batch([("p", "original", 1.0), ("p", "original", 3.0), ("q", "original", 5.0)])
    b.observe("p", "original", 1.0)
    b.observe("p", "original", 3.0)
    b.observe("q", "original", 5.0)
    assert a.seconds_for("p") == b.seconds_for("p")
    assert a.seconds_for("q") == b.seconds_for("q")
    assert len(a) == 2


def test_negative_duration_rejected():
    with pytest.raises(ValueError, match="negative"):
        CalibrationStore().observe("p", "original", -0.1)
    with pytest.raises(ValueError, match="smoothing"):
        CalibrationStore(smoothing=0.0)


# ---------------------------------------------------------------------------
# Acceptance: store round-trip — write → reload → identical predictions
# ---------------------------------------------------------------------------

def test_store_roundtrip_reproduces_predictions(tmp_path, small_original_problems):
    path = tmp_path / "calibration.jsonl"
    problems = list(small_original_problems)[:8]
    written = CalibrationStore(path)
    for index, problem in enumerate(problems):
        for repeat in range(1 + index % 3):
            written.observe(problem.problem_id, problem.variant.value, 0.5 + 0.1 * index + repeat)

    reloaded = CalibrationStore(path)
    assert len(reloaded) == len(written)
    for problem in problems:
        assert reloaded.seconds_for(problem.problem_id) == written.seconds_for(problem.problem_id)
        assert reloaded.count_for(problem.problem_id) == written.count_for(problem.problem_id)

    # The calibrated models built on both stores predict identically.
    before = CalibratedCostModel(store=written)
    after = CalibratedCostModel(store=reloaded)
    for problem in problems:
        assert after.predict_problem_seconds(problem) == before.predict_problem_seconds(problem)
    assert after.predict_problems_seconds(problems) == before.predict_problems_seconds(problems)


def test_torn_final_line_is_dropped_on_load(tmp_path):
    path = tmp_path / "calibration.jsonl"
    store = CalibrationStore(path)
    store.observe("p", "original", 2.0)
    store.observe("q", "original", 3.0)
    content = path.read_text(encoding="utf-8")
    path.write_text(content + '{"problem_id": "r", "secon', encoding="utf-8")
    reloaded = CalibrationStore(path)
    assert len(reloaded) == 2
    assert reloaded.seconds_for("r") is None


def test_torn_tail_is_truncated_so_appends_never_glue(tmp_path):
    """Regression: kill → observe → reload.  Loading must truncate the
    torn fragment; otherwise the next append glues onto it and every
    later load silently loses all subsequent observations."""

    path = tmp_path / "calibration.jsonl"
    first = CalibrationStore(path)
    first.observe("p", "original", 2.0)
    first.observe("q", "original", 3.0)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 4])  # kill mid-append of "q"

    second = CalibrationStore(path)  # drops + truncates the torn line
    assert second.seconds_for("q") is None
    second.observe("q", "original", 5.0)
    second.observe("r", "original", 7.0)

    third = CalibrationStore(path)
    assert len(third) == 3
    assert third.seconds_for("p") == 2.0
    assert third.seconds_for("q") == 5.0
    assert third.seconds_for("r") == 7.0


def test_resolve_calibration():
    store = CalibrationStore()
    assert resolve_calibration(store) is store
    assert resolve_calibration(None) is None
    assert isinstance(resolve_calibration("some/path.jsonl"), CalibrationStore)
    with pytest.raises(TypeError, match="CalibrationStore"):
        resolve_calibration(42)


# ---------------------------------------------------------------------------
# CalibratedCostModel: the blend
# ---------------------------------------------------------------------------

def test_unobserved_problem_predicts_exactly_figure5(small_original_problems):
    problem = list(small_original_problems)[0]
    figure5 = CostModel()
    calibrated = CalibratedCostModel()
    assert calibrated.predict_problem_seconds(problem) == figure5.predict_problem_seconds(problem)
    assert calibrated.problem_pull_images(problem) == figure5.problem_pull_images(problem)
    assert calibrated.problem_charge_images(problem) == figure5.problem_charge_images(problem)


def test_predictions_converge_to_observed(small_original_problems):
    problem = list(small_original_problems)[0]
    model = CalibratedCostModel(prior_weight=1.0)
    figure5 = CostModel().predict_problem_seconds(problem)
    observed = 0.25
    previous = figure5
    for _ in range(8):
        model.store.observe(problem.problem_id, problem.variant.value, observed)
        prediction = model.predict_problem_seconds(problem)
        assert observed < prediction < previous  # slides monotonically toward observed
        previous = prediction
    # The geometric blend hands the scale over to the observations within
    # a few measurements even though the prior sits orders of magnitude up.
    assert prediction < observed * 2.0
    assert figure5 / prediction > 50.0


def test_geometric_blend_adapts_across_scales(small_original_problems):
    """One observation run must already move the *relative* structure: a
    problem measured 100x cheaper than its prior suggests must be priced
    well below its Figure 5 number (the cross-scale case a linear blend
    provably cannot handle)."""

    problem = list(small_original_problems)[0]
    model = CalibratedCostModel(prior_weight=1.0)
    figure5 = CostModel().predict_problem_seconds(problem)
    model.store.observe(problem.problem_id, problem.variant.value, figure5 / 100.0)
    blended = model.predict_problem_seconds(problem)
    assert blended == pytest.approx(figure5 / 10.0, rel=0.2)  # geometric mean


def test_zero_prior_weight_trusts_first_measurement(small_original_problems):
    problem = list(small_original_problems)[0]
    model = CalibratedCostModel(prior_weight=0.0)
    model.store.observe(problem.problem_id, problem.variant.value, 1.5)
    assert model.predict_problem_seconds(problem) == pytest.approx(1.5)
    # Observed problems charge no separate pulls — the measurement already
    # contains whatever transfer happened — but their images still count
    # as locally present.
    assert model.problem_charge_images(problem) == ()
    assert model.problem_pull_images(problem) == CostModel().problem_pull_images(problem)
    with pytest.raises(ValueError, match="prior_weight"):
        CalibratedCostModel(prior_weight=-1.0)


def test_observed_problems_stop_sharing_cache_slots(small_dataset):
    """An image-heavy problem whose duration was measured is priced as its
    blended seconds, independent of the warm-cache set."""

    figure5 = CostModel()
    pullers = [p for p in small_dataset if figure5.problem_pull_images(p)]
    problem = pullers[0]
    model = CalibratedCostModel(prior_weight=0.0)
    model.store.observe(problem.problem_id, problem.variant.value, 2.0)
    warm = model.predict_problem_seconds(
        problem, cached_images=CostModel().problem_pull_images(problem)
    )
    assert warm == pytest.approx(2.0)
    assert model.predict_problems_seconds([problem, problem]) == pytest.approx(4.0)


def test_observed_problems_still_warm_the_cache_for_unobserved_ones(small_dataset):
    """Regression: a partially calibrated corpus (run 1 killed halfway)
    must not lose the warm-cache discount — an unobserved problem whose
    image was already pulled by an observed problem upstream in the same
    shard is priced warm, exactly like the cold model prices it."""

    figure5 = CostModel()
    pullers = [p for p in small_dataset if figure5.problem_pull_images(p)]
    observed, unobserved = next(
        (a, b)
        for a in pullers
        for b in pullers
        if a.problem_id != b.problem_id
        and set(figure5.problem_pull_images(a)) & set(figure5.problem_pull_images(b))
    )
    model = CalibratedCostModel(prior_weight=0.0)
    model.store.observe(observed.problem_id, observed.variant.value, 0.5)
    pair = model.predict_problems_seconds([observed, unobserved])
    # The unobserved problem's shared image is warm: only its *extra*
    # images (if any) are charged on top of the cold-model discount price.
    discounted = figure5.predict_problem_seconds(
        unobserved, cached_images=figure5.problem_pull_images(observed)
    )
    assert pair == pytest.approx(0.5 + discounted)
    cold = figure5.predict_problem_seconds(unobserved)
    if set(figure5.problem_pull_images(unobserved)) <= set(figure5.problem_pull_images(observed)):
        assert discounted < cold  # the discount is real for shared-image pairs


# ---------------------------------------------------------------------------
# Prediction memos and their invalidation
# ---------------------------------------------------------------------------

def test_cost_model_memoises_per_problem(small_original_problems, monkeypatch):
    problem = list(small_original_problems)[0]
    model = CostModel()
    calls = []
    original = CostModel._compute_base_seconds

    def counting(self, p):
        calls.append(p.problem_id)
        return original(self, p)

    monkeypatch.setattr(CostModel, "_compute_base_seconds", counting)
    first = model.predict_base_seconds(problem)
    for _ in range(5):
        assert model.predict_base_seconds(problem) == first
    assert len(calls) == 1
    model.invalidate_predictions()
    model.predict_base_seconds(problem)
    assert len(calls) == 2


def test_new_measurement_invalidates_the_memo(small_original_problems):
    problem = list(small_original_problems)[0]
    model = CalibratedCostModel(prior_weight=1.0)
    cold = model.predict_base_seconds(problem)
    model.store.observe(problem.problem_id, problem.variant.value, 0.1)
    first = model.predict_base_seconds(problem)
    assert first != cold
    model.store.observe(problem.problem_id, problem.variant.value, 0.1)
    second = model.predict_base_seconds(problem)
    assert second < first  # more observations, more trust in 0.1s


# ---------------------------------------------------------------------------
# Timing capture feeding the loop
# ---------------------------------------------------------------------------

def test_pipeline_measures_durations_and_feeds_the_store(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:6]
    store = CalibrationStore(tmp_path / "calibration.jsonl")
    with EvaluationPipeline(get_model("gpt-4"), calibration=store) as pipeline:
        evaluation = pipeline.run(_requests(problems))
    for record in evaluation.records:
        assert record.generate_seconds > 0.0
        assert record.score_seconds > 0.0
        assert record.measured_seconds == record.generate_seconds + record.score_seconds
    assert len(store) == len(problems)
    for problem in problems:
        assert store.count_for(problem.problem_id) == 1
    # Persisted as one JSONL observation per record.
    lines = [json.loads(line) for line in (tmp_path / "calibration.jsonl").read_text().splitlines()]
    assert {line["problem_id"] for line in lines} == {p.problem_id for p in problems}


def test_timings_flow_through_checkpoints(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:4]
    path = tmp_path / "run.ckpt.jsonl"
    with EvaluationPipeline(get_model("gpt-4"), checkpoint=PipelineCheckpoint(path)) as first:
        truth = first.run(_requests(problems)).records
    reloaded = {record.key: record for record in PipelineCheckpoint(path)}
    for record in truth:
        stored = reloaded[record.key]
        assert stored.generate_seconds == record.generate_seconds
        assert stored.score_seconds == record.score_seconds
    # A resumed run serves the cached records without re-observing them.
    store = CalibrationStore()
    with EvaluationPipeline(
        get_model("gpt-4"), checkpoint=PipelineCheckpoint(path), calibration=store
    ) as resumed:
        resumed.run(_requests(problems))
    assert len(store) == 0


def test_timing_fields_do_not_affect_record_identity(small_original_problems):
    problems = list(small_original_problems)[:3]
    a = EvaluationPipeline(get_model("gpt-4")).run(_requests(problems)).records
    b = EvaluationPipeline(get_model("gpt-4")).run(_requests(problems)).records
    assert a == b  # equality ignores the (different) wall-clock measurements
    assert any(x.measured_seconds != y.measured_seconds for x, y in zip(a, b)) or True


# ---------------------------------------------------------------------------
# Per-(model, problem) scoping
# ---------------------------------------------------------------------------

def test_per_model_store_scopes_and_falls_back(tmp_path):
    store = CalibrationStore(tmp_path / "cal.jsonl", per_model=True)
    store.observe("p1", "original", 2.0, model="fast-endpoint")
    store.observe("p1", "original", 8.0, model="slow-endpoint")
    assert store.seconds_for("p1", "fast-endpoint") == 2.0
    assert store.seconds_for("p1", "slow-endpoint") == 8.0
    assert store.seconds_for("p1") == 5.0  # global EWMA over both
    # a model that never ran the problem prices from the global fold
    assert store.seconds_for("p1", "new-endpoint") == 5.0
    assert store.count_for("p1", "fast-endpoint") == 1
    assert store.count_for("p1") == 2


def test_per_model_store_roundtrip(tmp_path):
    path = tmp_path / "cal.jsonl"
    writer = CalibrationStore(path, per_model=True)
    writer.observe_batch(
        [("p1", "original", 2.0, "fast"), ("p1", "original", 8.0, "slow")]
    )
    reloaded = CalibrationStore(path, per_model=True)
    assert reloaded.seconds_for("p1", "fast") == 2.0
    assert reloaded.seconds_for("p1", "slow") == 8.0
    assert reloaded.version == writer.version


def test_single_key_files_load_unchanged_in_either_mode(tmp_path):
    path = tmp_path / "cal.jsonl"
    legacy = CalibrationStore(path)
    legacy.observe_batch([("p1", "original", 3.0), ("p2", "original", 4.0)])
    # no "model" field is ever written by a single-key store, even when the
    # observation carried one
    legacy.observe("p3", "original", 5.0, model="gpt-4")
    for line in path.read_text().splitlines():
        assert "model" not in json.loads(line)
    # both modes replay the file to the same global EWMAs
    assert CalibrationStore(path).seconds_for("p1") == 3.0
    scoped = CalibrationStore(path, per_model=True)
    assert scoped.seconds_for("p1") == 3.0
    assert scoped.seconds_for("p1", "gpt-4") == 3.0  # fallback, no scoped entry


def test_for_model_copies_see_per_endpoint_skew(small_original_problems, tmp_path):
    problem = list(small_original_problems)[0]
    store = CalibrationStore(tmp_path / "cal.jsonl", per_model=True)
    for _ in range(4):
        store.observe(problem.problem_id, problem.variant.value, 0.01, model="fast")
        store.observe(problem.problem_id, problem.variant.value, 10.0, model="slow")
    shared = CalibratedCostModel(store=store, prior_weight=0.0)
    fast = shared.for_model("fast")
    slow = shared.for_model("slow")
    assert fast.predict_base_seconds(problem) == pytest.approx(0.01)
    assert slow.predict_base_seconds(problem) == pytest.approx(10.0)
    # the unscoped model blends both endpoints' observations
    global_seconds = shared.predict_base_seconds(problem)
    assert 0.01 < global_seconds < 10.0
    # copies share the store: a fresh measurement re-predicts everywhere
    store.observe(problem.problem_id, problem.variant.value, 0.02, model="fast")
    assert fast.predict_base_seconds(problem) != pytest.approx(0.01)


def test_pipeline_feeds_model_names_into_per_model_store(tmp_path, small_original_problems):
    problems = list(small_original_problems)[:4]
    store = CalibrationStore(tmp_path / "cal.jsonl", per_model=True)
    with EvaluationPipeline(get_model("gpt-4"), calibration=store) as pipeline:
        pipeline.run(_requests(problems))
    for problem in problems:
        assert store.count_for(problem.problem_id, "gpt-4") == 1
    lines = [json.loads(line) for line in (tmp_path / "cal.jsonl").read_text().splitlines()]
    assert {line["model"] for line in lines} == {"gpt-4"}


def test_scheduler_prices_jobs_with_scoped_models(tmp_path, small_original_problems):
    from repro.pipeline.scheduler import ModelJob, MultiModelScheduler

    store = CalibrationStore(tmp_path / "cal.jsonl", per_model=True)
    jobs = [ModelJob(get_model("gpt-4")), ModelJob(get_model("gpt-3.5"))]
    scheduler = MultiModelScheduler(jobs, calibration=store)
    scoped = [scheduler._job_cost_model(job) for job in jobs]
    assert [model.model_name for model in scoped] == ["gpt-4", "gpt-3.5"]
    assert all(model.store is store for model in scoped)
    # a plain CostModel has no for_model and is used as-is
    plain = MultiModelScheduler(jobs, cost_model=CostModel())
    assert plain._job_cost_model(jobs[0]) is plain.cost_model
    scheduler.close()
    plain.close()
