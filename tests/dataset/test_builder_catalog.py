"""Tests for the corpus builder and the category generators."""

from __future__ import annotations

from collections import Counter

from repro.dataset.builder import build_dataset, build_original_problems
from repro.dataset.schema import Category, ORIGINAL_CATEGORY_COUNTS, Variant


def test_small_corpus_category_counts(small_original_problems):
    counts = Counter(p.category for p in small_original_problems)
    assert counts[Category.POD] == 8
    assert counts[Category.ENVOY] == 4


def test_full_corpus_matches_table2_counts(full_original_problems):
    counts = Counter(p.category for p in full_original_problems)
    for category, expected in ORIGINAL_CATEGORY_COUNTS.items():
        assert counts[category] == expected
    assert len(full_original_problems) == 337


def test_full_dataset_has_1011_problems(full_dataset):
    assert len(full_dataset) == 1011
    variants = Counter(p.variant for p in full_dataset)
    assert variants[Variant.ORIGINAL] == variants[Variant.SIMPLIFIED] == variants[Variant.TRANSLATED] == 337


def test_build_is_deterministic():
    a = build_original_problems(seed=42, category_counts={Category.POD: 5, Category.ISTIO: 3})
    b = build_original_problems(seed=42, category_counts={Category.POD: 5, Category.ISTIO: 3})
    assert [p.to_dict() for p in a] == [p.to_dict() for p in b]


def test_different_seed_changes_content():
    a = build_original_problems(seed=1, category_counts={Category.POD: 5})
    b = build_original_problems(seed=2, category_counts={Category.POD: 5})
    assert [p.question for p in a] != [p.question for p in b]


def test_problem_ids_are_unique_and_structured(small_dataset):
    ids = [p.problem_id for p in small_dataset]
    assert len(ids) == len(set(ids))
    assert all(p.problem_id == f"{p.base_id}-{p.variant.value}" for p in small_dataset)


def test_every_problem_has_reference_and_unit_test(small_original_problems):
    for problem in small_original_problems:
        assert problem.reference_yaml.strip()
        assert len(problem.unit_test.steps) >= 2
        assert problem.metadata.get("primary_kind")


def test_difficulty_within_unit_interval_and_envoy_hardest(small_original_problems):
    difficulties = [p.difficulty for p in small_original_problems]
    assert all(0.0 <= d <= 1.0 for d in difficulties)
    envoy = [p.difficulty for p in small_original_problems.by_category(Category.ENVOY)]
    kubernetes = [p.difficulty for p in small_original_problems.by_application("kubernetes")]
    assert min(envoy) > sum(kubernetes) / len(kubernetes)


def test_envoy_problems_use_envoy_target(small_original_problems):
    for problem in small_original_problems.by_category(Category.ENVOY):
        assert problem.unit_test.target == "envoy"
    for problem in small_original_problems.by_category(Category.DEPLOYMENT):
        assert problem.unit_test.target == "kubernetes"


def test_some_problems_carry_code_context(full_original_problems):
    with_context = [p for p in full_original_problems if p.has_code_context]
    without_context = [p for p in full_original_problems if not p.has_code_context]
    assert with_context and without_context


def test_build_dataset_without_augmentation(small_original_problems):
    dataset = build_dataset(category_counts={Category.POD: 3}, augment=False)
    assert all(p.variant is Variant.ORIGINAL for p in dataset)
