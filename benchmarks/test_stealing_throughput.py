"""Work stealing vs static round-robin, and calibrated re-planning.

Two guards on the dynamic half of the scheduler subsystem:

1. **Stealing beats the static schedule on a skewed leaderboard.**  One
   model sits behind a slow endpoint (200 ms/request) while the others
   are fast; the static round-robin must *release* batch k of every model
   before batch k+1 of any, so each slow batch stalls the stream — the
   prefetch window fills, the generation workers idle, and the scoring
   CPU drains dry while the slow endpoint grinds.  With stealing, ready
   batches release in readiness order and the idle scoring consumer claims
   batches itself, so the slow model's generation overlaps everyone's
   scoring end to end.  The guard is a same-machine, same-process speedup
   *ratio* (≥ 1.25x), so a slow runner cannot flake it — only a real loss
   of overlap can.

2. **Calibrated re-planning tightens *measured* shard balance.**  The
   Figure 5 cost model predicts simulated cluster seconds, which are
   dominated by image pulls that cost nothing on this machine — so the
   shards it cuts finish far apart in *measured* seconds.  A first run
   writes every record's measured duration into a
   :class:`~repro.evalcluster.calibration.CalibrationStore`; a second run
   planned with the :class:`~repro.evalcluster.calibration.CalibratedCostModel`
   must show a strictly smaller measured max−min shard completion spread.
   The store the run produces is kept on disk (``BENCH_calibration.jsonl``
   by default) so CI can upload it as an artifact.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import FAST_MODE, artifact_path, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.schema import Category
from repro.evalcluster.calibration import CalibratedCostModel, CalibrationStore
from repro.evalcluster.cost import CostModel
from repro.llm.registry import available_models, get_model
from repro.llm.remote import RemoteEndpointModel
from repro.pipeline import (
    AsyncExecutor,
    ModelJob,
    MultiModelScheduler,
    ShardedEvaluationPipeline,
)
from repro.pipeline.planner import CostPlanner
from repro.scoring.compiled import ReferenceStore

#: One straggler endpoint in a full Table 4 leaderboard — the skew
#: stealing absorbs.  Eleven fast models supply the scoring-side work the
#: static schedule cannot overlap with the straggler's waits.
MODEL_NAMES = tuple(available_models())
SLOW_MODEL = "gpt-4"
SLOW_LATENCY = 0.2
FAST_LATENCY = 0.002

SHARDS = 2
GENERATE_CONCURRENCY = 8
PREFETCH_BATCHES = 2

#: The guard: the stealing schedule must beat the static round-robin end
#: to end by at least this factor on the skewed corpus (single core).
MIN_SPEEDUP = 1.25

#: Where the calibration guard leaves its store for the CI artifact.
CALIBRATION_STORE_PATH = os.environ.get("REPRO_CALIBRATION_STORE") or artifact_path(
    "BENCH_calibration.jsonl"
)


def _problems():
    return list(bench_dataset().originals())


def _batch_size(total: int) -> int:
    """About eight batches per job, whatever the corpus size."""

    return max(1, round(total / 8))


def _jobs(driver: CloudEvalBenchmark) -> list[ModelJob]:
    jobs = []
    for name in MODEL_NAMES:
        latency = SLOW_LATENCY if name == SLOW_MODEL else FAST_LATENCY
        model = RemoteEndpointModel(
            get_model(name), latency_seconds=latency, jitter_seconds=latency / 16, seed=11
        )
        resolved, requests = driver.requests(model, problems=_problems())
        jobs.append(ModelJob(resolved, requests))
    return jobs


def _run_leaderboard(driver: CloudEvalBenchmark, store: ReferenceStore, steal: bool):
    problems = _problems()
    with MultiModelScheduler(
        _jobs(driver),
        shards=SHARDS,
        executor="serial",
        generate_executor=AsyncExecutor(max_concurrency=GENERATE_CONCURRENCY),
        store=store,
        batch_size=_batch_size(len(problems)),
        prefetch_batches=PREFETCH_BATCHES,
        steal=steal,
    ) as scheduler:
        return scheduler.run()


def test_stealing_beats_static_round_robin(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    store = ReferenceStore()
    for problem in dataset:
        store.get(problem)

    # Warm every process-level cache (reference compilation, parsed
    # manifests) with an untimed latency-free pass, so neither timed run
    # pays one-time costs the other inherits for free.
    warm_driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    for name in MODEL_NAMES:
        warm_driver.evaluate_model(name, problems=_problems())

    # --- static round-robin baseline (the PR 4 schedule) ----------------
    start = time.perf_counter()
    static = _run_leaderboard(driver, store, steal=False)
    static_seconds = time.perf_counter() - start

    # --- work stealing ---------------------------------------------------
    result = benchmark.pedantic(
        lambda: _run_leaderboard(driver, store, steal=True), rounds=1, iterations=1
    )
    steal_seconds = benchmark.stats.stats.mean
    speedup = static_seconds / steal_seconds

    requests = sum(len(evaluation.records) for evaluation in static.values())
    benchmark.extra_info["requests"] = requests
    benchmark.extra_info["slow_latency_ms"] = SLOW_LATENCY * 1000
    benchmark.extra_info["static_seconds"] = round(static_seconds, 4)
    benchmark.extra_info["steal_seconds"] = round(steal_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nSkewed leaderboard over {len(MODEL_NAMES)} models / {requests} requests "
        f"({SLOW_MODEL} at {SLOW_LATENCY * 1000:.0f}ms, rest at {FAST_LATENCY * 1000:.0f}ms):"
        f"\n  static round-robin : {static_seconds:6.2f} s"
        f"\n  work stealing      : {steal_seconds:6.2f} s"
        f"\n  speedup            : {speedup:6.2f} x"
    )

    # Stealing must not move a single record...
    for name, evaluation in static.items():
        assert result[name].records == evaluation.records

    # ...and must actually absorb the straggler (ratio-based guard).
    assert speedup >= MIN_SPEEDUP, (
        f"stealing speedup {speedup:.2f}x fell below the {MIN_SPEEDUP}x floor "
        f"(static {static_seconds:.2f}s, stealing {steal_seconds:.2f}s)"
    )


def test_calibrated_replanning_tightens_measured_shard_spread():
    """Cold predict → warm calibrated: the two-run workflow must shrink the
    measured max−min shard completion spread versus Figure 5-only cuts."""

    dataset = bench_dataset()
    # Heterogeneity-sorted corpus: cheap Pod problems up front, image-heavy
    # problems at the back — the layout where modelled and measured costs
    # disagree the most.
    problems = sorted(
        dataset.originals(),
        key=lambda p: (p.category is not Category.POD, p.category.value),
    )
    if os.path.exists(CALIBRATION_STORE_PATH):
        os.remove(CALIBRATION_STORE_PATH)
    calibration = CalibrationStore(CALIBRATION_STORE_PATH)
    references = ReferenceStore()
    shards = 4

    def run(planner: CostPlanner):
        model, requests = CloudEvalBenchmark(dataset, BenchmarkConfig()).requests(
            "gpt-4", problems=problems
        )
        with ShardedEvaluationPipeline(
            model,
            shards=shards,
            planner=planner,
            store=references,
            calibration=calibration,
        ) as pipeline:
            return requests, pipeline.run(requests)

    # Run 1 — cold: shards cut on the Figure 5 constants alone, while the
    # calibration store records what every problem actually took.
    figure5_planner = CostPlanner(CostModel())
    requests, _cold = run(figure5_planner)
    assert len(calibration) == len(problems)

    # Run 2 — warm: shards cut on the observed durations (the prior fully
    # handed over: this machine re-runs the same corpus, so the
    # measurements *are* the truth the planner should balance).
    calibrated_planner = CostPlanner(CalibratedCostModel(store=calibration, prior_weight=0.0))
    figure5_plan = figure5_planner.plan(requests, shards)
    calibrated_plan = calibrated_planner.plan(requests, shards)
    _requests2, warm = run(calibrated_planner)

    # Ground truth: the measured per-record seconds of the warm run.
    measured = [record.measured_seconds for record in warm.records]

    def measured_spread(plan):
        durations = [
            sum(measured[start:stop]) for start, stop in plan.bounds()
        ]
        return max(durations) - min(durations), durations

    figure5_spread, figure5_durations = measured_spread(figure5_plan)
    calibrated_spread, calibrated_durations = measured_spread(calibrated_plan)

    print(
        f"\nMeasured shard completion seconds over {len(problems)} problems, {shards} shards:"
        f"\n  Figure 5 cuts   : {[f'{d:.3f}' for d in figure5_durations]}"
        f" (spread {figure5_spread:.3f}s)"
        f"\n  calibrated cuts : {[f'{d:.3f}' for d in calibrated_durations]}"
        f" (spread {calibrated_spread:.3f}s)"
        f"\n  calibration store: {CALIBRATION_STORE_PATH} ({len(calibration)} problems)"
    )

    # The warm plan must balance what the stopwatch measures, not what the
    # paper's constants model — strictly tighter, with real margin.
    assert calibrated_spread < figure5_spread
    assert calibrated_spread < figure5_spread * (0.9 if FAST_MODE else 0.8)
    # The artifact the CI job uploads must exist and reload cleanly.
    assert len(CalibrationStore(CALIBRATION_STORE_PATH)) == len(problems)
