"""A minimal discrete-event engine with a processor-shared network link.

The evaluation-cluster simulation only needs two primitives:

* an event queue ordered by simulated time, and
* a model of the shared 100 Mbps internet uplink, over which concurrent
  downloads share bandwidth fairly (processor sharing).  Fair sharing over
  a single bottleneck has a convenient property: the *total* time needed to
  move a set of transfers equals total bytes divided by link capacity, no
  matter how the transfers overlap.  The link is therefore modelled as a
  FIFO pipe that hands out completion times, which is both simple and exact
  for the aggregate quantities Figure 5 reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventQueue", "SharedLink"]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """A classic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._sequence = 0
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""

        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, _Event(self.now + delay, self._sequence, callback))
        self._sequence += 1

    def run(self, max_events: int = 10_000_000) -> float:
        """Run until the queue drains; returns the final simulated time."""

        processed = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.callback()
            processed += 1
            if processed > max_events:  # pragma: no cover - runaway guard
                raise RuntimeError("event budget exhausted; simulation is not terminating")
        return self.now


class SharedLink:
    """A capacity-limited link shared by all workers (the internet uplink).

    ``request(mb, now)`` books a transfer of ``mb`` megabytes starting no
    earlier than ``now`` and returns its completion time.  Transfers are
    serialised on the link, which yields the same aggregate completion
    behaviour as fair sharing while keeping the bookkeeping trivial.
    """

    def __init__(self, bandwidth_mbps: float) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_mbps = bandwidth_mbps
        self._available_at = 0.0
        self.total_mb = 0.0

    def transfer_seconds(self, mb: float) -> float:
        """Time to move ``mb`` megabytes at full link speed."""

        return mb * 8.0 / self.bandwidth_mbps

    def request(self, mb: float, now: float) -> float:
        """Book a transfer and return its completion time."""

        if mb <= 0:
            return now
        start = max(now, self._available_at)
        finish = start + self.transfer_seconds(mb)
        self._available_at = finish
        self.total_mb += mb
        return finish
