"""Figure 6 — Performance analysis from four perspectives across the model ranking.

Each panel plots the unit-test score of every model (x = rank in Table 4)
for the buckets of one factor: application category, code context, length
of the reference answer, and question token count.
"""

from __future__ import annotations

from benchmarks.common import full_zero_shot_result
from repro.analysis.breakdown import PERSPECTIVES, perspective_series
from repro.llm.registry import available_models


def _all_series():
    result = full_zero_shot_result()
    evaluations = [result[m] for m in available_models()]
    return {perspective: perspective_series(evaluations, perspective) for perspective in PERSPECTIVES}


def test_fig6_perspective_series(benchmark):
    series_by_perspective = benchmark.pedantic(_all_series, rounds=1, iterations=1)
    models = available_models()

    print("\nFigure 6 series (x axis = model index in Table 4 ranking):")
    for perspective, series in series_by_perspective.items():
        print(f"  [{perspective}]")
        for bucket, values in series.items():
            print(f"    {bucket:<12} " + " ".join(f"{v:.2f}" for v in values))

    # Every series has one point per model.
    for series in series_by_perspective.values():
        for values in series.values():
            assert len(values) == len(models)

    application = series_by_perspective["application"]
    top3 = slice(0, 3)  # gpt-4, gpt-3.5, palm-2
    # Kubernetes dominates Envoy for the capable models (Envoy hardest).
    assert all(k > e for k, e in zip(application["kubernetes"][top3], application["envoy"][top3]))

    answer_lines = series_by_perspective["answer_lines"]
    # Short answers are easier than long answers for the capable models.
    assert all(s >= l for s, l in zip(answer_lines["[0, 15)"][top3], answer_lines[">=30"][top3]))

    # Scores broadly decay with model rank (first model beats the last in every bucket that is non-zero).
    for series in series_by_perspective.values():
        for values in series.values():
            if values[0] > 0.05:
                assert values[0] >= values[-1]

    code_context = series_by_perspective["code_context"]
    # Code context has no dramatic effect for the top models.
    assert abs(code_context["w/ code"][0] - code_context["w/o code"][0]) < 0.25
