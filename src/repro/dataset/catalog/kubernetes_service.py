"""Service problem templates (Table 2 column "service")."""

from __future__ import annotations

from repro.dataset.catalog.common import HTTP_PORTS, ProblemDraft, pick_app, pick_source
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _deployment_context(app: str, namespace: str, image: str = "nginx:latest", port: int = 80, replicas: int = 3) -> str:
    return f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {app}-deployment
  namespace: {namespace}
spec:
  replicas: {replicas}
  selector:
    matchLabels:
      app: {app}
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: {app}-container
        image: {image}
        ports:
        - containerPort: {port}
"""


def _load_balancer_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    """The Appendix C.2 sample: expose an existing deployment with a LoadBalancer."""

    app, namespace = pick_app(rng)
    port = rng.choice([80, 8080])
    context = _deployment_context(app, namespace, port=port)
    question = (
        f"Given the following YAML, please help me create a service with load balancer that uses the "
        f"{app} selector, exposed on port {port}. It should be accessible via browser. "
        f"Name the service \"{app}-service\" and keep it in the {namespace} namespace."
    )
    reference = f"""apiVersion: v1
kind: Service
metadata:
  name: {app}-service
  namespace: {namespace}
spec:
  selector:
    app: {app}
  ports:
  - name: http  # *
    port: {port}
    targetPort: {port}
  type: LoadBalancer
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(context),
        S.WaitFor("Deployment", "available", name=f"{app}-deployment", namespace=namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("Service", "{.spec.type}", expected="LoadBalancer", name=f"{app}-service", namespace=namespace),
        S.AssertServiceReachable(f"{app}-service", namespace=namespace, port=port),
    ]
    return ProblemDraft(
        slug=f"service-loadbalancer-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source=pick_source(rng),
        primary_kind="Service",
    )


def _cluster_ip_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    port = rng.choice(HTTP_PORTS)
    target_port = rng.choice(HTTP_PORTS)
    name = f"{app}-svc"
    context = _deployment_context(app, namespace, port=target_port, replicas=2)
    question = (
        f"Write a YAML for a ClusterIP Service named \"{name}\" in the {namespace} namespace that "
        f"selects pods labeled app: {app} and maps port {port} to target port {target_port}."
    )
    reference = f"""apiVersion: v1
kind: Service
metadata:
  name: {name}
  namespace: {namespace}
spec:
  type: ClusterIP
  selector:
    app: {app}
  ports:
  - port: {port}
    targetPort: {target_port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(context),
        S.ApplyAnswer(),
        S.AssertJsonPath("Service", "{.spec.ports[0].targetPort}", expected=str(target_port), name=name, namespace=namespace),
        S.AssertJsonPath("Service", "{.spec.selector.app}", expected=app, name=name, namespace=namespace),
        S.AssertServiceReachable(name, namespace=namespace, port=port),
    ]
    return ProblemDraft(
        slug=f"service-clusterip-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source=pick_source(rng),
        primary_kind="Service",
    )


def _node_port_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    node_port = rng.choice([30080, 30090, 31000, 32000, 30500])
    name = f"{app}-nodeport"
    context = _deployment_context(app, namespace, replicas=1)
    question = (
        f"Create a NodePort Service named \"{name}\" in namespace {namespace} for pods labeled "
        f"app: {app}. Expose port 80 with nodePort {node_port}."
    )
    reference = f"""apiVersion: v1
kind: Service
metadata:
  name: {name}
  namespace: {namespace}
spec:
  type: NodePort
  selector:
    app: {app}
  ports:
  - port: 80
    targetPort: 80
    nodePort: {node_port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(context),
        S.ApplyAnswer(),
        S.AssertJsonPath("Service", "{.spec.type}", expected="NodePort", name=name, namespace=namespace),
        S.AssertJsonPath("Service", "{.spec.ports[0].nodePort}", expected=str(node_port), name=name, namespace=namespace),
        S.AssertServiceReachable(name, namespace=namespace, port=node_port),
    ]
    return ProblemDraft(
        slug=f"service-nodeport-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source=pick_source(rng),
        primary_kind="Service",
    )


def _headless_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-headless"
    port = rng.choice([5432, 3306, 6379, 27017])
    context = _deployment_context(app, namespace, image="postgres:16", port=port, replicas=2)
    question = (
        f"Write a YAML for a headless Service named \"{name}\" in namespace {namespace} (clusterIP "
        f"set to None) selecting pods with label app: {app} and exposing port {port}."
    )
    reference = f"""apiVersion: v1
kind: Service
metadata:
  name: {name}
  namespace: {namespace}
spec:
  clusterIP: None
  selector:
    app: {app}
  ports:
  - port: {port}
    targetPort: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(context),
        S.ApplyAnswer(),
        S.AssertJsonPath("Service", "{.spec.clusterIP}", expected="None", name=name, namespace=namespace),
        S.AssertJsonPath("Service", "{.spec.ports[0].port}", expected=str(port), name=name, namespace=namespace),
        S.AssertServiceReachable(name, namespace=namespace, port=port),
    ]
    return ProblemDraft(
        slug=f"service-headless-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source=pick_source(rng),
        primary_kind="Service",
    )


def _multi_port_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-api"
    metrics_port = rng.choice([9090, 9100, 15090])
    context = _deployment_context(app, namespace, replicas=2)
    question = (
        f"Create a Service named \"{name}\" in the {namespace} namespace selecting app: {app}. "
        f"It must expose two ports: a port named \"http\" on 80 targeting 80, and a port named "
        f"\"metrics\" on {metrics_port} targeting {metrics_port}."
    )
    reference = f"""apiVersion: v1
kind: Service
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    app: {app}
  ports:
  - name: http
    port: 80
    targetPort: 80
  - name: metrics
    port: {metrics_port}
    targetPort: {metrics_port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(context),
        S.ApplyAnswer(),
        S.AssertJsonPath("Service", "{.spec.ports[*].name}", contains="metrics", name=name, namespace=namespace),
        S.AssertJsonPath("Service", "{.spec.ports[1].port}", expected=str(metrics_port), name=name, namespace=namespace),
        S.AssertServiceReachable(name, namespace=namespace, port=80),
    ]
    return ProblemDraft(
        slug=f"service-multiport-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source=pick_source(rng),
        primary_kind="Service",
    )


_TEMPLATES = [
    _load_balancer_service,
    _cluster_ip_service,
    _node_port_service,
    _headless_service,
    _multi_port_service,
]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` service problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("service", index), index))
    return drafts
