"""Table 3 — Sample running cost of the benchmark in dollars.

Paper: GPT-3.5 inference $0.60, Llama-7b via replicate $2.90; evaluation on
one GCP spot instance $0.71, 64 spot instances $2.20, 64 standard $5.51;
total cost between $1.31 and $8.41 per full run.
"""

from __future__ import annotations

import pytest

from benchmarks.common import FAST_MODE, bench_dataset
from repro.analysis.paper_reference import PAPER_TABLE3
from repro.evalcluster import benchmark_cost_table


def test_table3_running_cost(benchmark):
    dataset = bench_dataset()
    table = benchmark.pedantic(benchmark_cost_table, args=(dataset,), rounds=1, iterations=1)

    print("\nTable 3 (measured vs paper, $):")
    for key, value in table.items():
        print(f"  {key:<28} {value:7.2f}   paper: {PAPER_TABLE3.get(key, float('nan')):.2f}")

    # Ordering of the evaluation options matches the paper.
    assert table["evaluation:gcp-spot-x1"] < table["evaluation:gcp-spot-x64"] < table["evaluation:gcp-standard-x64"]
    # API inference is cheaper than GPU-hour inference for this workload.
    assert table["inference:gpt-3.5"] < table["inference:llama-7b"]

    if not FAST_MODE:
        # Dollar amounts land in the same ballpark as Table 3.
        assert table["inference:gpt-3.5"] == pytest.approx(PAPER_TABLE3["inference:gpt-3.5"], abs=0.4)
        assert table["evaluation:gcp-spot-x1"] == pytest.approx(PAPER_TABLE3["evaluation:gcp-spot-x1"], abs=0.25)
        assert table["evaluation:gcp-standard-x64"] == pytest.approx(PAPER_TABLE3["evaluation:gcp-standard-x64"], rel=0.25)
        assert 0.8 <= table["total:min"] <= 2.5
        assert 5.0 <= table["total:max"] <= 11.0
