"""Gradient-boosted decision trees for binary classification.

This is a compact, readable stand-in for XGBoost sufficient for the
unit-test prediction experiment (Figure 9).  It boosts least-squares
regression trees on the gradient of the logistic loss, with shrinkage and
optional row subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mlkit.tree import RegressionTree

__all__ = ["GradientBoostingClassifier"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class GradientBoostingClassifier:
    """Binary classifier boosted with logistic loss.

    Parameters mirror the common XGBoost/GBM knobs: ``n_estimators`` trees
    of depth ``max_depth`` are fitted sequentially, each on the negative
    gradient of the logistic loss, and combined with learning-rate
    ``learning_rate``.  ``subsample`` < 1 enables stochastic boosting.
    """

    n_estimators: int = 100
    learning_rate: float = 0.1
    max_depth: int = 3
    min_samples_leaf: int = 5
    subsample: float = 1.0
    random_state: int = 0

    trees_: list[RegressionTree] = field(default_factory=list, repr=False)
    base_score_: float = 0.0
    n_features_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        """Fit on features ``X`` and binary labels ``y`` in {0, 1}."""

        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")

        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)

        # Initialise with the log-odds of the positive class.
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self.base_score_, dtype=float)

        self.trees_ = []
        for _ in range(self.n_estimators):
            prob = _sigmoid(raw)
            residual = y - prob  # negative gradient of logistic loss

            if self.subsample < 1.0:
                mask = rng.random(len(y)) < self.subsample
                if mask.sum() < 2 * self.min_samples_leaf:
                    mask = np.ones(len(y), dtype=bool)
            else:
                mask = np.ones(len(y), dtype=bool)

            tree = RegressionTree(max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf)
            tree.fit(X[mask], residual[mask])
            self.trees_.append(tree)
            raw = raw + self.learning_rate * tree.predict(X)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive scores (log-odds) for every row of ``X``."""

        if not self.trees_:
            raise RuntimeError("classifier has not been fitted")
        X = np.asarray(X, dtype=float)
        raw = np.full(len(X), self.base_score_, dtype=float)
        for tree in self.trees_:
            raw = raw + self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for every row of ``X``."""

        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""

        return (self.predict_proba(X) >= threshold).astype(int)

    def feature_importances(self) -> np.ndarray:
        """Average split-based importances across all trees."""

        if not self.trees_:
            raise RuntimeError("classifier has not been fitted")
        importances = np.zeros(self.n_features_, dtype=float)
        for tree in self.trees_:
            importances += tree.feature_importances(self.n_features_)
        total = importances.sum()
        return importances / total if total > 0 else importances
