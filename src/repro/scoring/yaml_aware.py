"""YAML-aware metrics: key-value exact match and key-value wildcard match.

Both metrics load the generated and reference YAML into dictionaries, so
key order and formatting do not matter.  The wildcard variant additionally
honours the labels embedded in the reference (``# *`` wildcard and
``# v in [...]`` set labels) and reports the IoU (intersection over union)
of matched leaves, following §3.2 of the paper.
"""

from __future__ import annotations

from typing import Any

from repro.yamlkit.labels import LabeledNode, parse_labeled_yaml
from repro.yamlkit.normalize import documents_equal
from repro.yamlkit.parsing import YamlParseError, load_all_documents

__all__ = [
    "load_match_documents",
    "key_value_exact_match",
    "key_value_exact_match_docs",
    "key_value_wildcard_match",
    "key_value_wildcard_match_docs",
]


def load_match_documents(text: str) -> list[Any] | None:
    """Parse ``text`` for the key-value metrics.

    Returns the document list, or ``None`` when the text is not valid YAML
    or contains a non-container document (a prose answer parsed as a bare
    scalar does not count as YAML for these metrics).
    """

    try:
        docs = load_all_documents(text)
    except YamlParseError:
        return None
    if not docs or not all(isinstance(d, (dict, list)) for d in docs):
        return None
    return docs


# Backwards-compatible private alias (pre-compiled-reference name).
_load_documents = load_match_documents


def key_value_exact_match_docs(generated_docs: list[Any] | None, reference_docs: list[Any] | None) -> float:
    """:func:`key_value_exact_match` over pre-parsed document lists."""

    if generated_docs is None or reference_docs is None:
        return 0.0
    if len(generated_docs) != len(reference_docs):
        return 0.0
    return 1.0 if all(documents_equal(g, r) for g, r in zip(generated_docs, reference_docs)) else 0.0


def key_value_exact_match(generated: str, reference_plain: str) -> float:
    """1.0 when both YAMLs parse to equal dictionaries (order-insensitive)."""

    return key_value_exact_match_docs(load_match_documents(generated), load_match_documents(reference_plain))


def _count_matches(reference: LabeledNode, candidate: Any) -> tuple[int, int, int]:
    """Return (matched, reference_leaves, candidate_leaves) for the IoU.

    The reference tree drives the traversal; candidate leaves that have no
    counterpart in the reference count toward the union only.
    """

    if reference.node_type == "scalar":
        matched = 1 if candidate is not None and reference.matches_value(candidate) else 0
        candidate_leaves = 1 if candidate is not None and not isinstance(candidate, (dict, list)) else _leaf_count(candidate)
        return matched, 1, candidate_leaves

    if reference.node_type == "mapping":
        matched = 0
        ref_total = 0
        cand_total = 0
        candidate_map = candidate if isinstance(candidate, dict) else {}
        seen_keys = set()
        for key, child in reference.children.items():
            seen_keys.add(key)
            child_candidate = candidate_map.get(key) if isinstance(candidate_map, dict) else None
            m, r, c = _count_matches(child, child_candidate)
            matched += m
            ref_total += r
            cand_total += c
        # Extra keys present only in the candidate enlarge the union.
        if isinstance(candidate_map, dict):
            for key, value in candidate_map.items():
                if key not in seen_keys:
                    cand_total += _leaf_count(value)
        return matched, ref_total, cand_total

    # Sequence: compare positionally (order matters inside lists).
    matched = 0
    ref_total = 0
    cand_total = 0
    candidate_list = candidate if isinstance(candidate, list) else []
    for index, child in enumerate(reference.items):
        child_candidate = candidate_list[index] if index < len(candidate_list) else None
        m, r, c = _count_matches(child, child_candidate)
        matched += m
        ref_total += r
        cand_total += c
    for extra in candidate_list[len(reference.items) :]:
        cand_total += _leaf_count(extra)
    return matched, ref_total, cand_total


def _leaf_count(value: Any) -> int:
    if isinstance(value, dict):
        return sum(_leaf_count(v) for v in value.values()) or 1
    if isinstance(value, list):
        return sum(_leaf_count(v) for v in value) or 1
    return 1 if value is not None else 0


def key_value_wildcard_match_docs(generated_docs: list[Any] | None, reference_tree: LabeledNode | None) -> float:
    """:func:`key_value_wildcard_match` over pre-parsed documents and a compiled tree."""

    if generated_docs is None or reference_tree is None:
        return 0.0

    # Align multi-document references with multi-document answers.
    if reference_tree.node_type == "sequence" and reference_tree.items and all(
        item.node_type == "mapping" for item in reference_tree.items
    ) and len(generated_docs) > 1:
        candidate: Any = list(generated_docs)
    else:
        candidate = generated_docs[0] if len(generated_docs) == 1 else list(generated_docs)

    matched, ref_total, cand_total = _count_matches(reference_tree, candidate)
    union = ref_total + max(0, cand_total - matched)
    if union <= 0:
        return 0.0
    return float(matched / union)


def key_value_wildcard_match(generated: str, reference_labeled: str) -> float:
    """IoU of matched leaves between the generated YAML and the labeled reference."""

    generated_docs = load_match_documents(generated)
    if generated_docs is None:
        return 0.0
    try:
        reference_tree = parse_labeled_yaml(reference_labeled)
    except YamlParseError:
        return 0.0
    return key_value_wildcard_match_docs(generated_docs, reference_tree)
