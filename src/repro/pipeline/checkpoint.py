"""Checkpointing for partially evaluated pipeline runs.

A full benchmark run is hours of model queries and unit tests; losing it
to a crash at problem 900 of 1011 is exactly the failure mode the paper's
cluster design works around.  :class:`PipelineCheckpoint` stores finished
:class:`~repro.pipeline.records.EvaluationRecord`s keyed by the identity
of their unit of work — ``(model, problem, shots, sample)`` — so a re-run
of the same pipeline skips straight past everything already evaluated.

The store is an append-only JSON-lines file (one record per line) when
given a path, or purely in-memory otherwise.  JSON-lines keeps the common
crash case safe: a partially written final line is dropped on load while
every complete line survives.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Iterator

from repro.pipeline.records import EvaluationRecord, record_from_dict, record_to_dict

__all__ = ["PipelineCheckpoint", "model_checkpoint_base", "shard_checkpoint_path"]

RecordKey = tuple[str, str, int, int]

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def model_checkpoint_base(base: str | os.PathLike[str], model_name: str) -> Path:
    """The per-model checkpoint base of a multi-model (leaderboard) run.

    A scheduled leaderboard run keeps each model's shards under its own
    base (``run.ckpt.jsonl`` → ``run.ckpt.jsonl.gpt-4``), from which
    :func:`shard_checkpoint_path` then derives the per-shard files, so
    every ``(model, shard)`` pair resumes independently.  Characters that
    are not filesystem-safe are collapsed to ``-``.
    """

    slug = _SLUG_RE.sub("-", model_name).strip("-") or "model"
    return Path(f"{os.fspath(base)}.{slug}")


def shard_checkpoint_path(base: str | os.PathLike[str], index: int, num_shards: int) -> Path:
    """The checkpoint file of shard ``index`` of a sharded run.

    A sharded evaluation keeps one append-only file per shard next to the
    base path (``run.ckpt.jsonl`` → ``run.ckpt.jsonl.shard-02-of-04``), so
    shards can be written concurrently — and resumed or even re-run on
    different machines — without sharing a file handle.
    """

    if not 0 <= index < num_shards:
        raise ValueError(f"shard index {index} out of range for {num_shards} shards")
    return Path(f"{os.fspath(base)}.shard-{index:02d}-of-{num_shards:02d}")


class PipelineCheckpoint:
    """Completed evaluation records, resumable across pipeline runs."""

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[RecordKey, EvaluationRecord] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence --------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = record_from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A torn final line from an interrupted run; everything
                    # before it is intact, so stop there.
                    break
                self._records[record.key] = record

    def _append(self, record: EvaluationRecord) -> None:
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record_to_dict(record)) + "\n")

    # -- record access ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EvaluationRecord]:
        return iter(self._records.values())

    def get(self, key: RecordKey) -> EvaluationRecord | None:
        """The stored record for a unit of work, or None when not yet done."""

        return self._records.get(key)

    def put(self, record: EvaluationRecord) -> None:
        """Store a finished record (and append it to the backing file)."""

        if record.key in self._records:
            return
        self._records[record.key] = record
        if self.path is not None:
            self._append(record)

    def clear(self) -> None:
        """Forget every stored record (and truncate the backing file)."""

        self._records.clear()
        if self.path is not None and self.path.exists():
            self.path.write_text("", encoding="utf-8")
