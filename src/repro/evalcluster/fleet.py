"""Distributed evaluation fleet: the cluster protocol over a real wire.

Everything the in-process cluster runtime does — job queue, atomic
claims, results hash, leases with re-enqueue-once — already speaks
through the :class:`~repro.evalcluster.kvstore.RedisLikeStore` command
surface.  This module puts that surface on a socket so the *same*
:class:`~repro.evalcluster.master.Master` drives real out-of-process
workers:

* :class:`StoreServer` — a threaded TCP server wrapping one locked
  ``RedisLikeStore``.  Commands travel as length-prefixed pickle frames
  (``send_frame``/``recv_frame``); blocking extensions ``blpop``,
  ``claim`` and ``claim_many`` park the connection on a condition
  variable until a push arrives.  ``claim``/``claim_many`` pop pending
  job ids *and* register the claims in one locked step, so a worker
  that dies between pop and registration cannot orphan a job invisibly;
  ``report_many`` lands a whole batch of results in one frame, and
  ``rate_acquire`` debits server-side :class:`TokenBucket`\\ s so the
  whole fleet shares one token balance per endpoint (see
  :class:`DistributedTokenBucket`).
* :class:`RemoteStore` — the client half: the full store surface as
  methods over one socket, with reconnect-and-retry on connection loss
  (every command is either idempotent or covered by lease recovery).
* :class:`FleetWorker` / ``python -m repro.evalcluster.fleet worker``
  — the worker loop: claim a job id, fetch its pickled payload, run it,
  write the result first-write-wins (``hsetnx``), push a completion
  event.  A heartbeat thread on its *own* connection reports liveness
  plus the job currently executing; on startup the worker warms its
  per-process :class:`~repro.scoring.compiled.ReferenceStore` from the
  problems the executor published.
* :class:`FleetExecutor` — the :class:`~repro.pipeline.executors.Executor`
  backend.  It either self-hosts (in-process server thread + ``N``
  spawned worker subprocesses) or attaches to an external store, and its
  ``map`` runs the coordinator loop: submit payloads + jobs, observe
  claims and heartbeats (stamping leases on the *master's* monotonic
  clock — worker clocks are never compared), reap expired leases through
  :meth:`Master.reap_expired`, and collect results in task order.

Timing flows back with the work: per-record scoring seconds are measured
inside the worker (``run_timed_score_task`` rides along in the pickled
payload), so the master-side pipeline feeds its
:class:`~repro.evalcluster.calibration.CalibrationStore` with true
cross-machine durations and the steal policy sees remote skew live.
Score-cache hits never ship: the score stage resolves them in the parent
process and the fleet — ``requires_picklable_tasks`` like the process
pool — only ever sees miss envelopes.

Chaos hardening (all optional, all off by default):

* **Durability** — ``StoreServer(journal=path)`` backs the store with a
  :class:`~repro.evalcluster.kvstore.JournaledStore` write-ahead journal;
  the store process can be killed and a fresh server on the same journal
  replays to the exact pre-crash state while clients reconnect.
* **Bounded reconnects** — :class:`RemoteStore` retries lost connections
  on a capped-exponential :class:`~repro.utils.backoff.BackoffPolicy`
  with deterministic jitter; an exhausted budget raises the typed
  :class:`FleetUnavailableError` instead of spinning forever.
* **Fault injection** — every component takes a seeded
  :class:`~repro.utils.faults.FaultInjector` (sites ``worker.claim``,
  ``worker.execute``, ``worker.generate``, ``worker.heartbeat``,
  ``remote.call``, ``server.command``, ``coordinator.sync``) so kills,
  drops, corrupt
  frames, freezes, delays and store restarts are scripted, reproducible
  test inputs; fired faults land in the coordinator's JSONL event log.
* **Graceful degradation** — a job the fleet cannot finish (lease expired
  twice, or quarantined by the strike counter) comes back as one
  :class:`~repro.pipeline.executors.DegradedResult` per task instead of
  an exception, so a run always terminates with a result per slot.

The protocol trusts its peers (pickle over TCP): bind to localhost or a
private network you control, exactly like an unauthenticated Redis.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

from repro.evalcluster.calibration import Ewma
from repro.evalcluster.kvstore import JournaledStore, RedisLikeStore
from repro.evalcluster.master import EvaluationJob, Master, MasterStats
from repro.pipeline.executors import DegradedResult
from repro.utils.backoff import BackoffPolicy
from repro.utils.faults import FaultInjector, FaultPlan, null_injector
from repro.utils.jsonl import JsonlLog
from repro.utils.ratelimit import TokenBucket

__all__ = [
    "FrameError",
    "StoreCommandError",
    "FleetUnavailableError",
    "send_frame",
    "recv_frame",
    "StoreServer",
    "RemoteStore",
    "DistributedTokenBucket",
    "FleetWorker",
    "FleetExecutor",
    "fleet_pacer",
    "run_worker",
    "worker_injector",
    "main",
]

T = TypeVar("T")
R = TypeVar("R")

#: Hash of in-flight claims: job id -> (worker id, claim sequence number).
#: Shared with the master, which clears a reaped job's row before
#: re-enqueueing it.
CLAIMS_KEY = Master.CLAIMS_KEY
#: Completion events the coordinator blocks on (list of finished job ids).
DONE_KEY = "jobs:done"
#: Heartbeat hash: worker id -> (sequence number, job id being executed).
HEARTBEATS_KEY = "workers:heartbeat"
#: Workers exit their claim loop when this key becomes truthy.
STOP_KEY = "fleet:stop"
#: Pickled problem tuple workers warm their reference store from.
WARMUP_KEY = "fleet:warmup"
#: Worker-side fault/watchdog events queued for the coordinator's event log.
FAULTS_KEY = "fleet:faults"

#: Job payloads are stored per job under this prefix as pickled bytes the
#: server never unpickles — only the claiming worker does.
_PAYLOAD_PREFIX = "jobs:payload:"
#: Per-job execution-attempt counters backing the quarantine strike rule.
_STRIKES_PREFIX = "jobs:strikes:"

_HEADER = struct.Struct(">I")

#: Upper bound on one frame; anything larger is protocol corruption, not
#: data (a full-corpus payload is tens of kilobytes).
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(ConnectionError):
    """The wire produced a torn or malformed frame."""


class StoreCommandError(RuntimeError):
    """The server executed the command and it raised."""


class FleetUnavailableError(ConnectionError):
    """A :class:`RemoteStore` spent its whole reconnect budget.

    Subclasses :class:`ConnectionError` so existing handlers keep
    working; the distinct type lets callers tell "the store is gone"
    apart from a transient hiccup the backoff already absorbed.
    """


#: Sentinel :func:`recv_frame` returns on a clean end-of-stream (the peer
#: closed exactly on a frame boundary) — distinct from a frame carrying None.
_EOF = object()


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Write one length-prefixed pickle frame."""

    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int, what: str = "frame") -> bytes | None:
    """Read exactly ``size`` bytes; None on clean EOF *before* any byte,
    :class:`FrameError` on EOF after some bytes (a torn frame).

    ``what`` names the fragment in the error — a peer that dies two bytes
    into the four-byte length prefix produces a diagnosable
    ``mid-length-prefix (2/4 bytes)``, never a bare :class:`struct.error`
    from unpacking a short header downstream.
    """

    buffer = bytearray()
    while len(buffer) < size:
        chunk = sock.recv(size - len(buffer))
        if not chunk:
            if not buffer:
                return None
            raise FrameError(f"connection closed mid-{what} ({len(buffer)}/{size} bytes)")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; the module-private EOF sentinel on clean close.

    A peer that disappears half-way through a frame — inside the length
    prefix, or a short payload — raises :class:`FrameError` with how many
    bytes made it: the fragment is torn, never delivered as data.
    """

    header = _recv_exact(sock, _HEADER.size, what="length-prefix")
    if header is None:
        return _EOF
    try:
        (length,) = _HEADER.unpack(header)
    except struct.error as exc:  # pragma: no cover - _recv_exact guarantees 4 bytes
        raise FrameError(f"unreadable length prefix: {exc}") from exc
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame header announces {length} bytes (cap {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length, what="payload")
    if payload is None:
        raise FrameError("connection closed between frame header and payload")
    return pickle.loads(payload)


class StoreServer:
    """Serve one :class:`RedisLikeStore` to many connections over TCP.

    Every connection gets its own handler thread; commands execute under
    one lock, so multi-step commands (``claim``) are atomic exactly as a
    single-threaded Redis would make them.  ``blpop`` and ``claim`` park
    their connection on a condition variable notified by every ``rpush``,
    so blocked workers wake the instant work arrives instead of polling.

    A torn frame (a worker killed mid-write, a reset) drops only that
    connection; the store and every other connection keep serving.

    ``journal`` (a path) backs the store with a
    :class:`~repro.evalcluster.kvstore.JournaledStore`: every effective
    mutation is fsynced before the client sees its reply, so the server
    process can be killed and a new one built on the same journal replays
    to the exact acknowledged state.  :meth:`crash` simulates exactly
    that kill in-process (listener and every live connection closed
    abruptly, no goodbye) for chaos tests and the coordinator's
    ``restart`` fault.

    ``injector`` scripts server-side faults at the ``server.command``
    site (detail = the command name): ``drop`` closes the connection
    without replying, ``delay`` stalls the reply.
    """

    #: Plain store commands forwarded verbatim under the lock.
    _COMMANDS = frozenset(
        {
            "set",
            "get",
            "incr",
            "delete",
            "hset",
            "hget",
            "hgetall",
            "hlen",
            "hsetnx",
            "hdel",
            "rpush",
            "lpop",
            "llen",
            "lrange",
            "keys",
        }
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store: RedisLikeStore | JournaledStore | None = None,
        journal: str | os.PathLike[str] | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if store is not None and journal is not None:
            raise ValueError("pass store or journal, not both")
        if journal is not None:
            store = JournaledStore(journal)
        self.store = store or RedisLikeStore()
        self.injector = injector if injector is not None else null_injector()
        self._lock = threading.RLock()
        self._pushed = threading.Condition(self._lock)
        # Server-side token buckets backing the fleet's distributed rate
        # limiting (``rate_acquire``).  Deliberately *not* part of the
        # journaled store: pacing is an ephemeral wall-clock contract, and
        # replaying grants after a restart would double-charge the window.
        self._limiters: dict[str, TokenBucket] = {}
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closing = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "StoreServer":
        """Begin accepting connections on a background thread."""

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-store-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                connection, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                self._connections.add(connection)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="fleet-store-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            with connection:
                while not self._closing.is_set():
                    try:
                        frame = recv_frame(connection)
                    except (FrameError, OSError):
                        return  # torn frame or reset: this connection only
                    if frame is _EOF:
                        return
                    command = frame[0] if isinstance(frame, tuple) and frame else ""
                    spec = self.injector.fire("server.command", str(command))
                    if spec is not None and spec.kind == "drop":
                        return  # hang up without a reply; the client retries
                    self.injector.sleep_if_delay(spec, command)
                    try:
                        response: tuple[str, Any] = ("ok", self._execute(frame))
                    except Exception as exc:  # noqa: BLE001 - relayed to the client
                        response = ("err", f"{type(exc).__name__}: {exc}")
                    try:
                        send_frame(connection, response)
                    except OSError:
                        return
        finally:
            with self._conn_lock:
                self._connections.discard(connection)

    def _execute(self, frame: Any) -> Any:
        if not isinstance(frame, tuple) or not frame or not isinstance(frame[0], str):
            raise ValueError("malformed command frame")
        command, *args = frame
        if command == "ping":
            return "pong"
        if command == "blpop":
            return self._blpop(*args)
        if command == "claim":
            return self._claim(*args)
        if command == "claim_many":
            return self._claim_many(*args)
        if command == "report_many":
            return self._report_many(*args)
        if command == "rate_acquire":
            return self._rate_acquire(*args)
        if command not in self._COMMANDS:
            raise ValueError(f"unknown command {command!r}")
        with self._lock:
            result = getattr(self.store, command)(*args)
            if command == "rpush":
                self._pushed.notify_all()
            return result

    def _blpop(self, key: str, timeout: float) -> Any:
        """Blocking left-pop: wait up to ``timeout`` seconds for an item."""

        deadline = time.monotonic() + timeout
        with self._pushed:
            while True:
                value = self.store.lpop(key)
                if value is not None:
                    return value
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closing.is_set():
                    return None
                self._pushed.wait(remaining)

    def _claim(self, queue_key: str, claims_key: str, worker_id: str, timeout: float) -> Any:
        """Atomically pop the next job id *and* register who claimed it.

        Pop and registration happen under one lock: there is no instant
        at which a job has left the queue without its claim being
        visible, so a worker killed right after claiming is always
        discoverable by the lease reaper.  The claim value carries a
        server-wide sequence number so a re-claim of a re-enqueued job is
        distinguishable from the stale original.
        """

        deadline = time.monotonic() + timeout
        with self._pushed:
            while True:
                job_id = self.store.lpop(queue_key)
                if job_id is not None:
                    sequence = self.store.incr("fleet:claim-seq")
                    self.store.hset(claims_key, job_id, (worker_id, sequence))
                    return job_id
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closing.is_set():
                    return None
                self._pushed.wait(remaining)

    def _claim_many(
        self, queue_key: str, claims_key: str, worker_id: str, limit: int, timeout: float
    ) -> list[str]:
        """Atomically pop up to ``limit`` job ids, registering every claim.

        The batched sibling of :meth:`_claim`: all pops and registrations
        happen under one lock acquisition and travel back in one frame, so
        a worker whose jobs now carry whole generation chains pays the
        claim round-trip once per batch instead of once per job.  Each
        claim still gets its own fresh sequence number — re-claims of
        re-enqueued jobs stay distinguishable.  Blocks up to ``timeout``
        for the *first* job; never waits to fill the batch (a partial
        batch now beats a full batch later).
        """

        limit = max(1, int(limit))
        deadline = time.monotonic() + timeout
        with self._pushed:
            while True:
                job_ids: list[str] = []
                while len(job_ids) < limit:
                    job_id = self.store.lpop(queue_key)
                    if job_id is None:
                        break
                    sequence = self.store.incr("fleet:claim-seq")
                    self.store.hset(claims_key, job_id, (worker_id, sequence))
                    job_ids.append(job_id)
                if job_ids:
                    return job_ids
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closing.is_set():
                    return []
                self._pushed.wait(remaining)

    def _report_many(
        self, results_key: str, done_key: str, reports: Sequence[tuple[str, dict[str, Any]]]
    ) -> int:
        """Write a batch of result rows plus their completion events.

        Rows land first-write-wins (``hsetnx``, same as single reports), a
        completion event is pushed per job, and parked waiters are woken
        once for the whole batch.  Returns how many rows were actually
        written (a retried report whose first attempt landed counts zero).
        """

        written = 0
        with self._pushed:
            for job_id, row in reports:
                if self.store.hsetnx(results_key, job_id, row):
                    written += 1
                self.store.rpush(done_key, job_id)
            self._pushed.notify_all()
        return written

    def _rate_acquire(self, key: str, rate: float, burst: int) -> float:
        """Debit one token from the named server-side bucket.

        The grant is instant — :meth:`TokenBucket.try_acquire` borrows the
        token and returns how long the *caller* must sleep before acting,
        so a parked grant can never stall other connections.  The first
        acquirer's ``(rate, burst)`` creates the bucket; later parameters
        are ignored (first-config-wins — N workers sharing one spec cannot
        reset each other's token balance).
        """

        with self._lock:
            bucket = self._limiters.get(key)
            if bucket is None:
                bucket = TokenBucket(float(rate), burst=max(1, int(burst)), virtual_clock=False)
                self._limiters[key] = bucket
            return bucket.try_acquire()

    def close(self) -> None:
        """Stop accepting and wake every parked waiter."""

        self._closing.set()
        try:
            # shutdown() before close(): a thread blocked inside accept(2)
            # holds a kernel reference to the listening socket, so close()
            # alone would leave it in LISTEN (and the port unbindable)
            # until that thread woke on its own.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pushed:
            self._pushed.notify_all()

    def crash(self) -> None:
        """Die as a SIGKILL would: listener and every connection closed
        abruptly, parked waiters abandoned, no replies in flight honoured.

        The in-memory store object survives (we are still one process),
        but nothing references it after a journal-backed restart — the
        replacement server replays the journal, which holds exactly the
        mutations clients saw acknowledged.
        """

        self.close()
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                # Abortive close (RST, no FIN handshake): exactly what the
                # peer of a SIGKILLed process observes — and it frees the
                # port immediately (no FIN_WAIT socket lingering), so a
                # replacement server can bind the same address at once.
                connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            except OSError:
                pass
            try:
                # Wake the handler thread blocked inside recv(2); without
                # this its in-flight syscall keeps the connection alive in
                # the kernel past close().
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteStore:
    """The store surface over one socket, with reconnect-and-resume.

    Implements every :class:`RedisLikeStore` method (so a
    :class:`~repro.evalcluster.master.Master` runs against it unmodified)
    plus the two blocking commands.  A lost connection is re-dialled with
    backoff and the command retried: every command here is either
    idempotent (``set``/``hset``/``hgetall``/…), first-write-wins by
    construction (``hsetnx``), or — for ``claim`` — covered by lease
    recovery: a claim that succeeded server-side but whose reply was lost
    is never heartbeat-renewed (the worker executes a different job), so
    its lease expires and the job is re-enqueued once.

    Reconnects follow a capped-exponential
    :class:`~repro.utils.backoff.BackoffPolicy` (default: start at
    ``reconnect_delay``, double per retry, cap at 2 s, deterministic 10%
    jitter, ``reconnect_attempts`` retries); a spent budget raises
    :class:`FleetUnavailableError` instead of retrying forever.  Pass
    ``backoff`` to override the whole schedule.

    ``injector`` scripts client-side wire faults at the ``remote.call``
    site (detail = the command name): ``drop`` abandons the connection
    before sending, ``corrupt`` writes a malformed frame header (the
    server tears that one connection down, nothing else), ``delay``
    stalls the send.  All three then travel the ordinary
    reconnect-and-retry path — injected faults exercise exactly the code
    real ones do.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 30.0,
        reconnect_attempts: int = 20,
        reconnect_delay: float = 0.2,
        backoff: BackoffPolicy | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.backoff = backoff or BackoffPolicy(
            initial_seconds=reconnect_delay,
            multiplier=2.0,
            max_seconds=max(2.0, reconnect_delay),
            attempts=reconnect_attempts + 1,
            jitter=0.1,
        )
        self.injector = injector if injector is not None else null_injector()
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    # -- wire ---------------------------------------------------------------
    def _dial(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def call(self, command: str, *args: Any, wait: float = 0.0) -> Any:
        """Execute one command, reconnecting on connection loss.

        ``wait`` is how long the *server* may legitimately sit on the
        command (blocking pops); it widens the socket timeout so patience
        is not mistaken for a dead peer.
        """

        last_error: Exception | None = None
        with self._lock:
            for attempt in range(self.backoff.attempts):
                if attempt:
                    time.sleep(self.backoff.delay(attempt - 1, self.address))
                if self._sock is None:
                    try:
                        self._sock = self._dial()
                    except OSError as exc:
                        last_error = exc
                        continue
                spec = self.injector.fire("remote.call", command)
                if spec is not None and spec.kind == "drop":
                    self._drop()
                    last_error = ConnectionError("injected fault: connection dropped")
                    continue
                if spec is not None and spec.kind == "corrupt":
                    # A malformed header: the length announces more than the
                    # protocol cap, so the server raises FrameError and tears
                    # down exactly this connection.
                    try:
                        self._sock.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
                    except OSError:
                        pass
                    self._drop()
                    last_error = ConnectionError("injected fault: corrupt frame sent")
                    continue
                self.injector.sleep_if_delay(spec, command)
                try:
                    self._sock.settimeout(self.timeout + wait)
                    send_frame(self._sock, (command, *args))
                    reply = recv_frame(self._sock)
                except (OSError, FrameError, EOFError, pickle.UnpicklingError) as exc:
                    last_error = exc
                    self._drop()
                    continue
                if reply is _EOF:
                    last_error = ConnectionError("server closed the connection")
                    self._drop()
                    continue
                status, payload = reply
                if status == "err":
                    raise StoreCommandError(payload)
                return payload
        raise FleetUnavailableError(
            f"lost connection to fleet store at {self.address[0]}:{self.address[1]} "
            f"after {self.backoff.attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        with self._lock:
            self._drop()

    # -- the RedisLikeStore surface -----------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.call("set", key, value)

    def get(self, key: str, default: Any = None) -> Any:
        value = self.call("get", key)
        return default if value is None else value

    def incr(self, key: str, amount: int = 1) -> int:
        return self.call("incr", key, amount)

    def delete(self, key: str) -> None:
        self.call("delete", key)

    def hset(self, key: str, field: str, value: Any) -> None:
        self.call("hset", key, field, value)

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        value = self.call("hget", key, field)
        return default if value is None else value

    def hgetall(self, key: str) -> dict[str, Any]:
        return self.call("hgetall", key)

    def hlen(self, key: str) -> int:
        return self.call("hlen", key)

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        return self.call("hsetnx", key, field, value)

    def hdel(self, key: str, field: str) -> bool:
        return self.call("hdel", key, field)

    def rpush(self, key: str, *values: Any) -> int:
        return self.call("rpush", key, *values)

    def lpop(self, key: str) -> Any:
        return self.call("lpop", key)

    def llen(self, key: str) -> int:
        return self.call("llen", key)

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        return self.call("lrange", key, start, stop)

    def keys(self) -> list[str]:
        return self.call("keys")

    # -- blocking extensions -------------------------------------------------
    def ping(self) -> str:
        return self.call("ping")

    def blpop(self, key: str, timeout: float) -> Any:
        return self.call("blpop", key, timeout, wait=timeout)

    def claim(self, queue_key: str, claims_key: str, worker_id: str, timeout: float) -> Any:
        return self.call("claim", queue_key, claims_key, worker_id, timeout, wait=timeout)

    def claim_many(
        self, queue_key: str, claims_key: str, worker_id: str, limit: int, timeout: float
    ) -> list[str]:
        """Atomically claim up to ``limit`` jobs in one round-trip."""

        return self.call(
            "claim_many", queue_key, claims_key, worker_id, limit, timeout, wait=timeout
        )

    def report_many(
        self, results_key: str, done_key: str, reports: Sequence[tuple[str, dict[str, Any]]]
    ) -> int:
        """Write a batch of result rows + completion events in one round-trip."""

        return self.call("report_many", results_key, done_key, list(reports))

    def rate_acquire(self, key: str, rate: float, burst: int = 1) -> float:
        """Debit one token from the server-side bucket named ``key``.

        Returns the seconds the *caller* must sleep before acting on the
        grant — the server never sleeps on our behalf.
        """

        return self.call("rate_acquire", key, rate, burst)


class DistributedTokenBucket:
    """A :class:`~repro.utils.ratelimit.TokenBucket` whose balance lives
    in the store server, shared by every worker in the fleet.

    Each acquire is one ``rate_acquire`` frame: the server debits the
    named bucket under its lock and replies with the borrow-wait, and the
    caller sleeps locally.  N workers hitting one endpoint therefore
    drain a *single* token balance — the global rate limit holds no
    matter how the fleet splits the work.  Matches the local bucket's
    surface (``try_acquire``/``acquire``/``acquire_async`` plus the
    ``waited_seconds``/``acquired`` counters) so it plugs straight into
    :class:`~repro.llm.remote.LiveEndpointModel` as its ``limiter``.
    """

    virtual_clock = False  # real wall-clock pacing, by construction

    def __init__(
        self, store: RemoteStore, key: str, rate: float, burst: int = 1
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.store = store
        self.key = key
        self.rate = float(rate)
        self.burst = int(burst)
        self.acquired = 0
        self.waited_seconds = 0.0

    def try_acquire(self) -> float:
        """Debit one token; return seconds the caller must wait before acting."""

        wait = float(self.store.rate_acquire(self.key, self.rate, self.burst))
        self.acquired += 1
        self.waited_seconds += wait
        return wait

    def acquire(self) -> float:
        """Debit one token and sleep out the borrow-wait; returns the wait."""

        wait = self.try_acquire()
        if wait > 0:
            time.sleep(wait)
        return wait

    async def acquire_async(self) -> float:
        """Async acquire: the round-trip runs in a thread, the wait is awaited."""

        loop = asyncio.get_running_loop()
        wait = await loop.run_in_executor(None, self.try_acquire)
        if wait > 0:
            await asyncio.sleep(wait)
        return wait


# -- worker-process context ----------------------------------------------------
#
# Generation tasks execute as plain pickled functions inside a worker
# process; they cannot carry live sockets or injectors in their payload.
# The running FleetWorker registers its address and injector here, and
# the task-side helpers below read them back.

_WORKER_CONTEXT: dict[str, Any] = {"address": None, "injector": None}
_PACER_LOCK = threading.Lock()
_PACERS: dict[str, DistributedTokenBucket] = {}


def worker_injector() -> FaultInjector:
    """The running worker's fault injector (a null injector elsewhere)."""

    injector = _WORKER_CONTEXT.get("injector")
    if injector is None:
        return null_injector()
    return injector


def fleet_pacer(key: str, rate: float, burst: int = 1) -> DistributedTokenBucket | None:
    """The per-process distributed pacer for ``key``, or None outside a worker.

    Memoized per key on its own store connection: every generation task in
    this process shares one bucket client, and the server side shares one
    token balance across the whole fleet.
    """

    address = _WORKER_CONTEXT.get("address")
    if address is None:
        return None
    with _PACER_LOCK:
        pacer = _PACERS.get(key)
        if pacer is None:
            pacer = DistributedTokenBucket(RemoteStore(address), key, rate, burst=burst)
            _PACERS[key] = pacer
        return pacer


class FleetWorker:
    """One out-of-process worker: claim a batch, execute, report, repeat.

    The loop claims job ids through the server's atomic ``claim_many``
    (batch size throttled by the worker's own observed per-job seconds,
    capped at ``claim_batch_limit``), unpickles each job's ``(function,
    tasks)`` payload, applies the function to every task in the chunk,
    and writes the whole batch of result lists in one ``report_many``
    round-trip, first-write-wins — a job a slow worker finishes *after*
    its lease was re-assigned cannot overwrite the authoritative result.
    Results are followed by completion events on ``jobs:done`` so the
    coordinator never polls the results hash.

    A daemon heartbeat thread on a second connection publishes
    ``(sequence, current job ids, throughput)`` every
    ``heartbeat_seconds``; the coordinator renews exactly the named
    jobs' leases, on its own clock, and folds the throughput — EWMA
    records/second split into ``generate_rps``/``score_rps`` — into
    :class:`~repro.evalcluster.master.MasterStats` for the steal policy.
    Losing the store connection mid-run is survivable on both
    connections: :meth:`RemoteStore.call` re-dials and resumes.

    ``fault_plan`` scripts this worker's chaos (each worker process keeps
    its own occurrence counters, so one plan shipped to a whole fleet
    fires per-process): ``worker.claim`` (detail = job id) supports
    ``kill`` — SIGKILL right after the claim is registered, before any
    execution or report, the exact window lease reaping exists for — and
    ``delay``; ``worker.execute`` (detail = the first task's problem id,
    falling back to the job id) supports ``kill`` and ``delay``;
    ``worker.heartbeat`` (detail = worker id) supports ``freeze`` (the
    beat is silently skipped — the worker looks dead while still
    working) and ``delay``.  Generation tasks additionally fire the
    ``worker.generate`` site (detail = problem id, via
    :func:`worker_injector`) per record, supporting ``kill`` and
    ``delay``.  Every fired fault is queued on the store under
    :data:`FAULTS_KEY` for the coordinator's event log.

    Two organic (not injected) protections ride along:

    * **strikes** — the worker counts execution attempts per job in the
      store; a job whose prior attempts already reached ``max_strikes``
      is not executed again but *quarantined*: a degraded failure row is
      written and the job completes, so a poison payload that kills
      every worker that touches it cannot cycle through the fleet
      forever.
    * **watchdog** — with ``job_deadline_seconds`` set, a daemon timer
      SIGKILLs the process if one job executes past the deadline: a hung
      payload would otherwise beat forever and its lease would never
      expire.  Death by watchdog then flows through the ordinary lease →
      requeue → strike machinery.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker_id: str | None = None,
        heartbeat_seconds: float = 1.0,
        claim_timeout: float = 0.5,
        fault_plan: FaultPlan | None = None,
        max_strikes: int = 2,
        job_deadline_seconds: float | None = None,
        claim_batch_limit: int = 4,
    ) -> None:
        if max_strikes < 1:
            raise ValueError("max_strikes must be >= 1")
        if job_deadline_seconds is not None and job_deadline_seconds <= 0:
            raise ValueError("job_deadline_seconds must be positive")
        if claim_batch_limit < 1:
            raise ValueError("claim_batch_limit must be >= 1")
        self.address = address
        self.store = RemoteStore(address)
        self.beat_store = RemoteStore(address)
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.heartbeat_seconds = heartbeat_seconds
        self.claim_timeout = claim_timeout
        self.injector = FaultInjector(fault_plan, log=self._publish_fault)
        self.max_strikes = max_strikes
        self.job_deadline_seconds = job_deadline_seconds
        self.claim_batch_limit = claim_batch_limit
        self._job_lock = threading.Lock()
        self._current_jobs: tuple[str, ...] = ()
        self._beat_sequence = 0
        # Observed throughput, folded under _job_lock: per-job wall
        # seconds (sizes the next claim batch) and records/second split
        # by phase (piggybacked on heartbeats for the steal policy).
        self._job_ewma = Ewma()
        self._generate_rps = Ewma()
        self._score_rps = Ewma()

    def _publish_fault(self, event: dict[str, Any]) -> None:
        """Queue a fired fault for the coordinator's event log (best effort).

        Uses the heartbeat connection: the main connection may be parked
        inside a blocking ``claim`` when a heartbeat-site fault fires.
        """

        try:
            self.beat_store.rpush(FAULTS_KEY, {**event, "worker": self.worker_id})
        except (ConnectionError, StoreCommandError):
            pass

    def _warm(self) -> None:
        payload = self.store.get(WARMUP_KEY)
        if payload is None:
            return
        from repro.scoring.compiled import warm_reference_store

        warm_reference_store(pickle.loads(payload))

    def _beat_once(self) -> None:
        spec = self.injector.fire("worker.heartbeat", self.worker_id)
        if spec is not None and spec.kind == "freeze":
            return  # skip silently: to the coordinator this worker looks dead
        self.injector.sleep_if_delay(spec, self.worker_id, self._beat_sequence)
        self._beat_sequence += 1
        with self._job_lock:
            current = self._current_jobs
            throughput: dict[str, float] = {}
            if self._generate_rps.value is not None:
                throughput["generate_rps"] = self._generate_rps.value
            if self._score_rps.value is not None:
                throughput["score_rps"] = self._score_rps.value
        try:
            self.beat_store.hset(
                HEARTBEATS_KEY, self.worker_id, (self._beat_sequence, current, throughput)
            )
        except (ConnectionError, StoreCommandError):
            pass  # a fully lost store ends the claim loop anyway

    def _beat_loop(self, stop: threading.Event) -> None:
        while not stop.is_set():
            self._beat_once()
            stop.wait(self.heartbeat_seconds)

    def _watchdog_fire(self, job_id: str) -> None:
        """A job ran past its deadline: report the kill, then vanish."""

        try:
            self.beat_store.rpush(
                FAULTS_KEY,
                {
                    "event": "watchdog",
                    "worker": self.worker_id,
                    "job": job_id,
                    "deadline": self.job_deadline_seconds,
                },
            )
        except (ConnectionError, StoreCommandError):
            pass
        os.kill(os.getpid(), signal.SIGKILL)

    def _observe(self, results: Sequence[Any], elapsed: float) -> None:
        """Fold one finished job into the throughput EWMAs.

        Result shapes carry their own timing: a generation outcome has
        ``generate_seconds``/``score_seconds`` attributes, a timed score
        envelope is a ``(card, seconds)`` tuple.  Untimed results still
        feed the per-job EWMA that sizes the next claim batch.
        """

        gen_records, gen_seconds = 0, 0.0
        score_records, score_seconds = 0, 0.0
        for item in results:
            generate = getattr(item, "generate_seconds", None)
            score = getattr(item, "score_seconds", None)
            if generate is not None:
                gen_records += 1
                gen_seconds += float(generate)
            if score is not None:
                score_records += 1
                score_seconds += float(score)
            elif (
                generate is None
                and isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[1], (int, float))
            ):
                score_records += 1
                score_seconds += float(item[1])
        with self._job_lock:
            self._job_ewma.observe(elapsed)
            if gen_records and gen_seconds > 0:
                self._generate_rps.observe(gen_records / gen_seconds)
            if score_records and score_seconds > 0:
                self._score_rps.observe(score_records / score_seconds)

    def _claim_limit(self) -> int:
        """How many jobs to claim this round.

        One at a time until the per-job EWMA exists, then up to
        ``claim_batch_limit`` — capped so a batch stays around two
        heartbeat periods of work.  A slow worker naturally claims small
        batches (less to strand when it dies); a fast one amortizes the
        claim round-trip over more jobs.
        """

        with self._job_lock:
            per_job = self._job_ewma.value
        if per_job is None:
            return 1
        budget = int(2.0 * self.heartbeat_seconds / max(per_job, 1e-6))
        return max(1, min(self.claim_batch_limit, budget))

    def _execute(self, job_id: str) -> tuple[str, dict[str, Any]] | None:
        """Run one claimed job; return its ``(job_id, row)`` report.

        Returns None for a stale re-enqueue of an already-collected job
        (nothing to report).  The caller batches rows into one
        ``report_many`` round-trip per claim batch.
        """

        payload = self.store.get(_PAYLOAD_PREFIX + job_id)
        if payload is None:
            return None  # stale re-enqueue of an already-collected job
        attempts = self.store.incr(_STRIKES_PREFIX + job_id)
        if attempts > self.max_strikes:
            # Every allowed attempt already died mid-execution: this
            # payload is poison.  Quarantine it — a degraded failure
            # row and a completion event — instead of feeding it
            # another worker.  The message is deterministic (no
            # clocks, no worker ids) so degraded runs are replayable.
            return (
                job_id,
                {
                    "worker": self.worker_id,
                    "finished_at": time.time(),
                    "passed": False,
                    "degraded": True,
                    "result": f"quarantined after {self.max_strikes} strikes",
                },
            )
        try:
            function, tasks = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - failures are results
            row: dict[str, Any] = {
                "worker": self.worker_id,
                "finished_at": time.time(),
                "passed": False,
                "result": f"{type(exc).__name__}: {exc}",
            }
        else:
            first = tasks[0] if tasks else None
            problem = getattr(first, "problem", None)
            request = getattr(first, "request", None)
            detail = (
                getattr(first, "problem_id", None)
                or getattr(problem, "problem_id", None)
                or getattr(getattr(request, "problem", None), "problem_id", None)
                or job_id
            )
            spec = self.injector.fire("worker.execute", str(detail))
            if spec is not None and spec.kind == "kill":
                # Vanish as a power cut would: claim registered and
                # strike counted, no report, no further heartbeats.
                os.kill(os.getpid(), signal.SIGKILL)
            self.injector.sleep_if_delay(spec, detail)
            watchdog: threading.Timer | None = None
            if self.job_deadline_seconds is not None:
                watchdog = threading.Timer(
                    self.job_deadline_seconds, self._watchdog_fire, args=(job_id,)
                )
                watchdog.daemon = True
                watchdog.start()
            started = time.monotonic()
            try:
                result = [function(task) for task in tasks]
                self._observe(result, time.monotonic() - started)
                row = {
                    "worker": self.worker_id,
                    "finished_at": time.time(),
                    "passed": True,
                    "result": result,
                }
            except Exception as exc:  # noqa: BLE001 - failures are results
                row = {
                    "worker": self.worker_id,
                    "finished_at": time.time(),
                    "passed": False,
                    "result": f"{type(exc).__name__}: {exc}",
                }
            finally:
                if watchdog is not None:
                    watchdog.cancel()
            # The process survived this execution, so the attempt was not
            # a mid-flight death: release the strike.  Strikes thus count
            # only executions that are in flight *right now* or took their
            # worker down — exactly what the quarantine rule and the
            # reaper's free-re-enqueue refinement need, even though the
            # report itself may still be parked in this claim batch.
            self.store.incr(_STRIKES_PREFIX + job_id, -1)
        return (job_id, row)

    def run(self) -> None:
        """Claim and execute jobs until the stop flag is raised."""

        # Register this worker's context so pickled generation tasks can
        # reach the store (distributed pacing) and the fault injector.
        _WORKER_CONTEXT["address"] = self.address
        _WORKER_CONTEXT["injector"] = self.injector
        self._warm()
        self._beat_once()
        stop = threading.Event()
        threading.Thread(
            target=self._beat_loop, args=(stop,), name="fleet-heartbeat", daemon=True
        ).start()
        try:
            while True:
                job_ids = self.store.claim_many(
                    Master.QUEUE_KEY,
                    CLAIMS_KEY,
                    self.worker_id,
                    self._claim_limit(),
                    self.claim_timeout,
                )
                if not job_ids:
                    if self.store.get(STOP_KEY):
                        return
                    continue
                # Every claimed job stays in the heartbeat until the
                # whole batch is *reported* — a finished-but-unreported
                # job must keep its lease alive or the reaper would hand
                # it out again while the report sits in this batch.
                with self._job_lock:
                    self._current_jobs = tuple(job_ids)
                reports: list[tuple[str, dict[str, Any]]] = []
                try:
                    for job_id in job_ids:
                        spec = self.injector.fire("worker.claim", job_id)
                        if spec is not None and spec.kind == "kill":
                            # Vanish as a power cut would — claim
                            # registered, no report, no further
                            # heartbeats: the exact window lease reaping
                            # exists for.
                            os.kill(os.getpid(), signal.SIGKILL)
                        self.injector.sleep_if_delay(spec, job_id)
                        report = self._execute(job_id)
                        if report is not None:
                            reports.append(report)
                    if reports:
                        self.store.report_many(Master.RESULTS_KEY, DONE_KEY, reports)
                finally:
                    with self._job_lock:
                        self._current_jobs = ()
        finally:
            stop.set()
            self.store.close()
            self.beat_store.close()


def run_worker(
    address: tuple[str, int],
    worker_id: str | None = None,
    heartbeat_seconds: float = 1.0,
    claim_timeout: float = 0.5,
    fault_plan: FaultPlan | None = None,
    max_strikes: int = 2,
    job_deadline_seconds: float | None = None,
    claim_batch_limit: int = 4,
) -> None:
    """Module-level worker entry (importable for ``multiprocessing``)."""

    FleetWorker(
        address,
        worker_id=worker_id,
        heartbeat_seconds=heartbeat_seconds,
        claim_timeout=claim_timeout,
        fault_plan=fault_plan,
        max_strikes=max_strikes,
        job_deadline_seconds=job_deadline_seconds,
        claim_batch_limit=claim_batch_limit,
    ).run()


class FleetExecutor:
    """Ordered map over picklable tasks executed by out-of-process workers.

    Two deployment shapes:

    * **Self-hosted** (``num_workers=N``): the first ``map`` starts an
      in-process :class:`StoreServer` on an ephemeral port and spawns
      ``N`` worker subprocesses (``python -m repro.evalcluster.fleet
      worker``); ``close()`` raises the stop flag and reaps them.
    * **Attached** (``address=(host, port)``): an external store is
      already serving and workers were started by hand (possibly on
      other machines); ``close()`` leaves both alone.

    ``map`` submits tasks in contiguous *chunks* — one fleet job carries
    ``chunk_size`` tasks (auto-sized to roughly four jobs per worker, the
    same amortisation :class:`~repro.pipeline.executors.ProcessExecutor`
    uses) so the handful of store round-trips a job costs is paid once
    per chunk, not once per task.  Then a loop
    blocks on completion events while observing claims and heartbeats —
    every lease is stamped and renewed on *this* process's monotonic
    clock at the moment the observation arrives, so worker clock skew
    cannot corrupt lease arithmetic — and reaps expired leases through
    the master's re-enqueue-once protocol.  Results return in task
    order; identical inputs produce identical ScoreCards regardless of
    which worker ran them, so the fleet is bit-identical to the serial
    backend.

    **Degradation** (``degrade=True``, the default): a job the fleet
    infrastructure could not finish — its lease expired twice, or the
    strike counter quarantined it — fills its task slots with
    :class:`~repro.pipeline.executors.DegradedResult` markers instead of
    raising, so a run over a chaotic fleet always terminates with one
    result per task (the score stage turns the markers into error-marked
    zero records, excluded from means and counted against coverage).  A
    failure the *payload* raised still propagates as an exception —
    degradation covers infrastructure loss, not buggy task code.

    **Durability** (``journal=path``, self-hosted only): the in-process
    store is backed by a write-ahead journal, and an injected
    ``coordinator.sync``/``restart`` fault (or a real crash plus a new
    executor on the same journal) rebuilds the store from replay while
    workers and coordinator reconnect with backoff.

    **Chaos** (``fault_plan``): the seeded plan is handed to the
    coordinator (sites ``coordinator.sync``, ``server.command``) and
    shipped on every spawned worker's command line (sites
    ``worker.claim``, ``worker.execute``, ``worker.generate``,
    ``worker.heartbeat``; each worker process counts its own
    occurrences).  In self-hosted mode a
    worker that dies with jobs outstanding is respawned, up to
    ``respawn_limit`` replacements per executor, before the all-dead
    check raises.

    ``event_log`` (a JSONL path) records submit/claim/done/requeue/
    abandon/fault/respawn events for run forensics; the CI benchmark
    uploads it.
    """

    name = "fleet"
    #: The score stage switches to picklable task envelopes for this backend.
    requires_picklable_tasks = True

    def __init__(
        self,
        num_workers: int | None = None,
        address: tuple[str, int] | None = None,
        lease_seconds: float | None = 30.0,
        heartbeat_seconds: float | None = None,
        claim_timeout: float = 0.5,
        poll_seconds: float = 0.05,
        chunk_size: int | None = None,
        event_log: str | os.PathLike[str] | None = None,
        journal: str | os.PathLike[str] | None = None,
        fault_plan: FaultPlan | None = None,
        max_strikes: int = 2,
        job_deadline_seconds: float | None = None,
        respawn_limit: int = 2,
        degrade: bool = True,
        claim_batch_limit: int = 4,
    ) -> None:
        if (num_workers is None) == (address is None):
            raise ValueError(
                "pass exactly one of num_workers (self-hosted fleet) or address (attach)"
            )
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if journal is not None and address is not None:
            raise ValueError("journal is for the self-hosted store; an attached store owns its own")
        if max_strikes < 1:
            raise ValueError("max_strikes must be >= 1")
        if respawn_limit < 0:
            raise ValueError("respawn_limit must be >= 0")
        if claim_batch_limit < 1:
            raise ValueError("claim_batch_limit must be >= 1")
        self.claim_batch_limit = claim_batch_limit
        self.num_workers = num_workers
        self.address = (address[0], int(address[1])) if address is not None else None
        self.lease_seconds = lease_seconds
        if heartbeat_seconds is None:
            heartbeat_seconds = (lease_seconds / 4.0) if lease_seconds is not None else 1.0
        self.heartbeat_seconds = heartbeat_seconds
        self.claim_timeout = claim_timeout
        self.poll_seconds = poll_seconds
        self.chunk_size = chunk_size
        self.journal = Path(journal) if journal is not None else None
        self.fault_plan = fault_plan
        self.max_strikes = max_strikes
        self.job_deadline_seconds = job_deadline_seconds
        self.respawn_limit = respawn_limit
        self.degrade = degrade
        self._events = JsonlLog(event_log) if event_log is not None else None
        self._event_buffer: list[str] = []
        self._epoch = time.monotonic()
        self._lock = threading.RLock()
        self._injector = FaultInjector(fault_plan, log=self._log_fault)
        self._server: StoreServer | None = None
        self._store: RemoteStore | None = None
        self._master: Master | None = None
        self._procs: list[subprocess.Popen[bytes]] = []
        self._respawned = 0
        self._warm_problems: tuple[Any, ...] | None = None
        self._job_counter = 0
        self._job_prefix = f"job-{os.getpid()}"
        self._connect: tuple[str, int] | None = None
        self._seen_claims: dict[str, Any] = {}
        self._seen_beats: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------
    def warm(self, problems: Sequence[Any]) -> "FleetExecutor":
        """Precompile ``problems``' references in every worker process.

        Must be called before the first ``map`` (workers read the warmup
        key at startup); returns self for chaining.
        """

        if self._store is not None:
            raise RuntimeError("warm() must be called before the first map()")
        self._warm_problems = tuple(problems)
        return self

    def _ensure_started(self) -> None:
        if self._store is not None:
            return
        if self.address is None:
            self._server = StoreServer(journal=self.journal, injector=self._injector).start()
            connect = self._server.address
        else:
            connect = self.address
        store = RemoteStore(connect)
        store.ping()  # fail fast when attaching to nothing
        if self._warm_problems is not None:
            store.set(
                WARMUP_KEY,
                pickle.dumps(self._warm_problems, protocol=pickle.HIGHEST_PROTOCOL),
            )
        self._store = store
        self._master = Master(store=store, lease_seconds=self.lease_seconds)
        self._connect = connect
        if self.num_workers is not None:
            for index in range(self.num_workers):
                worker_id = f"worker-{os.getpid()}-{index}"
                self._procs.append(self._spawn_worker(worker_id))
                self._log_event("spawn", worker=worker_id)

    def _spawn_worker(self, worker_id: str) -> subprocess.Popen[bytes]:
        host, port = self._connect
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable,
            "-m",
            "repro.evalcluster.fleet",
            "worker",
            "--connect",
            f"{host}:{port}",
            "--worker-id",
            worker_id,
            "--heartbeat",
            str(self.heartbeat_seconds),
            "--claim-timeout",
            str(self.claim_timeout),
            "--max-strikes",
            str(self.max_strikes),
            "--claim-batch",
            str(self.claim_batch_limit),
        ]
        if self.fault_plan is not None:
            command += ["--fault-plan", self.fault_plan.to_json()]
        if self.job_deadline_seconds is not None:
            command += ["--job-deadline", str(self.job_deadline_seconds)]
        return subprocess.Popen(command, env=env)

    def close(self) -> None:
        """Stop managed workers and the self-hosted server, flush events."""

        with self._lock:
            if self._procs and self._store is not None:
                try:
                    self._store.set(STOP_KEY, True)
                except ConnectionError:
                    pass
            for proc in self._procs:
                try:
                    proc.wait(timeout=2.0 + 4.0 * self.claim_timeout)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
            self._procs = []
            if self._server is not None:
                self._server.close()
                self._server = None
            if self._store is not None:
                self._store.close()
                self._store = None
            self._master = None
            self._seen_claims.clear()
            self._seen_beats.clear()
            self._flush_events()

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -------------------------------------------------------
    def stats(self) -> MasterStats | None:
        """The master's queue/fleet snapshot (None before the first map)."""

        with self._lock:
            if self._master is None:
                return None
            return self._master.stats(time.monotonic())

    def _log_event(self, event: str, **fields: Any) -> None:
        if self._events is None:
            return
        payload = {"event": event, "t": round(time.monotonic() - self._epoch, 6), **fields}
        self._event_buffer.append(json.dumps(payload, sort_keys=True) + "\n")

    def _log_fault(self, event: dict[str, Any]) -> None:
        """Injector callback: a coordinator-side fault fired."""

        self._log_event("fault", **{k: v for k, v in event.items() if k != "event"})

    def _drain_faults(self) -> None:
        """Pull worker-reported fault/watchdog events into the event log.

        Workers queue their fired faults on :data:`FAULTS_KEY` (they have
        no JSONL log of their own); draining here puts injected chaos in
        the same stream as the claims/requeues it provokes.  Drained even
        with no event log configured, so the list cannot grow unbounded.
        """

        assert self._store is not None
        while True:
            try:
                event = self._store.lpop(FAULTS_KEY)
            except (ConnectionError, StoreCommandError):
                return
            if event is None:
                return
            if isinstance(event, dict):
                name = str(event.pop("event", "fault"))
                self._log_event(name, **event)

    def _flush_events(self) -> None:
        if self._events is None or not self._event_buffer:
            return
        self._events.append(self._event_buffer)
        self._event_buffer = []

    # -- the executor protocol ----------------------------------------------
    def _chunk_size_for(self, task_count: int) -> int:
        """Tasks per job: explicit override, else ~4 jobs per worker.

        In attach mode the fleet size is whatever has heartbeated so far
        (workers beat once before their first claim); an empty roster —
        workers still booting — falls back to single-task jobs, which is
        always correct, just less amortised.
        """

        if self.chunk_size is not None:
            return self.chunk_size
        if self.num_workers is not None:
            fleet_size = self.num_workers
        else:
            assert self._store is not None
            fleet_size = self._store.hlen(HEARTBEATS_KEY)
            if fleet_size < 1:
                return 1
        return max(1, task_count // (fleet_size * 4))

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        with self._lock:
            self._ensure_started()
            assert self._store is not None and self._master is not None
            size = self._chunk_size_for(len(tasks))
            chunks = [tasks[start : start + size] for start in range(0, len(tasks), size)]
            jobs: list[EvaluationJob] = []
            job_ids: list[str] = []
            for chunk in chunks:
                self._job_counter += 1
                job_id = f"{self._job_prefix}-{self._job_counter:08d}"
                job_ids.append(job_id)
                problem = getattr(chunk[0], "problem", None)
                problem_id = (
                    getattr(chunk[0], "problem_id", None)
                    or getattr(problem, "problem_id", None)
                    or job_id
                )
                self._store.set(
                    _PAYLOAD_PREFIX + job_id,
                    pickle.dumps((fn, chunk), protocol=pickle.HIGHEST_PROTOCOL),
                )
                jobs.append(EvaluationJob(job_id=job_id, problem_id=problem_id))
            # Payloads are durably in the store before any id is queued, so
            # no worker can ever claim an id whose payload is not there yet.
            self._master.submit(jobs)
            self._log_event("submit", count=len(jobs), tasks=len(tasks), chunk=size)
            rows = self._drive(set(job_ids))
            self._flush_events()
        results: list[R] = []
        for job_id, chunk in zip(job_ids, chunks):
            row = rows[job_id]
            if row["passed"]:
                results.extend(row["result"])
            elif self.degrade and row.get("degraded"):
                # The infrastructure lost this job (abandoned or
                # quarantined): fill its slots with typed markers so the
                # run terminates with a result per task.  The reason is
                # deterministic given the fault plan.
                reason = str(row.get("result") or "fleet job degraded")
                results.extend(DegradedResult(reason=reason) for _ in chunk)  # type: ignore[misc]
            else:
                raise RuntimeError(f"fleet job {job_id} failed: {row['result']}")
        return results

    # -- the coordinator loop ------------------------------------------------
    def _drive(self, outstanding: set[str]) -> dict[str, dict[str, Any]]:
        """Block until every outstanding job has a result row.

        One loop: drain completion events (the hot path), and — at most
        once per poll interval — observe claims and heartbeats, reap
        expired leases, and verify the managed workers still exist.
        """

        assert self._store is not None and self._master is not None
        rows: dict[str, dict[str, Any]] = {}
        last_sync = -1.0
        while outstanding:
            job_id = self._store.blpop(DONE_KEY, self.poll_seconds)
            now = time.monotonic()
            if job_id is not None and job_id in outstanding:
                row = self._store.hget(Master.RESULTS_KEY, job_id)
                if row is not None:
                    self._collect(job_id, row, rows, outstanding)
            if now - last_sync >= self.poll_seconds:
                last_sync = now
                spec = self._injector.fire("coordinator.sync")
                if spec is not None and spec.kind == "restart":
                    self._restart_server()
                else:
                    self._injector.sleep_if_delay(spec)
                self._sync_claims(now, outstanding)
                self._sync_heartbeats(now)
                self._reap(now, rows, outstanding)
                self._drain_faults()
                self._check_workers(outstanding)
        # One last observation pass: a short map can drain entirely within a
        # single sync window, and stats()/the leaderboard footer should still
        # see every worker that participated.
        self._sync_heartbeats(time.monotonic())
        self._drain_faults()
        return rows

    def _restart_server(self) -> None:
        """Injected ``restart`` fault: kill the self-hosted store and
        rebuild it on the same port from its journal.

        Clients (workers, and this coordinator's own :class:`RemoteStore`)
        see their connections die and reconnect with backoff; the journal
        replay restores exactly the acknowledged pre-crash state, so the
        run resumes as if the store process had been SIGKILLed and
        relaunched.  Without a journal (or in attach mode) the fault is
        logged and skipped — there would be no state to come back to.
        """

        if self._server is None or self.journal is None:
            self._log_event("restart-skipped", reason="no self-hosted journal-backed store")
            return
        host, port = self._server.host, self._server.port
        self._server.crash()
        self._server = StoreServer(
            host=host, port=port, journal=self.journal, injector=self._injector
        ).start()
        replayed = getattr(self._server.store, "replayed_ops", None)
        self._log_event("restart", port=port, replayed=replayed)

    def _collect(
        self,
        job_id: str,
        row: dict[str, Any],
        rows: dict[str, dict[str, Any]],
        outstanding: set[str],
    ) -> None:
        assert self._store is not None and self._master is not None
        rows[job_id] = row
        outstanding.discard(job_id)
        self._master.note_completed(job_id)
        self._store.hdel(CLAIMS_KEY, job_id)
        self._seen_claims.pop(job_id, None)
        self._store.delete(_PAYLOAD_PREFIX + job_id)
        self._store.delete(_STRIKES_PREFIX + job_id)
        self._log_event("done", job=job_id, worker=row.get("worker"), passed=row.get("passed"))

    def _sync_claims(self, now: float, outstanding: set[str]) -> None:
        assert self._store is not None and self._master is not None
        for job_id, value in self._store.hgetall(CLAIMS_KEY).items():
            if job_id not in outstanding or self._seen_claims.get(job_id) == value:
                continue
            self._seen_claims[job_id] = value
            worker_id, _sequence = value
            self._master.note_claim(job_id, worker_id, now)
            self._log_event("claim", job=job_id, worker=worker_id)

    @staticmethod
    def _parse_heartbeat(value: Any) -> tuple[int, tuple[str, ...], dict[str, float]]:
        """Decode one heartbeat value, tolerating the legacy 2-tuple shape.

        Current workers publish ``(sequence, job ids, throughput)``;
        pre-batching workers published ``(sequence, job id or None)``.
        Mixed fleets (a rolling upgrade) must not strand the old shape.
        """

        sequence = value[0]
        current = value[1] if len(value) > 1 else None
        if current is None:
            jobs: tuple[str, ...] = ()
        elif isinstance(current, str):
            jobs = (current,)
        else:
            jobs = tuple(current)
        throughput = dict(value[2]) if len(value) > 2 and value[2] else {}
        return sequence, jobs, throughput

    def _sync_heartbeats(self, now: float) -> None:
        assert self._store is not None and self._master is not None
        for worker_id, value in self._store.hgetall(HEARTBEATS_KEY).items():
            sequence, jobs, throughput = self._parse_heartbeat(value)
            if self._seen_beats.get(worker_id) == sequence:
                continue  # no fresh beat: do NOT renew from a stale value
            self._seen_beats[worker_id] = sequence
            self._master.record_heartbeat(worker_id, now, jobs=jobs, throughput=throughput)

    def worker_relative_speeds(self) -> list[float]:
        """Observed per-worker speeds, normalised to the fleet mean.

        Each worker's heartbeat-reported rates (generate + score
        records/second) are summed and divided by the fleet average, so
        ``1.0`` is an average worker, ``0.5`` half speed.  Sorted
        descending; empty before any throughput has been observed.  The
        scheduler cycles these onto its consumer threads to weight steal
        decisions by who is actually claiming.
        """

        with self._lock:
            stats = None if self._master is None else self._master.stats(time.monotonic())
        if stats is None or not stats.worker_throughput:
            return []
        totals = [sum(rates.values()) for rates in stats.worker_throughput.values()]
        totals = [total for total in totals if total > 0]
        if not totals:
            return []
        mean = sum(totals) / len(totals)
        return sorted((total / mean for total in totals), reverse=True)

    def _attempts_of(self, job_id: str) -> int:
        """Execution attempts currently charged against ``job_id``.

        Read from the worker-maintained strike counters: zero means the
        dead claimant never started (or cleanly finished) this job, so
        the reaper re-enqueues it without burning its once-only budget —
        a batch-claiming worker's death must not poison-flag the innocent
        jobs stranded in its batch.  A store hiccup counts as one attempt
        (the conservative, pre-batching behavior).
        """

        assert self._store is not None
        try:
            return max(0, int(self._store.get(_STRIKES_PREFIX + job_id) or 0))
        except (ConnectionError, StoreCommandError):
            return 1

    def _reap(self, now: float, rows: dict[str, dict[str, Any]], outstanding: set[str]) -> None:
        assert self._store is not None and self._master is not None
        if self.lease_seconds is None:
            return
        expiry = self._master.next_lease_expiry()
        if expiry is None or now < expiry:
            return
        requeued = self._master.reap_expired(now, attempts=self._attempts_of)
        for job_id in requeued:
            # The master already cleared the claim row before re-queueing;
            # deleting it here again could race a parked worker's instant
            # re-claim and erase the *fresh* claim.  Only forget the stale
            # value so the re-claim is synced as new.
            self._seen_claims.pop(job_id, None)
            self._log_event("requeue", job=job_id)
        # A job reaped twice was reported failed by the master itself; no
        # completion event will ever arrive for it, so collect it here.
        for job_id in self._master.abandoned_jobs() & outstanding:
            row = self._store.hget(Master.RESULTS_KEY, job_id)
            if row is not None:
                self._collect(job_id, row, rows, outstanding)
                self._log_event("abandon", job=job_id)

    def _check_workers(self, outstanding: set[str]) -> None:
        """Self-hosted mode: respawn dead workers, fail when all are gone.

        A worker process that exited with jobs outstanding (a crash, an
        injected kill, the watchdog) is replaced — same spawn arguments,
        a fresh worker id — up to ``respawn_limit`` replacements per
        executor, so a chaotic run keeps its fleet size.  Only when every
        process is dead and the respawn budget is spent does the
        coordinator raise.  In attach mode it cannot know the fleet's
        size, so it keeps waiting — leases still requeue work for
        whoever shows up.
        """

        if not self._procs:
            return
        alive: list[subprocess.Popen[bytes]] = []
        for proc in self._procs:
            if proc.poll() is None:
                alive.append(proc)
                continue
            self._log_event("worker-exit", code=proc.returncode)
            if outstanding and self._respawned < self.respawn_limit:
                self._respawned += 1
                worker_id = f"worker-{os.getpid()}-r{self._respawned}"
                alive.append(self._spawn_worker(worker_id))
                self._log_event("respawn", worker=worker_id)
        self._procs = alive
        if not self._procs:
            raise RuntimeError(
                f"all fleet worker processes exited (respawn budget "
                f"{self.respawn_limit} spent) with {len(outstanding)} jobs outstanding"
            )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``fleet store`` serves a store, ``fleet worker`` joins a fleet."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.evalcluster.fleet",
        description="Run a fleet store server or a fleet worker.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    store_cmd = commands.add_parser("store", help="serve a RedisLikeStore over TCP")
    store_cmd.add_argument("--host", default="127.0.0.1")
    store_cmd.add_argument("--port", type=int, default=6399)
    store_cmd.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead journal file; an existing one is replayed on start",
    )

    worker_cmd = commands.add_parser("worker", help="claim and execute jobs from a store")
    worker_cmd.add_argument("--connect", required=True, metavar="HOST:PORT")
    worker_cmd.add_argument("--worker-id", default=None)
    worker_cmd.add_argument("--heartbeat", type=float, default=1.0)
    worker_cmd.add_argument("--claim-timeout", type=float, default=0.5)
    worker_cmd.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help="seeded FaultPlan (FaultPlan.to_json()) scripting this worker's chaos",
    )
    worker_cmd.add_argument(
        "--max-strikes",
        type=int,
        default=2,
        help="execution attempts a job gets before the worker quarantines it",
    )
    worker_cmd.add_argument(
        "--job-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: SIGKILL self if one job executes past this deadline",
    )
    worker_cmd.add_argument(
        "--claim-batch",
        type=int,
        default=4,
        metavar="N",
        help="upper bound on jobs claimed per claim_many round-trip",
    )

    args = parser.parse_args(argv)
    if args.command == "store":
        server = StoreServer(host=args.host, port=args.port, journal=args.journal).start()
        print(f"fleet store serving on {server.host}:{server.port}", flush=True)
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            server.close()
        return 0

    host, _, port = args.connect.rpartition(":")
    run_worker(
        (host, int(port)),
        worker_id=args.worker_id,
        heartbeat_seconds=args.heartbeat,
        claim_timeout=args.claim_timeout,
        fault_plan=FaultPlan.from_json(args.fault_plan) if args.fault_plan else None,
        max_strikes=args.max_strikes,
        job_deadline_seconds=args.job_deadline,
        claim_batch_limit=args.claim_batch,
    )
    return 0


if __name__ == "__main__":
    # ``python -m repro.evalcluster.fleet`` executes this file as
    # ``__main__`` — a *second* module instance, separate from the
    # ``repro.evalcluster.fleet`` that pickled payloads import.  A worker
    # must run under the canonical instance or its registered context
    # (``_WORKER_CONTEXT``: the store address for distributed pacing, the
    # fault injector for ``worker.generate`` chaos) would be invisible to
    # :func:`repro.pipeline.stages.run_generation_task`.
    from repro.evalcluster.fleet import main as _canonical_main

    raise SystemExit(_canonical_main())
