"""Compiled-reference scoring engine.

Every problem's reference is immutable, yet the legacy scoring path
re-derived all reference-side artifacts — the stripped plain text, the
normalized comparison text, the significant-line list, the BLEU token
sequence and n-gram counts, the parsed documents and the labeled wildcard
tree — on *every* :func:`~repro.scoring.aggregate.score_answer` call.  At
benchmark scale (12 models x 1011 problems x multi-sample sweeps) that is
tens of thousands of redundant YAML parses.

This module precomputes those artifacts once per problem into a
:class:`CompiledReference` (cached on the :class:`~repro.dataset.problem.Problem`
instance and optionally in a :class:`ReferenceStore`), scores answers
against the compiled form, and provides :func:`score_batch` — the batch
entry point that additionally dedupes identical ``(problem_id, response)``
pairs and can fan work out over a thread or process pool.

The compiled path is numerically identical to the legacy string path; the
equivalence is asserted over the full dataset by
``tests/scoring/test_compiled_equivalence.py``.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.dataset.problem import Problem
from repro.mlkit.bleu import ReferenceNgrams, compile_reference_ngrams, sentence_bleu_compiled
from repro.mlkit.tokenize import yaml_tokenize
from repro.postprocess import extract_yaml
from repro.scoring.aggregate import ScoreCard
from repro.scoring.text_level import normalize_text
from repro.scoring.yaml_aware import (
    key_value_exact_match_docs,
    key_value_wildcard_match_docs,
    load_match_documents,
)
from repro.testexec.executor import execute_unit_test
from repro.testexec.steps import UnitTestProgram
from repro.yamlkit.diffing import scaled_edit_similarity_lines, significant_lines
from repro.yamlkit.labels import LabeledNode, parse_labeled_yaml, strip_labels
from repro.yamlkit.parsing import YamlParseError, load_all_documents

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scoring.cache import ScoreCache

__all__ = [
    "CompiledReference",
    "ReferenceStore",
    "ScoreTask",
    "answer_digest",
    "compile_reference",
    "get_compiled_reference",
    "peek_compiled_reference",
    "score_answer_compiled",
    "score_extracted",
    "score_batch",
    "run_score_task",
    "warm_reference_store",
]

#: Attribute used to cache the compiled reference on the Problem instance.
#: ``Problem`` is a frozen dataclass, so the cache is attached through
#: ``object.__setattr__``; the artifact is derived purely from immutable
#: fields, so this does not break value semantics.
_CACHE_ATTR = "_compiled_reference"


@dataclass(frozen=True)
class CompiledReference:
    """Every reference-side artifact the six metrics need, computed once.

    Attributes
    ----------
    reference_plain:
        Reference YAML with label comments stripped (the ideal answer).
    normalized_plain:
        :func:`~repro.scoring.text_level.normalize_text` of the plain text,
        compared against normalized candidates for exact match.
    reference_lines:
        Significant lines of the plain text for the edit-distance metric.
    reference_ngrams:
        Per-order n-gram ``Counter``s plus token length for BLEU.
    reference_documents:
        Parsed plain documents for key-value exact match, or ``None`` when
        the reference does not parse into containers.
    labeled_tree:
        The :class:`~repro.yamlkit.labels.LabeledNode` wildcard tree, or
        ``None`` when the labeled reference does not parse.
    """

    problem_id: str
    reference_yaml: str
    reference_plain: str
    normalized_plain: str
    reference_lines: tuple[str, ...]
    reference_tokens: tuple[str, ...]
    reference_ngrams: ReferenceNgrams
    reference_documents: tuple[Any, ...] | None
    labeled_tree: LabeledNode | None
    unit_test: UnitTestProgram

    @property
    def digest(self) -> str:
        """Stable content digest of every reference-side scoring input.

        Covers the problem id, the labeled reference YAML and the
        serialised unit-test program — each of the six metrics is a pure
        function of these plus the extracted answer, so
        ``(digest, answer_digest, scorer version)`` content-addresses a
        ScoreCard across runs, machines and tenants.  The derived
        artifacts (lines, n-grams, parsed docs) are deterministic
        functions of these inputs and deliberately excluded: hashing them
        would only make the digest sensitive to representation details.
        The value is cached on the instance (same discipline as the
        Problem-side compilation cache).
        """

        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = json.dumps(
                {
                    "problem_id": self.problem_id,
                    "reference_yaml": self.reference_yaml,
                    "unit_test": self.unit_test.to_dict(),
                },
                sort_keys=True,
                ensure_ascii=False,
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


def answer_digest(extracted: str) -> str:
    """Content digest of an extracted (post-processed) answer.

    Taken over the extracted YAML rather than the raw response: every
    metric depends only on the extracted text, so prose-wrapped variants
    of one answer share a digest — the same key the in-run dedupe uses.
    """

    return hashlib.sha256(extracted.encode("utf-8")).hexdigest()


def compile_reference(problem: Problem) -> CompiledReference:
    """Precompute every reference-side scoring artifact for ``problem``."""

    reference_plain = strip_labels(problem.reference_yaml)
    tokens = yaml_tokenize(reference_plain)
    try:
        labeled_tree: LabeledNode | None = parse_labeled_yaml(problem.reference_yaml)
    except YamlParseError:
        labeled_tree = None
    documents = load_match_documents(reference_plain)
    return CompiledReference(
        problem_id=problem.problem_id,
        reference_yaml=problem.reference_yaml,
        reference_plain=reference_plain,
        normalized_plain=normalize_text(reference_plain),
        reference_lines=tuple(significant_lines(reference_plain)),
        reference_tokens=tuple(tokens),
        reference_ngrams=compile_reference_ngrams(tokens),
        reference_documents=None if documents is None else tuple(documents),
        labeled_tree=labeled_tree,
        unit_test=problem.unit_test,
    )


def get_compiled_reference(problem: Problem) -> CompiledReference:
    """Return the problem's compiled reference, compiling on first use.

    The result is cached on the ``Problem`` instance, so every consumer of
    the same dataset (benchmarks, analysis, tests) shares one compilation.
    """

    cached = problem.__dict__.get(_CACHE_ATTR)
    if cached is not None:
        return cached
    compiled = compile_reference(problem)
    object.__setattr__(problem, _CACHE_ATTR, compiled)
    return compiled


def peek_compiled_reference(problem: Problem) -> CompiledReference | None:
    """The instance-cached compiled reference, or None — never compiles.

    Process-pool task envelopes use this to ship an already-paid-for
    compilation to the worker instead of making the worker redo it, while
    a cold problem ships bare (compiling in the parent here would
    serialise exactly the work the pool exists to spread out).
    """

    return problem.__dict__.get(_CACHE_ATTR)


class ReferenceStore:
    """A ProblemSet-level store of compiled references.

    The instance-level cache on ``Problem`` already makes compilation a
    once-per-problem cost; the store adds an explicit, inspectable handle —
    benchmarks share one across models, and it can be precompiled up front
    to move every compile out of the scoring loop.
    """

    def __init__(self) -> None:
        self._by_key: dict[tuple[str, str], CompiledReference] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def get(self, problem: Problem) -> CompiledReference:
        key = (problem.problem_id, problem.reference_yaml)
        compiled = self._by_key.get(key)
        if compiled is None:
            compiled = get_compiled_reference(problem)
            self._by_key[key] = compiled
        return compiled

    def peek(self, problem: Problem) -> CompiledReference | None:
        """An already-compiled reference from this store or the instance
        cache, or None — never triggers compilation."""

        key = (problem.problem_id, problem.reference_yaml)
        return self._by_key.get(key) or peek_compiled_reference(problem)

    def precompile(self, problems: Iterable[Problem]) -> "ReferenceStore":
        """Eagerly compile every problem's reference; returns self."""

        for problem in problems:
            self.get(problem)
        return self


def score_answer_compiled(
    compiled: CompiledReference,
    raw_response: str,
    run_unit_tests: bool = True,
) -> ScoreCard:
    """Score one raw response against a compiled reference.

    The candidate is post-processed and parsed exactly once (the legacy
    path parsed it separately for each YAML-aware metric); all reference
    artifacts come precomputed from ``compiled``.
    """

    return score_extracted(compiled, extract_yaml(raw_response), run_unit_tests)


def score_extracted(compiled: CompiledReference, extracted: str, run_unit_tests: bool) -> ScoreCard:
    """Score an already post-processed answer against a compiled reference.

    The candidate is parsed exactly once; the document list (or the parse
    error) is shared between the key-value metrics and the unit-test
    executor, which re-parsed the answer on every apply in the legacy path.
    """

    parsed_answer: list[Any] | YamlParseError
    try:
        parsed_answer = load_all_documents(extracted)
    except YamlParseError as exc:
        parsed_answer = exc

    if isinstance(parsed_answer, YamlParseError):
        generated_docs = None
    elif not parsed_answer or not all(isinstance(d, (dict, list)) for d in parsed_answer):
        generated_docs = None
    else:
        generated_docs = parsed_answer
    reference_docs = None if compiled.reference_documents is None else list(compiled.reference_documents)

    unit_test_value = 0.0
    failure_message = ""
    if run_unit_tests:
        result = execute_unit_test(compiled.unit_test, extracted, parsed_answer)
        unit_test_value = result.score
        failure_message = result.message

    return ScoreCard(
        problem_id=compiled.problem_id,
        bleu=sentence_bleu_compiled(yaml_tokenize(extracted), compiled.reference_ngrams),
        edit_distance=scaled_edit_similarity_lines(significant_lines(extracted), list(compiled.reference_lines)),
        exact_match=1.0 if normalize_text(extracted) == compiled.normalized_plain else 0.0,
        kv_exact=key_value_exact_match_docs(generated_docs, reference_docs),
        kv_wildcard=key_value_wildcard_match_docs(generated_docs, compiled.labeled_tree),
        unit_test=unit_test_value,
        extracted_yaml=extracted,
        failure_message=failure_message,
    )


# ---------------------------------------------------------------------------
# Process-pool scoring envelopes
# ---------------------------------------------------------------------------

#: The per-process reference store used by :func:`run_score_task`.  In a
#: ``ProcessPoolExecutor`` worker this memoises compiled references across
#: every task the worker handles (pickled ``Problem`` copies are distinct
#: instances, so the per-instance cache alone would recompile per task).
_PROCESS_STORE: ReferenceStore | None = None


def warm_reference_store(problems: Iterable[Problem] = ()) -> ReferenceStore:
    """Create (and optionally precompile) this process's reference store.

    Intended as a ``ProcessPoolExecutor`` initializer: pass a problem
    tuple via ``initargs`` and every worker compiles each reference once
    at boot, moving all compilation off the scoring critical path.  Safe
    to call repeatedly — later calls only add missing problems.
    """

    global _PROCESS_STORE
    if _PROCESS_STORE is None:
        _PROCESS_STORE = ReferenceStore()
    return _PROCESS_STORE.precompile(problems)


@dataclass(frozen=True)
class ScoreTask:
    """A picklable unit of scoring work for process-backed executors.

    The envelope carries the raw ``Problem`` (pickled without its instance
    caches, so it stays small) plus — when the parent process had already
    compiled the reference — the compiled artifact itself: shipping a
    paid-for compilation is pure IPC bytes, while recompiling it in every
    worker is pure wasted CPU.  A cold problem ships bare and the
    worker-side store compiles it at most once per process.
    """

    problem: Problem
    extracted: str
    run_unit_tests: bool = True
    compiled: CompiledReference | None = None


def run_score_task(task: ScoreTask) -> ScoreCard:
    """Score one envelope, preferring its pre-shipped compiled reference."""

    compiled = task.compiled
    if compiled is None:
        compiled = warm_reference_store().get(task.problem)
    return score_extracted(compiled, task.extracted, task.run_unit_tests)


# ---------------------------------------------------------------------------
# Batch scoring
# ---------------------------------------------------------------------------

def _score_task(task: tuple[CompiledReference, str, bool]) -> ScoreCard:
    compiled, extracted, run_unit_tests = task
    return score_extracted(compiled, extracted, run_unit_tests)


def score_batch(
    items: Iterable[tuple[Problem, str]],
    *,
    run_unit_tests: bool = True,
    store: ReferenceStore | None = None,
    max_workers: int | None = None,
    executor: str = "process",
    cache: "ScoreCache | None" = None,
) -> list[ScoreCard]:
    """Score a batch of ``(problem, raw_response)`` pairs.

    Responses are post-processed up front and deduped on the *extracted*
    YAML: multi-sample and few-shot sweeps frequently repeat responses, and
    different models often produce the same answer modulo prose wrapping
    (every metric depends only on the extracted text).  Each unique
    ``(problem_id, extracted)`` pair is scored once and the resulting
    ``ScoreCard`` is shared.  Results come back in input order.

    Parameters
    ----------
    store:
        Optional :class:`ReferenceStore`; compiled references are shared
        through the per-problem instance cache either way.
    max_workers:
        With a value > 1, unique pairs are fanned out over a pool;
        otherwise scoring is sequential (deterministic by construction in
        both cases — the metrics are pure functions).
    executor:
        ``"process"`` (default) or ``"thread"`` — which pool to use when
        ``max_workers`` enables fan-out.
    cache:
        Optional :class:`~repro.scoring.cache.ScoreCache` layered *above*
        the in-run dedupe: unique pairs whose content-addressed key is
        already cached skip scoring entirely (and never reach the pool),
        and every freshly scored pair is written back once — so a repeat
        of this batch in a later run, or by another tenant sharing the
        cache file, is served in O(1) per pair.
    """

    pairs = [(problem, response) for problem, response in items]
    lookup = store.get if store is not None else get_compiled_reference

    keys: list[tuple[str, str]] = []
    unique: dict[tuple[str, str], tuple[CompiledReference, str, bool]] = {}
    cached: dict[tuple[str, str], ScoreCard] = {}
    for problem, response in pairs:
        extracted = extract_yaml(response)
        key = (problem.problem_id, extracted)
        keys.append(key)
        if key in unique or key in cached:
            continue
        compiled = lookup(problem)
        if cache is not None:
            hit = cache.get(compiled.digest, answer_digest(extracted), run_unit_tests)
            if hit is not None:
                cached[key] = hit
                continue
        unique[key] = (compiled, extracted, run_unit_tests)

    unique_keys = list(unique)
    tasks = [unique[key] for key in unique_keys]

    if max_workers and max_workers > 1 and len(tasks) > 1:
        if executor == "thread":
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                cards = list(pool.map(_score_task, tasks))
        elif executor == "process":
            chunksize = max(1, len(tasks) // (max_workers * 4))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                cards = list(pool.map(_score_task, tasks, chunksize=chunksize))
        else:
            raise ValueError(f"unknown executor {executor!r} (expected 'process' or 'thread')")
    else:
        cards = [_score_task(task) for task in tasks]

    if cache is not None and tasks:
        # Write every freshly scored unique pair back — one durable append
        # for the whole batch.
        cache.put_batch(
            (compiled.digest, answer_digest(extracted), card, unit_tests)
            for (compiled, extracted, unit_tests), card in zip(tasks, cards)
        )

    by_key = dict(zip(unique_keys, cards))
    by_key.update(cached)
    return [by_key[key] for key in keys]
