"""Tests for the simulated models and the model registry."""

from __future__ import annotations

import pytest

from repro.dataset.schema import Variant
from repro.llm.registry import (
    ENGLISH_ONLY_MODELS,
    MODEL_PROFILES,
    available_models,
    calibrate_models,
    get_model,
    get_profile,
)
from repro.llm.simulated import SimulatedModel, length_band


def test_twelve_models_available():
    assert len(available_models()) == 12
    assert available_models()[0] == "gpt-4"


def test_get_model_and_profile_lookup():
    model = get_model("GPT-4")
    assert isinstance(model, SimulatedModel)
    assert model.name == "gpt-4"
    with pytest.raises(KeyError):
        get_profile("gpt-5")


def test_profiles_have_sane_probabilities():
    for profile in MODEL_PROFILES.values():
        assert 0.0 < profile.unit_test_score < 1.0
        assert abs(sum(profile.failure_mix) - 1.0) < 0.05
        assert 0.0 <= profile.exact_text_rate <= profile.exact_kv_rate <= 1.0
        assert 0.0 <= profile.chattiness <= 1.0


def test_palm_is_english_only():
    assert "palm-2-bison" in ENGLISH_ONLY_MODELS


def test_generation_is_deterministic(small_original_problems):
    problem = small_original_problems[0]
    a = get_model("llama-2-70b-chat", seed=5).generate(problem)
    b = get_model("llama-2-70b-chat", seed=5).generate(problem)
    assert a == b


def test_generation_varies_across_samples(small_original_problems):
    model = get_model("gpt-3.5")
    problem = small_original_problems[0]
    samples = {model.generate(problem, sample_index=i) for i in range(6)}
    assert len(samples) > 1


def test_pass_probability_orders_models(small_original_problems):
    problem = next(p for p in small_original_problems if p.application == "kubernetes")
    strong = get_model("gpt-4").pass_probability(problem)
    weak = get_model("codellama-13b-instruct").pass_probability(problem)
    assert strong > weak


def test_pass_probability_lower_for_envoy(small_original_problems):
    model = get_model("gpt-4")
    envoy = [p for p in small_original_problems if p.application == "envoy"]
    kubernetes = [p for p in small_original_problems if p.application == "kubernetes"]
    envoy_mean = sum(model.pass_probability(p) for p in envoy) / len(envoy)
    k8s_mean = sum(model.pass_probability(p) for p in kubernetes) / len(kubernetes)
    assert envoy_mean < k8s_mean


def test_pass_probability_within_bounds(small_dataset):
    model = get_model("gpt-4")
    for problem in small_dataset:
        assert 0.0 < model.pass_probability(problem) < 1.0


def test_length_band_boundaries(small_original_problems):
    bands = {length_band(p) for p in small_original_problems}
    assert bands <= {"short", "medium", "long"}
    assert "long" in bands  # Envoy problems are long


def test_calibration_matches_target_rate(full_original_problems):
    model = get_model("gpt-4")
    calibrated = calibrate_models([model], full_original_problems)[0]
    expected = sum(calibrated.pass_probability(p, Variant.ORIGINAL) for p in full_original_problems)
    assert abs(expected - 179) < 15  # Table 5 original pass count for GPT-4


def test_profile_with_calibration_returns_copy():
    profile = get_profile("gpt-4")
    scaled = profile.with_calibration(2.0)
    assert scaled.calibration_scale == 2.0
    assert profile.calibration_scale == 1.0
    assert scaled.name == profile.name
