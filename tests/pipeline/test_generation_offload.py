"""Generation offload at the pipeline level.

The fleet benchmark proves the wall-clock win; these tests pin the
*contracts* that make the win safe to take: the :class:`ModelSpec`
envelope's validation and build semantics, bit-identity of the offloaded
generate→extract→score chain against the parent path (healthy and
failing endpoints alike), degraded-slot handling, checkpoint resume over
an offloaded run, worker-measured timings surviving ``prepare_batch``'s
shared-elapsed stamping, and the throughput-weighted steal policy.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.llm.remote import LiveEndpointModel, ModelSpec, ReplayTransport
from repro.pipeline import EvaluationPipeline, PipelineCheckpoint
from repro.pipeline.executors import DegradedResult
from repro.pipeline.scheduler import ModelJob, MultiModelScheduler, StealPolicy
from repro.pipeline.stages import run_generation_task
from repro.pipeline import stages as stages_module
from repro.scoring.compiled import ReferenceStore
from repro.utils.ratelimit import TokenBucket


@pytest.fixture(autouse=True)
def _fresh_spec_memo():
    """:func:`run_generation_task` memoises one built model per spec *name*
    per process; this module reuses names across different specs, so every
    test starts from (and leaves behind) an empty memo."""

    stages_module._SPEC_MODELS.clear()
    yield
    stages_module._SPEC_MODELS.clear()


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


def _replay_spec(name, requests, **overrides):
    """A transport-backed spec replaying the registry model's responses."""

    inner = get_model(name)
    responses = {
        request.prompt(): inner.generate(request.problem) for request in requests
    }
    return ModelSpec(name=name, transport=ReplayTransport(responses), **overrides)


# ---------------------------------------------------------------------------
# The envelope: ModelSpec validation and build semantics
# ---------------------------------------------------------------------------


class TestModelSpec:
    def test_requires_exactly_one_model_source(self):
        with pytest.raises(ValueError, match="exactly one model source"):
            ModelSpec(name="gpt-4")
        with pytest.raises(ValueError, match="exactly one model source"):
            ModelSpec(
                name="gpt-4",
                model=get_model("gpt-4"),
                transport=ReplayTransport({}),
            )

    def test_name_must_match_the_wrapped_model(self):
        with pytest.raises(ValueError, match="does not match model name"):
            ModelSpec(name="gpt-3.5", model=get_model("gpt-4"))
        assert ModelSpec.of(get_model("gpt-4")).name == "gpt-4"

    def test_rate_limit_and_burst_are_validated(self):
        with pytest.raises(ValueError, match="rate_limit"):
            ModelSpec(name="m", transport=ReplayTransport({}), rate_limit=0.0)
        with pytest.raises(ValueError, match="burst"):
            ModelSpec(name="m", transport=ReplayTransport({}), burst=0)

    def test_limiter_key_defaults_to_the_name(self):
        spec = ModelSpec(name="m", transport=ReplayTransport({}))
        assert spec.limiter_key == "m"
        shared = ModelSpec(name="m", transport=ReplayTransport({}), pacer_key="endpoint")
        assert shared.limiter_key == "endpoint"

    def test_build_returns_a_picklable_model_as_is(self):
        model = get_model("gpt-4")
        assert ModelSpec.of(model).build() is model

    def test_build_wraps_a_transport_in_a_paced_live_endpoint(self, small_dataset):
        problem = list(small_dataset)[0]
        request = GenerationRequest(problem=problem)
        spec = _replay_spec("gpt-4", [request], rate_limit=1000.0, burst=4)

        built = spec.build()
        assert isinstance(built, LiveEndpointModel)
        assert isinstance(built.limiter, TokenBucket)
        assert not built.limiter.virtual_clock
        assert built.generate(problem) == get_model("gpt-4").generate(problem)

    def test_build_accepts_a_limiter_override(self, small_dataset):
        request = GenerationRequest(problem=list(small_dataset)[0])
        spec = _replay_spec("gpt-4", [request], rate_limit=1000.0)
        limiter = TokenBucket(500.0, burst=2, virtual_clock=False)
        assert spec.build(limiter=limiter).limiter is limiter

    def test_pipeline_rejects_a_spec_naming_another_model(self):
        spec = ModelSpec(name="gpt-3.5", transport=ReplayTransport({}))
        with pytest.raises(ValueError, match="model_spec names"):
            EvaluationPipeline(get_model("gpt-4"), model_spec=spec)

    def test_config_rejects_offload_with_a_split_generate_executor(self):
        with pytest.raises(ValueError, match="generate_executor cannot apply"):
            BenchmarkConfig(offload_generation=True, generate_executor="thread")


# ---------------------------------------------------------------------------
# Bit-identity: the offloaded chain against the parent path
# ---------------------------------------------------------------------------


class TestOffloadIdentity:
    def test_offloaded_chain_matches_default_chain(self, small_dataset):
        problems = list(small_dataset)[:12]
        model = get_model("gpt-4")
        baseline = EvaluationPipeline(model, store=ReferenceStore()).run(
            _requests(problems)
        )

        offloaded = EvaluationPipeline(
            model,
            model_spec=ModelSpec.of(model),
            executor="serial",
            store=ReferenceStore(),
        )
        assert [stage.name for stage in offloaded.stages] == ["prompt", "fleet-generate"]
        assert offloaded.run(_requests(problems)).records == baseline.records

    def test_offloaded_replay_endpoint_matches_parent_endpoint(self, small_dataset):
        requests = _requests(list(small_dataset)[:10])
        spec = _replay_spec("gpt-4", requests, rate_limit=10_000.0, burst=8)

        parent = EvaluationPipeline(spec.build(), store=ReferenceStore()).run(requests)
        offloaded = EvaluationPipeline(
            spec.build(),
            model_spec=spec,
            executor="serial",
            store=ReferenceStore(),
        ).run(requests)
        assert offloaded.records == parent.records

    def test_endpoint_failures_are_captured_identically(self, small_dataset):
        """A replay gap raises EndpointError on both paths; both capture it
        as the same ``{type}: {message}`` error with a zero-score record."""

        requests = _requests(list(small_dataset)[:4])
        spec = _replay_spec("gpt-4", requests[:-1])  # last prompt unrecorded

        parent = EvaluationPipeline(spec.build(), store=ReferenceStore()).run(requests)
        offloaded = EvaluationPipeline(
            spec.build(),
            model_spec=spec,
            executor="serial",
            store=ReferenceStore(),
        ).run(requests)
        assert offloaded.records == parent.records
        failed = offloaded.records[-1]
        assert failed.error.startswith("EndpointError:")
        assert failed.raw_response == ""
        assert failed.scores.exact_match == 0.0

    def test_config_level_offload_changes_no_score(self, small_dataset):
        problems = list(small_dataset)[:8]
        plain = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
        offload = CloudEvalBenchmark(
            small_dataset, BenchmarkConfig(seed=7, offload_generation=True)
        )
        assert (
            offload.evaluate_model("gpt-4", problems=problems).records
            == plain.evaluate_model("gpt-4", problems=problems).records
        )


# ---------------------------------------------------------------------------
# Degradation and resume
# ---------------------------------------------------------------------------


class _LossyExecutor:
    """A serial executor that loses chosen slots the way the fleet does."""

    name = "lossy"

    def __init__(self, lost_indices=(), reason="job lost beyond recovery"):
        self.lost = set(lost_indices)
        self.reason = reason
        self.mapped = 0

    def map(self, fn, tasks):
        tasks = list(tasks)
        self.mapped += len(tasks)
        return [
            DegradedResult(self.reason) if index in self.lost else fn(task)
            for index, task in enumerate(tasks)
        ]


class TestDegradedOffload:
    def test_degraded_slot_becomes_an_error_marked_record(self, small_dataset):
        problems = list(small_dataset)[:5]
        model = get_model("gpt-4")
        baseline = EvaluationPipeline(model, store=ReferenceStore()).run(
            _requests(problems)
        )

        evaluation = EvaluationPipeline(
            model,
            model_spec=ModelSpec.of(model),
            executor=_LossyExecutor({2}),
            store=ReferenceStore(),
        ).run(_requests(problems))

        degraded = evaluation.records[2]
        assert degraded.error == "degraded: job lost beyond recovery"
        assert degraded.scores.failure_message == "job lost beyond recovery"
        assert degraded.scores.exact_match == 0.0
        assert degraded.scores.unit_test == 0.0
        healthy = [r for i, r in enumerate(evaluation.records) if i != 2]
        assert healthy == [r for i, r in enumerate(baseline.records) if i != 2]

    def test_degraded_records_are_retried_on_resume(self, tmp_path, small_dataset):
        """Error records never reach the checkpoint, so a resumed offloaded
        run re-ships exactly the lost envelopes and converges on the truth."""

        problems = list(small_dataset)[:6]
        model = get_model("gpt-4")
        truth = EvaluationPipeline(model, store=ReferenceStore()).run(
            _requests(problems)
        )
        path = tmp_path / "offload.ckpt.jsonl"

        first = EvaluationPipeline(
            model,
            model_spec=ModelSpec.of(model),
            executor=_LossyExecutor({1, 4}),
            store=ReferenceStore(),
            checkpoint=PipelineCheckpoint(path),
        ).run(_requests(problems))
        assert sum(1 for record in first.records if record.error) == 2

        retry = _LossyExecutor()  # loses nothing, counts shipped envelopes
        resumed = EvaluationPipeline(
            model,
            model_spec=ModelSpec.of(model),
            executor=retry,
            store=ReferenceStore(),
            checkpoint=PipelineCheckpoint(path),
        ).run(_requests(problems))
        assert retry.mapped == 2
        assert resumed.records == truth.records


# ---------------------------------------------------------------------------
# Worker-measured timings
# ---------------------------------------------------------------------------


class _StampingExecutor:
    """Runs tasks serially, then stamps distinctive worker-side timings."""

    name = "stamping"

    def map(self, fn, tasks):
        outcomes = [fn(task) for task in tasks]
        for index, outcome in enumerate(outcomes):
            outcome.generate_seconds = 10.0 + index
            outcome.score_seconds = 0.5
        return outcomes


class TestWorkerTimings:
    def test_worker_measured_timings_survive_prepare_batch(self, small_dataset):
        """prepare_batch spreads the batch's elapsed time over items that
        carry no measurement — but the offload stage measured each
        generation where it ran, and those numbers must not be averaged
        away."""

        problems = list(small_dataset)[:4]
        model = get_model("gpt-4")
        pipeline = EvaluationPipeline(
            model,
            model_spec=ModelSpec.of(model),
            executor=_StampingExecutor(),
            store=ReferenceStore(),
        )
        prepared = pipeline.prepare_batch(_requests(problems))
        assert [item.generate_seconds for item in prepared.items] == [
            10.0,
            11.0,
            12.0,
            13.0,
        ]
        assert all(item.score_seconds == 0.5 for item in prepared.items)

    def test_default_chain_still_shares_batch_elapsed(self, small_dataset):
        problems = list(small_dataset)[:4]
        pipeline = EvaluationPipeline(get_model("gpt-4"), store=ReferenceStore())
        prepared = pipeline.prepare_batch(_requests(problems))
        shares = {item.generate_seconds for item in prepared.items}
        assert len(shares) == 1 and shares.pop() > 0.0

    def test_run_generation_task_measures_where_it_runs(self, small_dataset):
        problem = list(small_dataset)[0]
        spec = ModelSpec.of(get_model("gpt-4"))
        outcome = run_generation_task(
            stages_module.GenerationTask(
                request=GenerationRequest(problem=problem), spec=spec
            )
        )
        assert outcome.error == ""
        assert outcome.generate_seconds > 0.0
        assert outcome.score_seconds > 0.0
        assert outcome.card.problem_id == problem.problem_id


# ---------------------------------------------------------------------------
# Throughput-weighted stealing
# ---------------------------------------------------------------------------


class TestThroughputAwareStealing:
    REMAINING = [5.0, 1.0, 3.0]
    NEXT_UNIT = [2.0, 0.5, 1.0]
    ALL = [True, True, True]

    def test_fast_claimant_takes_the_longest_straggler(self):
        policy = StealPolicy()
        chosen = policy.choose(
            self.REMAINING, self.ALL, worker_speed=1.5, next_unit_seconds=self.NEXT_UNIT
        )
        assert chosen == 0

    def test_slow_claimant_takes_the_cheapest_next_batch(self):
        policy = StealPolicy()
        chosen = policy.choose(
            self.REMAINING, self.ALL, worker_speed=0.5, next_unit_seconds=self.NEXT_UNIT
        )
        assert chosen == 1

    def test_threshold_is_strict(self):
        """Exactly at the threshold a claimant still counts as fast."""

        policy = StealPolicy()
        at_threshold = policy.choose(
            self.REMAINING,
            self.ALL,
            worker_speed=policy.slow_worker_threshold,
            next_unit_seconds=self.NEXT_UNIT,
        )
        assert at_threshold == 0

    def test_slow_claimant_without_predictions_falls_back_to_straggler(self):
        assert StealPolicy().choose(self.REMAINING, self.ALL, worker_speed=0.5) == 0

    def test_worker_speeds_change_no_record(self, small_original_problems):
        """Speed weighting only redirects *which worker* claims a batch;
        the records every model produces are bit-identical with and
        without it."""

        problems = list(small_original_problems)[:10]

        def streamed(worker_speeds):
            jobs = [
                ModelJob(get_model("gpt-4"), _requests(problems)),
                ModelJob(get_model("gpt-3.5"), _requests(problems)),
            ]
            with MultiModelScheduler(
                jobs,
                shards=2,
                store=ReferenceStore(),
                batch_size=3,
                steal=True,
                worker_speeds=worker_speeds,
            ) as scheduler:
                rows = list(scheduler.run_iter())
            return {
                name: [record for job, record in rows if job == name]
                for name in ("gpt-4", "gpt-3.5")
            }

        assert streamed(None) == streamed([2.0, 0.5])
