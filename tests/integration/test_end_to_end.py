"""End-to-end integration: generation -> post-processing -> scoring -> analysis.

These tests exercise the same pipeline the benchmark harness uses and assert
the *qualitative* findings of the paper rather than exact numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import breakdown_table
from repro.analysis.failure_modes import FailureCategory
from repro.analysis.pass_at_k import pass_at_k_curves
from repro.analysis.tables import figure7_failure_modes, table4_zero_shot, table5_augmented_passes
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.schema import Variant


def test_proprietary_models_beat_open_source(small_benchmark_result):
    rows = {row["model"]: row for row in table4_zero_shot(small_benchmark_result)}
    assert rows["gpt-4"]["unit_test"] > 2 * rows["llama-2-70b-chat"]["unit_test"]
    assert rows["gpt-3.5"]["unit_test"] > rows["llama-2-70b-chat"]["unit_test"]


def test_code_models_do_not_outperform_chat_models(small_benchmark_result):
    rows = {row["model"]: row for row in table4_zero_shot(small_benchmark_result)}
    assert rows["codellama-7b-instruct"]["unit_test"] <= rows["llama-2-13b-chat"]["unit_test"] + 0.02


def test_unit_test_score_is_hardest_metric(small_benchmark_result):
    for row in table4_zero_shot(small_benchmark_result):
        assert row["unit_test"] <= row["kv_wildcard"] + 1e-9
        assert row["exact_match"] <= row["kv_exact"] + 1e-9


def test_envoy_is_hardest_application(small_benchmark_result):
    table = breakdown_table(small_benchmark_result["gpt-4"])
    assert table["application"]["envoy"] < table["application"]["kubernetes"]


def test_translation_hurts_code_models_most(small_benchmark):
    result = small_benchmark.evaluate_models(models=["gpt-4", "wizardcoder-34b-v1.0"])
    table = table5_augmented_passes(result)
    gpt4_drop = (table["gpt-4"]["original"] or 0) - (table["gpt-4"]["translated"] or 0)
    wizard_drop = (table["wizardcoder-34b-v1.0"]["original"] or 0) - (table["wizardcoder-34b-v1.0"]["translated"] or 0)
    assert wizard_drop >= gpt4_drop


def test_failure_modes_cover_expected_categories(small_dataset, small_benchmark_result):
    histograms = figure7_failure_modes(small_dataset, small_benchmark_result, models=("gpt-4", "llama-2-70b-chat"))
    gpt4 = histograms["gpt-4"]
    llama = histograms["llama-2-70b-chat"]
    assert gpt4[FailureCategory.PASSES] > llama[FailureCategory.PASSES]
    # Category 5 (right kind, fails test) dominates the open-source model's failures.
    llama_failures = sum(v for cat, v in llama.items() if cat is not FailureCategory.PASSES)
    assert llama[FailureCategory.FAILS_UNIT_TEST] > 0.3 * llama_failures


def test_multi_sample_generation_improves_pass_rate(small_dataset):
    bench = CloudEvalBenchmark(small_dataset, BenchmarkConfig(samples=8))
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))
    evaluation = bench.evaluate_model("gpt-3.5", problems=problems)
    curves = pass_at_k_curves([evaluation], ks=(1, 4, 8))
    passed = curves[0].passed
    assert passed[-1] >= passed[0]
    assert curves[0].normalized()[-1] >= 1.0


def test_few_shot_prompting_has_no_dramatic_effect(small_dataset):
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))
    bench = CloudEvalBenchmark(small_dataset, BenchmarkConfig())
    zero = bench.evaluate_model("gpt-3.5", problems=problems, shots=0).pass_count()
    three = bench.evaluate_model("gpt-3.5", problems=problems, shots=3).pass_count()
    assert abs(three - zero) <= max(4, int(0.25 * max(zero, 1)))


def test_full_pipeline_smoke_with_two_variants(small_dataset):
    config = BenchmarkConfig(variants=(Variant.ORIGINAL, Variant.SIMPLIFIED))
    bench = CloudEvalBenchmark(small_dataset, config)
    evaluation = bench.evaluate_model("palm-2-bison")
    assert {r.variant for r in evaluation.records} == {"original", "simplified"}
    assert evaluation.mean_scores()["unit_test"] > 0


@pytest.mark.parametrize("model_name", ["gpt-4", "llama-2-70b-chat"])
def test_raw_responses_survive_post_processing(small_benchmark_result, model_name):
    evaluation = small_benchmark_result[model_name]
    extracted_nonempty = sum(1 for r in evaluation.first_samples() if r.scores.extracted_yaml.strip())
    assert extracted_nonempty > 0.7 * len(evaluation.first_samples())
