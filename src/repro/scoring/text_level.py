"""Text-level metrics: BLEU, scaled edit distance, exact match."""

from __future__ import annotations

from repro.mlkit.bleu import bleu_score
from repro.yamlkit.diffing import scaled_edit_similarity

__all__ = ["bleu", "edit_distance_score", "exact_match", "normalize_text"]


def normalize_text(text: str) -> str:
    """Normalise a YAML text for comparison: strip trailing spaces and blank lines."""

    lines = [line.rstrip() for line in text.strip().splitlines()]
    return "\n".join(line for line in lines if line)


def bleu(generated: str, reference: str) -> float:
    """Smoothed 4-gram BLEU between generated and reference YAML text."""

    return bleu_score(generated, reference)


def edit_distance_score(generated: str, reference: str) -> float:
    """Line edit distance scaled by the reference size, in [0, 1]."""

    return scaled_edit_similarity(generated, reference)


def exact_match(generated: str, reference: str) -> float:
    """1.0 when the generated text is identical to the reference (modulo trailing whitespace)."""

    return 1.0 if normalize_text(generated) == normalize_text(reference) else 0.0
