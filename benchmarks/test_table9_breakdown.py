"""Table 9 — Unit-test score broken down by category, code context, answer length and question tokens.

Paper claims: Envoy questions are the hardest for every capable model;
longer reference answers are harder (with a steep drop beyond 30 lines);
the presence of a code context has no substantial influence; question
length correlates with difficulty more weakly than answer length.
"""

from __future__ import annotations

from benchmarks.common import full_zero_shot_result
from repro.analysis.breakdown import breakdown_table


def _all_breakdowns():
    result = full_zero_shot_result()
    return {model: breakdown_table(result[model]) for model in result.models()}


def test_table9_per_factor_breakdown(benchmark):
    breakdowns = benchmark.pedantic(_all_breakdowns, rounds=1, iterations=1)

    print("\nTable 9 (measured unit-test scores):")
    for model, table in breakdowns.items():
        app = table["application"]
        lines = table["answer_lines"]
        print(
            f"  {model:<26} k8s {app['kubernetes']:.3f}  envoy {app['envoy']:.3f}  istio {app['istio']:.3f}"
            f"  | [0,15) {lines['[0, 15)']:.3f}  [15,30) {lines['[15, 30)']:.3f}  >=30 {lines['>=30']:.3f}"
        )

    gpt4 = breakdowns["gpt-4"]
    gpt35 = breakdowns["gpt-3.5"]

    # Envoy is much harder than Kubernetes for the capable models.
    for table in (gpt4, gpt35):
        assert table["application"]["envoy"] < 0.6 * table["application"]["kubernetes"]

    # Longer reference answers are harder; the >=30 bucket collapses.
    for table in (gpt4, gpt35):
        assert table["answer_lines"]["[0, 15)"] >= table["answer_lines"][">=30"]
        assert table["answer_lines"][">=30"] < 0.7 * table["answer_lines"]["[0, 15)"]

    # Code context does not change performance dramatically for GPT-4.
    with_code = gpt4["code_context"]["w/ code"]
    without_code = gpt4["code_context"]["w/o code"]
    assert abs(with_code - without_code) < 0.25

    # Question length is a weaker factor than answer length for GPT-4.
    question_spread = gpt4["question_tokens"]["[0, 50)"] - gpt4["question_tokens"][">=100"]
    answer_spread = gpt4["answer_lines"]["[0, 15)"] - gpt4["answer_lines"][">=30"]
    assert answer_spread >= question_spread - 0.1
