"""Smoothed BLEU implementation.

This mirrors the standard sentence-level BLEU with uniform 4-gram weights
and "add-epsilon" smoothing (NLTK's method-1 style smoothing) so short
YAML files that miss one n-gram order do not collapse to zero.  The score
is in [0, 1]; higher is better.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.mlkit.tokenize import yaml_tokenize

__all__ = [
    "ReferenceNgrams",
    "compile_reference_ngrams",
    "sentence_bleu",
    "sentence_bleu_compiled",
    "bleu_score",
]


def _ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


@dataclass(frozen=True)
class ReferenceNgrams:
    """Precomputed reference side of BLEU: token length plus per-order counts.

    The reference token sequence of a benchmark problem is immutable, so its
    n-gram ``Counter``s can be built once and reused for every candidate.
    """

    length: int
    counts: tuple[Counter, ...]  # index ``n - 1`` holds the order-``n`` counts

    @property
    def max_order(self) -> int:
        return len(self.counts)


def compile_reference_ngrams(reference_tokens: Sequence[str], max_order: int = 4) -> ReferenceNgrams:
    """Precompute the reference n-gram counts for orders ``1..max_order``."""

    tokens = list(reference_tokens)
    return ReferenceNgrams(
        length=len(tokens),
        counts=tuple(_ngram_counts(tokens, n) for n in range(1, max_order + 1)),
    )


def sentence_bleu_compiled(
    candidate_tokens: Sequence[str],
    reference: ReferenceNgrams,
    smoothing_epsilon: float = 0.1,
) -> float:
    """Smoothed sentence BLEU against a precompiled reference.

    Numerically identical to :func:`sentence_bleu` on the same token
    sequences; only the reference-side n-gram counting is skipped.
    """

    if not candidate_tokens or not reference.length:
        return 0.0

    max_order = reference.max_order
    log_precisions: list[float] = []
    for n in range(1, max_order + 1):
        cand_counts = _ngram_counts(candidate_tokens, n)
        ref_counts = reference.counts[n - 1]
        matches = sum(min(count, ref_counts[gram]) for gram, count in cand_counts.items())
        total = max(sum(cand_counts.values()), 0)
        if total == 0:
            # Candidate shorter than n tokens: treat as a vanishing
            # contribution rather than an undefined one.
            log_precisions.append(math.log(smoothing_epsilon / 1.0))
            continue
        if matches == 0:
            precision = smoothing_epsilon / total
        else:
            precision = matches / total
        log_precisions.append(math.log(precision))

    geo_mean = math.exp(sum(log_precisions) / max_order)

    # Brevity penalty: penalise candidates shorter than the reference.
    cand_len = len(candidate_tokens)
    ref_len = reference.length
    if cand_len >= ref_len:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - ref_len / cand_len)

    return max(0.0, min(1.0, brevity_penalty * geo_mean))


def sentence_bleu(
    candidate_tokens: Sequence[str],
    reference_tokens: Sequence[str],
    max_order: int = 4,
    smoothing_epsilon: float = 0.1,
) -> float:
    """Compute smoothed sentence BLEU between two token sequences."""

    return sentence_bleu_compiled(
        candidate_tokens,
        compile_reference_ngrams(reference_tokens, max_order=max_order),
        smoothing_epsilon=smoothing_epsilon,
    )


def bleu_score(candidate_text: str, reference_text: str, max_order: int = 4) -> float:
    """BLEU between two YAML texts using the shared YAML tokenizer."""

    return sentence_bleu(
        yaml_tokenize(candidate_text),
        yaml_tokenize(reference_text),
        max_order=max_order,
    )
