"""Analysis layer: everything needed to regenerate the paper's tables and figures."""

from repro.analysis.breakdown import breakdown_table, perspective_series
from repro.analysis.failure_modes import FailureCategory, classify_answer, failure_histogram
from repro.analysis.pass_at_k import pass_at_k_curves
from repro.analysis.predictor import predict_unit_test_scores, shap_feature_importance
from repro.analysis.tables import (
    table1_augmentation,
    table4_zero_shot,
    table5_augmented_passes,
    table6_few_shot,
)

__all__ = [
    "FailureCategory",
    "breakdown_table",
    "classify_answer",
    "failure_histogram",
    "pass_at_k_curves",
    "perspective_series",
    "predict_unit_test_scores",
    "shap_feature_importance",
    "table1_augmentation",
    "table4_zero_shot",
    "table5_augmented_passes",
    "table6_few_shot",
]
