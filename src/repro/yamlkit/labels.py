"""Reference-YAML label parsing.

The labeled reference YAML embeds match semantics in end-of-line comments::

    metadata:
      name: kube-registry-proxy  # *
      namespace: default
    spec:
      image: ubuntu:22.04        # v in ['20.04', '22.04']

``# *`` marks a wildcard (any value matches), ``# v in [...]`` marks a set
match, and unlabeled scalars require an exact match.  Because PyYAML drops
comments, this module re-implements a small line-oriented scan that pairs
each scalar value in the parsed document with the label found on its source
line, producing a :class:`LabeledNode` tree mirroring the document.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import yaml

from repro.yamlkit.parsing import YamlParseError

__all__ = ["MatchKind", "LabeledNode", "parse_labeled_yaml", "strip_labels"]


class MatchKind(str, Enum):
    """How a leaf value in the reference YAML must be compared."""

    EXACT = "exact"
    WILDCARD = "wildcard"
    SET = "set"


_WILDCARD_RE = re.compile(r"#\s*\*\s*$")
_SET_RE = re.compile(r"#\s*v\s+in\s+(\[.*\])\s*$")


@dataclass
class LabeledNode:
    """A node of the labeled reference tree.

    Exactly one of ``children`` (mapping), ``items`` (sequence) or ``value``
    (scalar leaf) is meaningful, discriminated by ``node_type``.
    """

    node_type: str  # "mapping" | "sequence" | "scalar"
    value: Any = None
    match: MatchKind = MatchKind.EXACT
    allowed: tuple[Any, ...] = ()
    children: dict[str, "LabeledNode"] = field(default_factory=dict)
    items: list["LabeledNode"] = field(default_factory=list)

    def leaf_count(self) -> int:
        """Number of scalar leaves under this node (itself included)."""

        if self.node_type == "scalar":
            return 1
        if self.node_type == "mapping":
            return sum(child.leaf_count() for child in self.children.values()) or 1
        return sum(item.leaf_count() for item in self.items) or 1

    def matches_value(self, candidate: Any) -> bool:
        """Check a candidate scalar against this leaf's match semantics."""

        if self.node_type != "scalar":
            raise ValueError("matches_value is only defined for scalar nodes")
        if self.match is MatchKind.WILDCARD:
            return candidate is not None
        if self.match is MatchKind.SET:
            # The reference value itself is always acceptable.  Allowed
            # options match either exactly or as a contained fragment, which
            # covers the paper's example where the label lists version tags
            # (``# v in ['20.04', '22.04']``) while the field holds a full
            # image reference (``ubuntu:22.04``).
            if _scalar_equal(candidate, self.value):
                return True
            candidate_text = str(candidate).strip()
            for option in self.allowed:
                option_text = str(option).strip()
                if _scalar_equal(candidate, option) or (option_text and option_text in candidate_text):
                    return True
            return False
        return _scalar_equal(candidate, self.value)


def _scalar_equal(a: Any, b: Any) -> bool:
    """Compare scalars treating equivalent YAML spellings as equal."""

    if a == b:
        return True
    # YAML frequently represents numbers as strings (ports, quantities).
    return str(a).strip() == str(b).strip()


def _extract_line_labels(text: str) -> dict[int, tuple[MatchKind, tuple[Any, ...]]]:
    """Map 0-based line numbers to their label annotations."""

    labels: dict[int, tuple[MatchKind, tuple[Any, ...]]] = {}
    for lineno, line in enumerate(text.splitlines()):
        set_match = _SET_RE.search(line)
        if set_match:
            try:
                options = tuple(ast.literal_eval(set_match.group(1)))
            except (ValueError, SyntaxError):
                options = ()
            labels[lineno] = (MatchKind.SET, options)
            continue
        if _WILDCARD_RE.search(line):
            labels[lineno] = (MatchKind.WILDCARD, ())
    return labels


class _NodeConstructor(yaml.constructor.SafeConstructor):
    """Constructs Python values directly from composed nodes.

    Equivalent to ``yaml.safe_load(yaml.serialize(node))`` — the composer
    has already resolved implicit tags — but without the serialize/re-scan
    round trip, which dominates reference-compilation time.
    """


def _build_node(
    node: yaml.Node,
    labels: dict[int, tuple[MatchKind, tuple[Any, ...]]],
    constructor: _NodeConstructor,
) -> LabeledNode:
    """Recursively convert a PyYAML node graph into a LabeledNode tree."""

    if isinstance(node, yaml.MappingNode):
        children: dict[str, LabeledNode] = {}
        for key_node, value_node in node.value:
            key = constructor.construct_object(key_node, deep=True)
            children[str(key)] = _build_node(value_node, labels, constructor)
        return LabeledNode(node_type="mapping", children=children)
    if isinstance(node, yaml.SequenceNode):
        items = [_build_node(child, labels, constructor) for child in node.value]
        return LabeledNode(node_type="sequence", items=items)
    # Scalar: resolve its Python value and attach any label from its line.
    value = constructor.construct_object(node, deep=True)
    match_kind, allowed = labels.get(node.start_mark.line, (MatchKind.EXACT, ()))
    return LabeledNode(node_type="scalar", value=value, match=match_kind, allowed=allowed)


def parse_labeled_yaml(text: str) -> LabeledNode:
    """Parse a labeled reference YAML document into a :class:`LabeledNode` tree.

    Multi-document references are merged into a synthetic sequence node so
    the scorer can compare document-by-document.
    """

    labels = _extract_line_labels(text)
    try:
        nodes = list(yaml.compose_all(text))
    except yaml.YAMLError as exc:
        raise YamlParseError(f"invalid labeled reference YAML: {exc}") from exc
    nodes = [n for n in nodes if n is not None]
    if not nodes:
        raise YamlParseError("labeled reference YAML contains no documents")
    constructor = _NodeConstructor()
    try:
        if len(nodes) == 1:
            return _build_node(nodes[0], labels, constructor)
        return LabeledNode(node_type="sequence", items=[_build_node(n, labels, constructor) for n in nodes])
    except yaml.YAMLError as exc:
        raise YamlParseError(f"invalid labeled reference YAML: {exc}") from exc


def strip_labels(text: str) -> str:
    """Remove label comments, returning plain YAML text.

    The output is what a perfect model would be expected to produce; it is
    also used to compute text-level metrics against the reference.
    """

    out_lines: list[str] = []
    for line in text.splitlines():
        stripped = _SET_RE.sub("", line)
        stripped = _WILDCARD_RE.sub("", stripped)
        out_lines.append(stripped.rstrip())
    return "\n".join(out_lines).rstrip() + "\n"
