"""Small from-scratch ML components used by the benchmark.

The offline environment does not provide NLTK, XGBoost or SHAP, so this
package re-implements the three pieces the paper relies on:

* :mod:`repro.mlkit.bleu` — smoothed corpus/sentence BLEU used by the
  text-level scorer,
* :mod:`repro.mlkit.gbdt` — a gradient-boosted decision tree classifier
  (logistic loss) standing in for XGBoost in the unit-test predictor
  experiment (Figure 9a),
* :mod:`repro.mlkit.shap` — an exact Shapley-value explainer, tractable
  because the predictor only has five input features (Figure 9b).
"""

from repro.mlkit.bleu import bleu_score, sentence_bleu
from repro.mlkit.gbdt import GradientBoostingClassifier
from repro.mlkit.metrics import accuracy, mean_absolute_error, roc_auc
from repro.mlkit.shap import exact_shap_values, mean_abs_shap
from repro.mlkit.tokenize import yaml_tokenize
from repro.mlkit.tree import RegressionTree

__all__ = [
    "GradientBoostingClassifier",
    "RegressionTree",
    "accuracy",
    "bleu_score",
    "exact_shap_values",
    "mean_abs_shap",
    "mean_absolute_error",
    "roc_auc",
    "sentence_bleu",
    "yaml_tokenize",
]
