"""A small CART-style regression tree.

Used as the weak learner inside :class:`repro.mlkit.gbdt.GradientBoostingClassifier`.
The implementation is vectorized with NumPy: candidate splits are evaluated
per feature by sorting once and scanning prefix sums, which keeps the tree
fitting fast enough for the ~4000-sample predictor experiment without any
compiled code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["RegressionTree", "TreeNode"]


@dataclass
class TreeNode:
    """A single node of the regression tree."""

    prediction: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    n_samples: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass
class RegressionTree:
    """Least-squares regression tree with depth and leaf-size limits."""

    max_depth: int = 3
    min_samples_leaf: int = 5
    min_gain: float = 1e-7
    root: TreeNode = field(default=None, repr=False)  # type: ignore[assignment]

    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None) -> "RegressionTree":
        """Fit the tree to targets ``y`` (gradient residuals in boosting)."""

        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of rows")
        if sample_weight is None:
            sample_weight = np.ones(len(y), dtype=float)
        self.root = self._build(X, y, sample_weight, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> TreeNode:
        total_weight = w.sum()
        prediction = float(np.average(y, weights=w)) if total_weight > 0 else 0.0
        node = TreeNode(prediction=prediction, n_samples=len(y), depth=depth)
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node

        split = self._best_split(X, y, w)
        if split is None:
            return node
        feature, threshold, gain = split
        if gain <= self.min_gain:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, w: np.ndarray) -> tuple[int, float, float] | None:
        """Find the (feature, threshold) pair with the largest SSE reduction."""

        n_samples, n_features = X.shape
        wy = w * y
        wyy = w * y * y
        base_sse = wyy.sum() - (wy.sum() ** 2) / max(w.sum(), 1e-12)

        best: tuple[int, float, float] | None = None
        for feature in range(n_features):
            order = np.argsort(X[:, feature], kind="mergesort")
            xs = X[order, feature]
            ws = w[order]
            wys = wy[order]
            wyys = wyy[order]

            cum_w = np.cumsum(ws)
            cum_wy = np.cumsum(wys)
            cum_wyy = np.cumsum(wyys)
            total_w, total_wy, total_wyy = cum_w[-1], cum_wy[-1], cum_wyy[-1]

            # Valid split positions: between distinct consecutive values with
            # at least ``min_samples_leaf`` samples on each side.
            idx = np.arange(self.min_samples_leaf - 1, n_samples - self.min_samples_leaf)
            if len(idx) == 0:
                continue
            distinct = xs[idx] < xs[idx + 1]
            idx = idx[distinct]
            if len(idx) == 0:
                continue

            left_w, left_wy, left_wyy = cum_w[idx], cum_wy[idx], cum_wyy[idx]
            right_w = total_w - left_w
            right_wy = total_wy - left_wy
            right_wyy = total_wyy - left_wyy

            left_sse = left_wyy - left_wy**2 / np.maximum(left_w, 1e-12)
            right_sse = right_wyy - right_wy**2 / np.maximum(right_w, 1e-12)
            gains = base_sse - (left_sse + right_sse)

            best_pos = int(np.argmax(gains))
            gain = float(gains[best_pos])
            if best is None or gain > best[2]:
                threshold = float((xs[idx[best_pos]] + xs[idx[best_pos] + 1]) / 2.0)
                best = (feature, threshold, gain)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict values for every row of ``X``."""

        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        X = np.asarray(X, dtype=float)
        return np.array([self._predict_row(row) for row in X])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
        return node.prediction

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split-count based importances, normalized to sum to one."""

        counts = np.zeros(n_features, dtype=float)

        def visit(node: TreeNode | None) -> None:
            if node is None or node.is_leaf:
                return
            counts[node.feature] += node.n_samples
            visit(node.left)
            visit(node.right)

        visit(self.root)
        total = counts.sum()
        return counts / total if total > 0 else counts
