"""Table 5 — Unit-test pass counts on original vs simplified vs translated questions.

Paper claims: simplification generally costs a few passes but hurts small
models relatively more than large ones; translation severely affects
code-specific and small models while large chat models hold up; PaLM is
evaluated on English variants only.
"""

from __future__ import annotations

from benchmarks.common import FAST_MODE, full_zero_shot_result
from repro.analysis.paper_reference import PAPER_TABLE5
from repro.analysis.tables import table5_augmented_passes


def test_table5_augmented_pass_counts(benchmark):
    result = full_zero_shot_result()
    table = benchmark.pedantic(table5_augmented_passes, args=(result,), rounds=1, iterations=1)

    print("\nTable 5 (measured, paper in parentheses):")
    for model, row in table.items():
        paper = PAPER_TABLE5.get(model, (None, None, None))
        print(
            f"  {model:<26} original {row['original']} ({paper[0]})   "
            f"simplified {row['simplified']} ({paper[1]})   translated {row['translated']} ({paper[2]})"
        )

    # PaLM has no translated column (English-only API).
    assert table["palm-2-bison"]["translated"] is None

    # Ordering on the original dataset: GPT-4 > GPT-3.5 > PaLM > every open-source model.
    assert table["gpt-4"]["original"] > table["gpt-3.5"]["original"] > table["palm-2-bison"]["original"]
    open_source_best = max(
        row["original"] for name, row in table.items() if name not in ("gpt-4", "gpt-3.5", "palm-2-bison")
    )
    assert table["palm-2-bison"]["original"] > open_source_best

    # GPT-4 is barely affected by translation.
    assert abs(table["gpt-4"]["original"] - table["gpt-4"]["translated"]) <= max(8, table["gpt-4"]["original"] // 5)

    if not FAST_MODE:
        # Translation hits the code-specialised model much harder than the large chat model.
        wizard = table["wizardcoder-34b-v1.0"]
        llama70 = table["llama-2-70b-chat"]
        wizard_drop = wizard["original"] - wizard["translated"]
        llama_drop = llama70["original"] - llama70["translated"]
        assert wizard_drop > llama_drop
        assert llama70["translated"] >= llama70["original"] - 8  # large chat models keep up

        # Measured original-dataset pass counts land near Table 5's values.
        for model, (paper_original, _, _) in PAPER_TABLE5.items():
            measured = table[model]["original"]
            assert abs(measured - paper_original) <= max(12, int(0.25 * paper_original)), model
