"""Tests for YAML parsing helpers."""

from __future__ import annotations

import pytest

from repro.yamlkit.parsing import (
    YamlParseError,
    dump_document,
    is_valid_yaml,
    load_all_documents,
    load_document,
)


def test_load_single_document():
    doc = load_document("kind: Pod\nmetadata:\n  name: x\n")
    assert doc["kind"] == "Pod"


def test_load_all_documents_multi():
    docs = load_all_documents("kind: Service\n---\nkind: Deployment\n")
    assert [d["kind"] for d in docs] == ["Service", "Deployment"]


def test_load_all_documents_drops_empty():
    docs = load_all_documents("---\nkind: Pod\n---\n")
    assert len(docs) == 1


def test_load_document_rejects_multi():
    with pytest.raises(YamlParseError):
        load_document("a: 1\n---\nb: 2\n")


def test_load_document_rejects_empty():
    with pytest.raises(YamlParseError):
        load_document("")


def test_invalid_yaml_raises():
    with pytest.raises(YamlParseError):
        load_all_documents("key: [unclosed\n  nested: {")


def test_is_valid_yaml_plain():
    assert is_valid_yaml("a: 1")
    assert not is_valid_yaml(": :\n  - {")


def test_is_valid_yaml_require_mapping_rejects_scalar():
    assert not is_valid_yaml("just a sentence of prose", require_mapping=True)
    assert is_valid_yaml("kind: Pod", require_mapping=True)


def test_dump_round_trip_preserves_content():
    doc = {"kind": "Pod", "spec": {"containers": [{"name": "a", "image": "nginx"}]}}
    assert load_document(dump_document(doc)) == doc
