"""The content-addressed global score cache: digests, persistence, invalidation.

The cache's contract is that it is a pure cross-run optimisation: a hit
returns exactly the ScoreCard a fresh scoring would produce (same-version
entries only), misses are scored once and written back durably, and a
killed writer always leaves a readable file.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.scoring.cache import (
    SCORER_VERSION,
    CacheStats,
    ScoreCache,
    is_score_cache_spec,
    resolve_score_cache,
)
from repro.scoring.compiled import (
    ReferenceStore,
    answer_digest,
    compile_reference,
    score_batch,
)


@pytest.fixture()
def cache_path(tmp_path):
    return tmp_path / "score_cache.jsonl"


@pytest.fixture(scope="module")
def problems(small_dataset):
    return list(small_dataset)[:8]


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


def test_reference_digest_is_stable_and_cached(problems):
    problem = problems[0]
    first = compile_reference(problem)
    second = compile_reference(problem)
    assert first.digest == second.digest
    assert len(first.digest) == 64  # sha256 hex


def test_reference_digest_separates_distinct_references(problems):
    digests = {compile_reference(problem).digest for problem in problems}
    assert len(digests) == len(problems)


def test_reference_digest_covers_scored_inputs(problems):
    problem = problems[0]
    base = compile_reference(problem).digest
    changed_yaml = replace(problem, reference_yaml=problem.reference_yaml + "\n# changed")
    assert compile_reference(changed_yaml).digest != base
    changed_id = replace(problem, problem_id=problem.problem_id + "-x")
    assert compile_reference(changed_id).digest != base


def test_answer_digest_keys_on_extracted_text():
    assert answer_digest("kind: Pod\n") == answer_digest("kind: Pod\n")
    assert answer_digest("kind: Pod\n") != answer_digest("kind: Service\n")
    assert len(answer_digest("")) == 64


# ---------------------------------------------------------------------------
# Store semantics
# ---------------------------------------------------------------------------


def _score_one(problem, answer, run_unit_tests=True):
    return score_batch([(problem, answer)], run_unit_tests=run_unit_tests)[0]


def test_get_put_roundtrip_and_counters(problems, cache_path):
    problem = problems[0]
    card = _score_one(problem, problem.reference_plain())
    ref = compile_reference(problem).digest
    ans = answer_digest(problem.reference_plain())

    cache = ScoreCache(cache_path)
    assert cache.get(ref, ans) is None
    cache.put(ref, ans, card)
    assert cache.get(ref, ans) == card
    assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "writes": 1, "stale": 0}
    # peek does not touch counters
    assert cache.peek(ref, ans) == card
    assert cache.stats()["hits"] == 1


def test_unit_tests_flag_is_part_of_the_key(problems, cache_path):
    problem = problems[0]
    card = _score_one(problem, problem.reference_plain())
    ref = compile_reference(problem).digest
    ans = answer_digest(problem.reference_plain())
    cache = ScoreCache(cache_path)
    cache.put(ref, ans, card, run_unit_tests=True)
    assert cache.peek(ref, ans, run_unit_tests=False) is None


def test_reload_serves_identical_cards(problems, cache_path):
    cards = {}
    writer = ScoreCache(cache_path)
    for problem in problems:
        answer = problem.reference_plain()
        card = _score_one(problem, answer)
        key = (compile_reference(problem).digest, answer_digest(answer))
        cards[key] = card
        writer.put(*key, card)

    reader = ScoreCache(cache_path)
    assert len(reader) == len(problems)
    for (ref, ans), card in cards.items():
        assert reader.peek(ref, ans) == card


def test_put_batch_first_write_wins(problems, cache_path):
    problem = problems[0]
    answer = problem.reference_plain()
    good = _score_one(problem, answer)
    decoy = _score_one(problem, "kind: Wrong\n")
    ref = compile_reference(problem).digest
    ans = answer_digest(answer)

    cache = ScoreCache(cache_path)
    cache.put(ref, ans, good)
    cache.put_batch([(ref, ans, decoy, True)])  # ignored: key exists
    assert cache.peek(ref, ans) == good
    assert cache.writes == 1
    # the log did not grow either
    reloaded = ScoreCache(cache_path)
    assert reloaded.peek(ref, ans) == good
    assert len(cache_path.read_text().splitlines()) == 1


def test_per_scope_stats(problems, cache_path):
    problem = problems[0]
    card = _score_one(problem, problem.reference_plain())
    ref = compile_reference(problem).digest
    ans = answer_digest(problem.reference_plain())
    cache = ScoreCache(cache_path)
    cache.get(ref, ans, scope="gpt-4")  # miss
    cache.put(ref, ans, card)
    cache.get(ref, ans, scope="gpt-4")  # hit
    cache.get(ref, ans, scope="gpt-3.5")  # hit
    assert cache.stats_for("gpt-4") == CacheStats(hits=1, misses=1)
    assert cache.stats_for("gpt-3.5") == CacheStats(hits=1, misses=0)
    assert cache.stats_for("never-looked") == CacheStats()
    assert cache.stats_for("gpt-4").hit_rate == 0.5
    assert "2 hits / 1 misses" in cache.describe()


# ---------------------------------------------------------------------------
# Version invalidation
# ---------------------------------------------------------------------------


def test_scorer_version_bump_invalidates(problems, cache_path):
    problem = problems[0]
    answer = problem.reference_plain()
    card = _score_one(problem, answer)
    ref = compile_reference(problem).digest
    ans = answer_digest(answer)

    old = ScoreCache(cache_path, scorer_version=SCORER_VERSION)
    old.put(ref, ans, card)

    bumped = ScoreCache(cache_path, scorer_version=SCORER_VERSION + 1)
    assert len(bumped) == 0
    assert bumped.stale == 1
    assert bumped.peek(ref, ans) is None

    # the bumped store re-scores and writes under the new version; compact
    # physically drops the stale line
    bumped.put(ref, ans, card)
    bumped.compact()
    assert bumped.stale == 0
    lines = cache_path.read_text().splitlines()
    assert len(lines) == 1 and f'"scorer": {SCORER_VERSION + 1}' in lines[0]

    # the old-version store in turn no longer sees the entry
    assert len(ScoreCache(cache_path, scorer_version=SCORER_VERSION)) == 0


# ---------------------------------------------------------------------------
# Torn-tail durability
# ---------------------------------------------------------------------------


def test_torn_tail_is_skipped_and_sealed(problems, cache_path):
    writer = ScoreCache(cache_path)
    for problem in problems[:3]:
        answer = problem.reference_plain()
        writer.put(
            compile_reference(problem).digest, answer_digest(answer),
            _score_one(problem, answer),
        )

    # simulate a kill mid-append: the last line is torn
    raw = cache_path.read_bytes()
    cache_path.write_bytes(raw[:-20])

    survivor = ScoreCache(cache_path)
    assert len(survivor) == 2  # torn third entry dropped, rest readable

    # resuming writes seals the fragment; everything loads again afterwards
    problem = problems[3]
    answer = problem.reference_plain()
    survivor.put(
        compile_reference(problem).digest, answer_digest(answer),
        _score_one(problem, answer),
    )
    assert len(ScoreCache(cache_path)) == 3


# ---------------------------------------------------------------------------
# score_batch integration
# ---------------------------------------------------------------------------


def test_score_batch_layers_cache_above_dedupe(problems, cache_path):
    pairs = [(problem, problem.reference_plain()) for problem in problems]
    baseline = score_batch(pairs, store=ReferenceStore())

    cold = ScoreCache(cache_path)
    assert score_batch(pairs, store=ReferenceStore(), cache=cold) == baseline
    assert cold.stats() == {
        "entries": len(pairs), "hits": 0, "misses": len(pairs),
        "writes": len(pairs), "stale": 0,
    }

    warm = ScoreCache(cache_path)
    assert score_batch(pairs, store=ReferenceStore(), cache=warm) == baseline
    assert warm.hits == len(pairs) and warm.misses == 0 and warm.writes == 0


def test_score_batch_cache_respects_in_run_dedupe(problems, cache_path):
    problem = problems[0]
    answer = problem.reference_plain()
    cache = ScoreCache(cache_path)
    cards = score_batch([(problem, answer)] * 5, cache=cache)
    # one lookup and one write for five identical pairs
    assert cache.misses == 1 and cache.writes == 1
    assert len({id(card) for card in cards}) == 1


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------


def test_resolve_score_cache(cache_path):
    assert resolve_score_cache(None) is None
    store = ScoreCache(cache_path)
    assert resolve_score_cache(store) is store
    resolved = resolve_score_cache(str(cache_path))
    assert isinstance(resolved, ScoreCache) and resolved.path == cache_path
    assert is_score_cache_spec(None) and is_score_cache_spec(store)
    assert not is_score_cache_spec(123)
    with pytest.raises(TypeError, match="score_cache"):
        resolve_score_cache(123)  # type: ignore[arg-type]
