"""Tests for dataset statistics (Tables 1-2) and persistence."""

from __future__ import annotations

from repro.dataset.loader import load_dataset, save_dataset
from repro.dataset.schema import Variant
from repro.dataset.statistics import (
    augmentation_statistics,
    dataset_statistics,
    format_table1,
    format_table2,
)


def test_augmentation_statistics_counts(small_dataset):
    stats = augmentation_statistics(small_dataset)
    assert stats[Variant.ORIGINAL].count == stats[Variant.SIMPLIFIED].count == stats[Variant.TRANSLATED].count
    assert stats[Variant.SIMPLIFIED].avg_words < stats[Variant.ORIGINAL].avg_words


def test_dataset_statistics_cover_all_categories(small_dataset):
    stats = dataset_statistics(small_dataset)
    assert "envoy" in stats and "pod" in stats and "total" in stats
    assert stats["total"].count == len(small_dataset.originals())
    # Envoy solutions are by far the longest, as in Table 2.
    assert stats["envoy"].avg_solution_lines > stats["total"].avg_solution_lines
    assert stats["total"].max_solution_tokens >= stats["istio"].max_solution_tokens


def test_unit_test_lines_are_positive(small_dataset):
    stats = dataset_statistics(small_dataset)
    assert all(row.avg_unit_test_lines > 0 for row in stats.values())


def test_table_formatting_contains_rows(small_dataset):
    table1 = format_table1(augmentation_statistics(small_dataset))
    table2 = format_table2(dataset_statistics(small_dataset))
    assert "Avg. words" in table1
    assert "envoy" in table2 and "total" in table2


def test_save_and_load_round_trip(tmp_path, small_dataset):
    path = save_dataset(small_dataset, tmp_path / "dataset.json")
    restored = load_dataset(path)
    assert len(restored) == len(small_dataset)
    assert restored[0] == small_dataset[0]


def test_load_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": "something-else", "problems": []}')
    try:
        load_dataset(path)
    except ValueError as exc:
        assert "format" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
