"""Post-processing of raw model responses (§3.1 of the paper)."""

from repro.postprocess.extract import extract_yaml

__all__ = ["extract_yaml"]
