"""Table 2 — Statistics of the CloudEval-YAML dataset.

Paper: 337 original problems split 48/55/20/19/19/122 across the Kubernetes
sub-categories plus 41 Envoy and 13 Istio problems; Envoy solutions are by
far the longest (85.85 lines vs a 28.35 average); solutions are roughly 4x
longer than HumanEval/MBPP.
"""

from __future__ import annotations

from benchmarks.common import FAST_MODE, bench_dataset
from repro.dataset.schema import Category, ORIGINAL_CATEGORY_COUNTS
from repro.dataset.statistics import dataset_statistics, format_table2


def test_table2_dataset_statistics(benchmark):
    dataset = bench_dataset()
    stats = benchmark.pedantic(dataset_statistics, args=(dataset,), rounds=1, iterations=1)

    print("\n" + format_table2(stats))

    if not FAST_MODE:
        for category, expected in ORIGINAL_CATEGORY_COUNTS.items():
            assert stats[category.value].count == expected
        assert stats["total"].count == 337

    # Envoy configurations are the longest solutions, as in the paper.
    assert stats[Category.ENVOY.value].avg_solution_lines > 1.5 * stats["total"].avg_solution_lines
    # Solutions are far longer than HumanEval's 6.3-line average.
    assert stats["total"].avg_solution_lines > 2 * 6.3
    # Unit tests are non-trivial scripts.
    assert stats["total"].avg_unit_test_lines > 5
