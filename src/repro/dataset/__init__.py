"""The CloudEval-YAML problem dataset.

The dataset mirrors the structure of the paper's hand-written corpus:
337 original problems spanning Kubernetes (pod, daemonset, service, job,
deployment and other kinds), Envoy and Istio, each with

* a natural-language question (optionally with a YAML context),
* a labeled reference YAML file (``# *`` wildcard and ``# v in [...]``
  conditional labels), and
* a unit-test program executed against the simulated substrate.

Practical data augmentation (:mod:`repro.dataset.augmentation`) derives a
simplified and a translated variant from every original question, giving
1011 problems in total, and :mod:`repro.dataset.statistics` reproduces the
dataset statistics reported in Tables 1 and 2.
"""

from repro.dataset.augmentation import augment_problem_set, simplify_question, translate_question
from repro.dataset.builder import build_dataset, build_original_problems
from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Category, Variant

__all__ = [
    "Category",
    "Problem",
    "ProblemSet",
    "Variant",
    "augment_problem_set",
    "build_dataset",
    "build_original_problems",
    "simplify_question",
    "translate_question",
]
