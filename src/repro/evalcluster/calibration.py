"""The cost-model calibration loop: measured durations feed predictions.

:meth:`~repro.evalcluster.cost.CostModel.predict_problem_seconds` prices a
problem with the paper-derived Figure 5 constants — good enough to cut a
*first* run into balanced shards, but blind to everything the constants
cannot see: the actual machine, the actual scoring mix, the actual
endpoint.  Every pipeline run now measures each record's real
generation + scoring seconds for free
(:attr:`~repro.pipeline.records.EvaluationRecord.measured_seconds`), and
this module closes the loop:

* :class:`CalibrationStore` — a persistent JSON-lines log of observations
  keyed by problem id (variant kept as metadata), folded into a per-problem
  EWMA.  Write → reload → identical predictions: the log replays in order.
* :class:`CalibratedCostModel` — a :class:`~repro.evalcluster.cost.CostModel`
  that blends the store's observed durations into its per-problem
  predictions.  The blend is a *geometric* shrinkage toward the Figure 5
  prior with a configurable ``prior_weight`` (how many observations the
  prior is worth): an unobserved problem is priced exactly as the paper
  predicts, and with every measurement the prediction slides toward the
  observed EWMA.  Blending in log space is deliberate — the modelled
  scale (simulated cluster minutes) and the measured scale (real
  milliseconds on this machine) can sit orders of magnitude apart, and a
  linear average would let the prior's absolute magnitude drown the
  observations forever; geometrically, a handful of measurements is
  enough that a second run of the same corpus cuts its shards on observed
  rather than modelled seconds.

The store is what :class:`~repro.pipeline.pipeline.EvaluationPipeline`
writes measurements into and what the work-stealing scheduler re-predicts
remaining work from; ``BenchmarkConfig(calibration=...)`` wires both ends.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.dataset.problem import Problem
from repro.evalcluster.cost import CostModel
from repro.kubesim.images import normalize_image
from repro.utils.jsonl import JsonlLog

__all__ = [
    "CalibrationEntry",
    "CalibrationStore",
    "CalibratedCostModel",
    "Ewma",
    "is_calibration_spec",
    "resolve_calibration",
]

#: Default EWMA smoothing: the newest observation's share of the average.
DEFAULT_SMOOTHING = 0.5

#: Default pseudo-observation weight of the Figure 5 prior in the blend.
DEFAULT_PRIOR_WEIGHT = 1.0

#: Floor applied before taking logs: a measured duration can quantise to
#: zero at clock resolution, and the prior of a trivial problem could in
#: principle be zero too.
_LOG_FLOOR_SECONDS = 1e-9


@dataclass
class Ewma:
    """A standalone exponentially weighted moving average.

    The same fold :class:`CalibrationEntry` applies to per-problem
    durations, packaged for other live signals — fleet workers use it for
    their observed records/second (generate and score separately), which
    rides heartbeats into :class:`~repro.evalcluster.master.MasterStats`
    and weights the steal policy.  ``smoothing`` is the newest sample's
    share; ``value`` is ``None`` until the first observation.
    """

    smoothing: float = DEFAULT_SMOOTHING
    value: float | None = None

    def observe(self, sample: float) -> float:
        """Fold one sample; returns the updated average."""

        if self.value is None:
            self.value = float(sample)
        else:
            self.value = self.smoothing * float(sample) + (1.0 - self.smoothing) * self.value
        return self.value


@dataclass
class CalibrationEntry:
    """The folded calibration state of one problem."""

    problem_id: str
    variant: str
    count: int = 0
    ewma_seconds: float = 0.0

    def absorb(self, seconds: float, smoothing: float) -> None:
        """Fold one measured duration into the EWMA."""

        if self.count == 0:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds = smoothing * seconds + (1.0 - smoothing) * self.ewma_seconds
        self.count += 1


class CalibrationStore:
    """Measured per-problem durations, persistent across runs.

    The backing file is an append-only JSON-lines log with one observation
    per line (``{"problem_id", "variant", "seconds"}``); loading replays
    the log through the same EWMA fold, so a reloaded store predicts
    identically to the store that wrote it.  A torn final line from a
    killed run is dropped, exactly like the pipeline checkpoints.

    With ``per_model=True`` the store *additionally* folds every
    observation under its ``(model, problem)`` key — live endpoints skew
    per model (one provider throttles, another streams), and the scoped
    EWMAs are what lets a per-job calibrated cost model (and through it
    the :class:`~repro.pipeline.scheduler.StealPolicy`) see that skew
    instead of averaging it away.  Observation lines then carry a
    ``"model"`` field; single-key files (no ``"model"``) load unchanged
    in either mode, and a per-model file read by a single-key store simply
    ignores the scoping — the global EWMAs are identical either way.

    ``version`` increments on every absorbed observation — consumers that
    memoise predictions derived from this store (the calibrated cost
    model, the stealing scheduler's remaining-seconds estimates) compare
    it to decide when to re-predict.
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        smoothing: float = DEFAULT_SMOOTHING,
        per_model: bool = False,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.path = Path(path) if path is not None else None
        self.smoothing = smoothing
        self.per_model = per_model
        self.version = 0
        self._entries: dict[str, CalibrationEntry] = {}
        self._model_entries: dict[tuple[str, str], CalibrationEntry] = {}
        self._lock = threading.Lock()
        self._log = JsonlLog(self.path) if self.path is not None else None
        if self._log is not None:
            # Replay the durable observations through the same EWMA fold
            # that produced them (same discipline as the pipeline
            # checkpoints, shared via JsonlLog): a torn tail is ignored
            # here and sealed off by the next append, never on load.
            for problem_id, variant, seconds, model in self._log.scan(self._decode):
                self._absorb(problem_id, variant, seconds, model)

    # -- persistence --------------------------------------------------------
    @staticmethod
    def _decode(line: bytes) -> tuple[str, str, float, str]:
        payload = json.loads(line)
        return (
            payload["problem_id"],
            payload.get("variant", ""),
            float(payload["seconds"]),
            str(payload.get("model", "")),
        )

    # -- observations -------------------------------------------------------
    def _absorb(self, problem_id: str, variant: str, seconds: float, model: str = "") -> None:
        entry = self._entries.get(problem_id)
        if entry is None:
            entry = self._entries[problem_id] = CalibrationEntry(problem_id, variant)
        entry.absorb(seconds, self.smoothing)
        if self.per_model and model:
            key = (model, problem_id)
            scoped = self._model_entries.get(key)
            if scoped is None:
                scoped = self._model_entries[key] = CalibrationEntry(problem_id, variant)
            scoped.absorb(seconds, self.smoothing)
        self.version += 1

    def observe(
        self, problem_id: str, variant: str, seconds: float, model: str = ""
    ) -> None:
        """Record one measured duration (and append it to the log)."""

        self.observe_batch([(problem_id, variant, seconds, model)])

    def observe_batch(
        self,
        observations: Iterable[
            tuple[str, str, float] | tuple[str, str, float, str]
        ],
    ) -> None:
        """Record a batch of measured durations with one durable append.

        Observations are ``(problem_id, variant, seconds)`` triples or
        ``(problem_id, variant, seconds, model)`` quadruples; the model is
        ignored (and not persisted) unless the store is ``per_model``, so
        a default store's file stays byte-identical to the single-key
        format.  The batch is validated in full before anything is
        absorbed, so a bad observation can never leave the in-memory EWMAs
        diverged from the log (write → reload → identical predictions must
        hold even across a rejected batch).
        """

        cleaned: list[tuple[str, str, float, str]] = []
        for observation in observations:
            problem_id, variant, seconds = observation[0], observation[1], float(observation[2])
            model = str(observation[3]) if len(observation) > 3 else ""
            if seconds < 0.0:
                raise ValueError(f"negative duration for {problem_id!r}: {seconds}")
            cleaned.append((problem_id, variant, seconds, model))
        if not cleaned:
            return
        lines = []
        for problem_id, variant, seconds, model in cleaned:
            payload: dict[str, object] = {
                "problem_id": problem_id,
                "variant": variant,
                "seconds": seconds,
            }
            if self.per_model and model:
                payload["model"] = model
            lines.append(json.dumps(payload) + "\n")
        with self._lock:
            for problem_id, variant, seconds, model in cleaned:
                self._absorb(problem_id, variant, seconds, model)
            if self._log is not None:
                self._log.append(lines)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CalibrationEntry]:
        return iter(self._entries.values())

    def get(self, problem_id: str, model: str | None = None) -> CalibrationEntry | None:
        """The folded entry of one problem, or None when never observed.

        With ``model`` given (and the store ``per_model``), the
        ``(model, problem)``-scoped entry is preferred and the global one
        is the fallback — a problem this model never ran is still priced
        from everyone else's measurements.
        """

        if model is not None and self.per_model:
            scoped = self._model_entries.get((model, problem_id))
            if scoped is not None:
                return scoped
        return self._entries.get(problem_id)

    def seconds_for(self, problem_id: str, model: str | None = None) -> float | None:
        """The observed EWMA duration of a problem (None when unobserved)."""

        entry = self.get(problem_id, model)
        return entry.ewma_seconds if entry is not None else None

    def count_for(self, problem_id: str, model: str | None = None) -> int:
        """How many observations a problem (or its model scope) absorbed."""

        entry = self.get(problem_id, model)
        return entry.count if entry is not None else 0


@dataclass
class CalibratedCostModel(CostModel):
    """A :class:`CostModel` whose predictions learn from measured runs.

    For an unobserved problem every prediction is exactly the parent's
    Figure 5 number.  Once the store holds ``count`` measurements, the
    prediction becomes a geometric shrinkage blend::

        w = prior_weight / (prior_weight + count)
        prediction = figure5_total ** w  *  observed_ewma ** (1 - w)

    where ``figure5_total`` is the problem's *cold* modelled cost (base
    execution plus every image pull) — the measurement covers the whole
    evaluation, so the blend replaces both components, and
    :meth:`problem_charge_images` charges no separate pulls for observed
    problems (their transfer cost, if any, is inside the measurement).
    Their images still *warm* the shard cache
    (:meth:`problem_pull_images` is unchanged): the pulls happen whether
    or not they are separately priced, so an unobserved problem sharing
    an image with an observed one upstream keeps its warm-cache discount.
    ``prior_weight`` is the prior's worth in pseudo-observations: 0 trusts
    the first measurement outright, large values change slowly.  The blend
    is geometric because the two scales can differ by orders of magnitude
    (simulated cluster minutes vs. real milliseconds); averaging the
    *logs* hands relative structure over to the observations within a few
    measurements, where a linear average would stay pinned to the prior's
    absolute magnitude indefinitely.

    Prediction memos inherited from the parent are invalidated whenever
    the store has absorbed a new measurement since the last prediction, so
    a scheduler holding this model re-predicts remaining work as
    measurements stream in.
    """

    store: CalibrationStore = field(default_factory=CalibrationStore)
    prior_weight: float = DEFAULT_PRIOR_WEIGHT
    #: Scope predictions to one model's observed durations (needs a
    #: ``per_model`` store; with a single-key store the name is inert).
    #: ``None`` predicts from the global, model-agnostic EWMAs.
    model_name: str | None = None
    _seen_version: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.prior_weight < 0.0:
            raise ValueError("prior_weight must be >= 0")

    def for_model(self, model_name: str) -> "CalibratedCostModel":
        """A copy of this model scoped to one endpoint's observations.

        The copy shares the store (and therefore keeps re-predicting as
        measurements arrive) but prefers ``(model, problem)`` EWMAs over
        the global ones — per-endpoint latency skew becomes visible to
        whoever prices work with the copy (the stealing scheduler builds
        one per job).  Prediction memos start fresh; the underlying
        pull-image lists are recomputed per copy, which is cheap relative
        to what the memo exists to avoid.
        """

        return replace(self, model_name=model_name)

    # -- memo refresh -------------------------------------------------------
    def _refresh(self) -> None:
        """Invalidate store-dependent memos when new measurements arrived.

        Only the base-seconds blend reads the store; the pull-image lists
        are pure in the problem, so their memo survives — clearing it too
        would re-derive every remaining problem's image list on each
        re-prediction sweep, the very work its satellite memo exists to
        avoid.
        """

        if self._seen_version != self.store.version:
            self._base_seconds_cache.clear()
            self._seen_version = self.store.version

    def predict_base_seconds(self, problem: Problem) -> float:
        self._refresh()
        return super().predict_base_seconds(problem)

    def problem_charge_images(self, problem: Problem) -> tuple[str, ...]:
        # An observed problem's measurement already contains whatever
        # transfer happened; pricing modelled pulls on top would double
        # count, so nothing is charged — but problem_pull_images is left
        # alone, so its images still warm the shard cache for later
        # problems that share them.
        self._refresh()
        if self.store.seconds_for(problem.problem_id, self.model_name) is not None:
            return ()
        return super().problem_charge_images(problem)

    # -- the calibrated predictions -----------------------------------------
    def _cold_prior_seconds(self, problem: Problem) -> float:
        """The Figure 5 cold cost: base execution plus every unique pull."""

        total = CostModel._compute_base_seconds(self, problem)
        seen: set[str] = set()
        for image in self.problem_pull_images(problem):
            key = normalize_image(image)
            if key not in seen:
                seen.add(key)
                total += self.image_pull_seconds(image)
        return total

    def _compute_base_seconds(self, problem: Problem) -> float:
        observed = self.store.seconds_for(problem.problem_id, self.model_name)
        if observed is None:
            return super()._compute_base_seconds(problem)
        if self.prior_weight == 0.0:
            return observed
        count = self.store.count_for(problem.problem_id, self.model_name)
        prior = self._cold_prior_seconds(problem)
        weight = self.prior_weight / (self.prior_weight + count)
        return math.exp(
            weight * math.log(max(prior, _LOG_FLOOR_SECONDS))
            + (1.0 - weight) * math.log(max(observed, _LOG_FLOOR_SECONDS))
        )

def is_calibration_spec(calibration: object) -> bool:
    """Whether a value is an acceptable ``calibration`` configuration —
    a store instance, a JSONL path, or None.  The single definition both
    :func:`resolve_calibration` and ``BenchmarkConfig`` validate against."""

    return calibration is None or isinstance(calibration, (CalibrationStore, str, os.PathLike))


def resolve_calibration(
    calibration: "CalibrationStore | str | os.PathLike[str] | None",
) -> CalibrationStore | None:
    """Turn a config value (store instance or JSONL path) into a store."""

    if not is_calibration_spec(calibration):
        raise TypeError(
            "calibration must be a CalibrationStore, a JSONL path, or None; "
            f"got {type(calibration).__name__}"
        )
    if calibration is None or isinstance(calibration, CalibrationStore):
        return calibration
    return CalibrationStore(calibration)
