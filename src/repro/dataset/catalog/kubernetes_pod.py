"""Pod problem templates (Table 2 column "pod")."""

from __future__ import annotations

from repro.dataset.catalog.common import (
    CPU_REQUESTS,
    DB_IMAGES,
    HTTP_PORTS,
    MEMORY_REQUESTS,
    WEB_IMAGES,
    WORKER_IMAGES,
    ProblemDraft,
    pick_app,
    pick_source,
)
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _simple_pod(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(WEB_IMAGES)
    port = rng.choice(HTTP_PORTS)
    name = f"{app}-pod"
    question = (
        f"Write a YAML file to create a Kubernetes Pod named \"{name}\" in the "
        f"\"{namespace}\" namespace. The pod should run the {image} image with the "
        f"label app: {app} and expose container port {port}."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
  labels:
    app: {app}
spec:
  containers:
  - name: {app}  # *
    image: {image}
    ports:
    - containerPort: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.metadata.labels.app}", expected=app, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].image}", expected=image, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].ports[0].containerPort}", expected=str(port), name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-simple-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
    )


def _pod_with_env(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(DB_IMAGES)
    env_name = rng.choice(["DATABASE_URL", "CACHE_HOST", "APP_MODE", "LOG_LEVEL", "QUEUE_NAME"])
    env_value = rng.choice(["redis.internal", "production", "debug", "orders-queue", "db.svc.cluster.local"])
    name = f"{app}-worker"
    question = (
        f"Create a Pod named \"{name}\" in the {namespace} namespace running the {image} image. "
        f"Set the environment variable {env_name} to \"{env_value}\" inside the container and "
        f"label the pod with app: {app}."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
  labels:
    app: {app}
spec:
  containers:
  - name: {app}-container  # *
    image: {image}
    env:
    - name: {env_name}
      value: "{env_value}"
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].env[*].name}", contains=env_name, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].env[0].value}", expected=env_value, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-env-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
    )


def _pod_with_resources(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(WEB_IMAGES + WORKER_IMAGES)
    cpu = rng.choice(CPU_REQUESTS)
    memory = rng.choice(MEMORY_REQUESTS)
    name = f"{app}-limited"
    question = (
        f"Write a YAML manifest for a Pod called \"{name}\" in namespace {namespace} using the "
        f"{image} image. The container must request {cpu} CPU and {memory} of memory, and use the "
        f"same values as its resource limits."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
spec:
  containers:
  - name: main  # *
    image: {image}
    resources:
      requests:
        cpu: {cpu}
        memory: {memory}
      limits:
        cpu: {cpu}
        memory: {memory}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].resources.requests.cpu}", expected=cpu, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].resources.limits.memory}", expected=memory, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-resources-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
    )


def _pod_env_from_secret(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    secret_name = f"{app}-secret"
    name = f"{app}-pod"
    key = rng.choice(["password", "api-key", "token"])
    env_name = key.upper().replace("-", "_")
    context = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  labels:
    app: {app}
spec:
  containers:
  - name: {app}
    image: mysql:8.0
    env:
    - name: {env_name}
      value: supersecret
    ports:
    - containerPort: 3306
"""
    question = (
        f"Is there a way to provide environment variables from a Secret instead of hardcoding them "
        f"when defining a pod? Given the following pod definition, provide the entire YAML for the "
        f"\"{namespace}\" namespace, supposing there is a Secret named {secret_name} that contains "
        f"the key \"{key}\". The environment variable {env_name} should come from that Secret."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
  labels:
    app: {app}
spec:
  containers:
  - name: {app}  # *
    image: mysql:8.0
    env:
    - name: {env_name}
      valueFrom:
        secretKeyRef:
          name: {secret_name}
          key: {key}
    ports:
    - containerPort: 3306
"""
    secret_manifest = f"""apiVersion: v1
kind: Secret
metadata:
  name: {secret_name}
  namespace: {namespace}
stringData:
  {key}: supersecret
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(secret_manifest),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath(
            "Pod",
            "{.spec.containers[0].env[0].valueFrom.secretKeyRef.name}",
            expected=secret_name,
            name=name,
            namespace=namespace,
        ),
        S.AssertJsonPath(
            "Pod",
            "{.spec.containers[0].env[0].valueFrom.secretKeyRef.key}",
            expected=key,
            name=name,
            namespace=namespace,
        ),
    ]
    return ProblemDraft(
        slug=f"pod-secret-env-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source="stackoverflow",
        primary_kind="Pod",
        extra_difficulty=0.1,
    )


def _pod_configmap_volume(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    cm_name = f"{app}-config"
    name = f"{app}-pod"
    mount_path = rng.choice(["/etc/config", "/app/config", "/var/run/config"])
    question = (
        f"Create a Pod named \"{name}\" in the {namespace} namespace that runs nginx:latest and "
        f"mounts the ConfigMap \"{cm_name}\" as a volume named config-volume at {mount_path}."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
spec:
  containers:
  - name: web  # *
    image: nginx:latest
    volumeMounts:
    - name: config-volume
      mountPath: {mount_path}
  volumes:
  - name: config-volume
    configMap:
      name: {cm_name}
"""
    cm_manifest = f"""apiVersion: v1
kind: ConfigMap
metadata:
  name: {cm_name}
  namespace: {namespace}
data:
  app.properties: "mode=standard"
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(cm_manifest),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.volumes[0].configMap.name}", expected=cm_name, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].volumeMounts[0].mountPath}", expected=mount_path, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-configmap-volume-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
        extra_difficulty=0.05,
    )


def _multi_container_pod(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    sidecar_image = rng.choice(AGENT := ["fluent/fluentd:v1.16", "busybox:1.36", "alpine:3.19"])
    del AGENT
    name = f"{app}-with-sidecar"
    port = rng.choice(HTTP_PORTS)
    question = (
        f"Write a YAML for a two-container Pod named \"{name}\" in namespace {namespace}. The first "
        f"container, named \"app\", runs nginx:latest and exposes port {port}; the second container, "
        f"named \"sidecar\", runs {sidecar_image}. Label the pod app: {app}."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
  labels:
    app: {app}
spec:
  containers:
  - name: app
    image: nginx:latest
    ports:
    - containerPort: {port}
  - name: sidecar
    image: {sidecar_image}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[*].name}", contains="sidecar", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[1].image}", expected=sidecar_image, name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].ports[0].containerPort}", expected=str(port), name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-multi-container-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
        extra_difficulty=0.1,
    )


def _pod_fix_api_version(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(WEB_IMAGES)
    name = f"{app}-pod"
    context = f"""apiVersion: v1beta1
kind: Pod
metadata:
  name: {name}
spec:
  containers:
  - name: {app}
    image: {image}
    ports:
    - containerPort: 80
"""
    question = (
        "Given the following YAML which is not functionally correct, executing it reports: "
        "error: unable to recognize no matches for kind \"Pod\" in version \"v1beta1\". "
        f"Please debug it so it applies cleanly in the {namespace} namespace and provide the entire YAML."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
spec:
  containers:
  - name: {app}  # *
    image: {image}
    ports:
    - containerPort: 80
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.apiVersion}", expected="v1", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].image}", expected=image, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-fix-apiversion-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source="stackoverflow",
        primary_kind="Pod",
    )


def _pod_with_command(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(WORKER_IMAGES)
    message = rng.choice(["hello from the cluster", "startup complete", "batch tick", "healthcheck ok"])
    name = f"{app}-runner"
    question = (
        f"Create a Pod named \"{name}\" in namespace {namespace} that runs the {image} image with "
        f"the command [\"sh\", \"-c\"] and the argument \"echo {message} && sleep 3600\"."
    )
    reference = f"""apiVersion: v1
kind: Pod
metadata:
  name: {name}
  namespace: {namespace}
spec:
  containers:
  - name: runner  # *
    image: {image}
    command:
    - sh
    - -c
    args:
    - echo {message} && sleep 3600
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].command[0]}", expected="sh", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.spec.containers[0].args[0]}", contains=message, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"pod-command-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Pod",
    )


_TEMPLATES = [
    _simple_pod,
    _pod_with_env,
    _pod_with_resources,
    _pod_env_from_secret,
    _pod_configmap_volume,
    _multi_container_pod,
    _pod_fix_api_version,
    _pod_with_command,
]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` pod problems by cycling the template families."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("pod", index), index))
    return drafts
