"""Cold vs warm scoring through the content-addressed global score cache.

The cache's headline claim: rerunning an evaluation over an unchanged
corpus must be dominated by cache lookups, not re-scoring.  Generation is
driven through a :class:`~repro.llm.remote.LiveEndpointModel` whose
transport replays recorded responses — the deployment the cache is built
for, where answers come over the wire and the scoring engine is the local
cost — so the guard times the side the cache owns rather than the
simulated models' YAML perturbation machinery (which would dominate both
runs equally and hide a real cache regression behind a constant).

The guard is a same-machine, same-process speedup *ratio*: a cold run
that scores every (reference, answer) pair and writes the cards back,
then a warm run in a fresh benchmark that reloads the store from disk and
serves every pair from it.  Only a real loss of cache coverage (digest
instability, a missed write-back, an accidental version skew) can push
the ratio below the floor; a slow runner cannot.

Both runs must produce bit-identical records — the cache is a pure
optimisation — and the warm store must report full coverage (zero misses,
zero writes).  The cache file the run produces is kept on disk
(``BENCH_score_cache.jsonl`` by default) so CI can upload it as an
artifact next to the calibration store.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import artifact_path, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.llm.remote import LiveEndpointModel
from repro.scoring.cache import ScoreCache
from repro.utils.ratelimit import TokenBucket

MODEL = "gpt-4"

#: The guard: a warm rerun over the unchanged corpus must beat the cold
#: scoring run end to end by at least this factor (measured ~10-18x; the
#: warm run pays only prompting, transport replay, extraction and digest
#: lookups).
MIN_SPEEDUP = 3.0

#: Where the guard leaves the cache for the CI artifact.
SCORE_CACHE_PATH = os.environ.get("REPRO_SCORE_CACHE") or artifact_path("BENCH_score_cache.jsonl")


def _recorded_endpoint(dataset) -> LiveEndpointModel:
    """A live endpoint replaying the simulated model's recorded responses."""

    inner = get_model(MODEL)
    responses = {
        GenerationRequest(problem=problem).prompt(): inner.generate(problem)
        for problem in dataset
    }
    return LiveEndpointModel(
        MODEL,
        responses.__getitem__,
        limiter=TokenBucket(rate=50_000.0, burst=64, virtual_clock=False),
    )


def _evaluate(dataset, endpoint):
    benchmark = CloudEvalBenchmark(
        dataset, BenchmarkConfig(score_cache=SCORE_CACHE_PATH)
    )
    evaluation = benchmark.evaluate_model(endpoint)
    return evaluation, benchmark.score_cache()


def test_warm_cache_rerun_beats_cold_scoring(benchmark):
    dataset = bench_dataset()
    if os.path.exists(SCORE_CACHE_PATH):
        os.remove(SCORE_CACHE_PATH)
    endpoint = _recorded_endpoint(dataset)

    # Untimed pass with the cache disabled: warms every process-level
    # cache the two timed runs share (parsed manifests, compiled
    # references, prompt templates), so the cold run pays scoring but no
    # one-time costs the warm run would skip for free.
    CloudEvalBenchmark(dataset, BenchmarkConfig()).evaluate_model(endpoint)

    # --- cold: every pair is scored and written back ---------------------
    start = time.perf_counter()
    cold, cold_store = _evaluate(dataset, endpoint)
    cold_seconds = time.perf_counter() - start
    assert cold_store.hits == 0
    assert cold_store.writes == cold_store.misses > 0

    # --- warm: a fresh benchmark reloads the store from disk -------------
    result = benchmark.pedantic(
        lambda: _evaluate(dataset, endpoint), rounds=1, iterations=1
    )
    warm, warm_store = result
    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds

    benchmark.extra_info["problems"] = len(cold.records)
    benchmark.extra_info["entries"] = len(warm_store)
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print(
        f"\nScore cache over {len(cold.records)} records ({MODEL} replay endpoint):"
        f"\n  cold (score + write) : {cold_seconds:6.2f} s"
        f"\n  warm (cache served)  : {warm_seconds:6.2f} s"
        f"\n  speedup              : {speedup:6.2f} x"
        f"\n  cache store          : {SCORE_CACHE_PATH} ({len(warm_store)} entries)"
    )

    # The cache is a pure optimisation: not a single record may move.
    assert warm.records == cold.records

    # Full coverage: the warm run re-scored nothing and wrote nothing.
    assert warm_store.misses == 0 and warm_store.writes == 0
    assert warm_store.hits > 0

    # The headline ratio.
    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache speedup {speedup:.2f}x fell below the {MIN_SPEEDUP}x floor "
        f"(cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s)"
    )

    # The artifact CI uploads must exist and reload cleanly.
    assert len(ScoreCache(SCORE_CACHE_PATH)) == len(warm_store)
