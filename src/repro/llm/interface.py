"""The universal query module (§3.1).

The paper's query module hides the differences between local and remote
model APIs behind a single interface and parallelises requests (with ray
for remote endpoints, batched inference for local ones).  The offline
equivalent keeps the same shape: a :class:`Model` protocol, a
:class:`GenerationRequest` unit of work, and a :class:`QueryModule` that
fans requests out over a thread pool and returns responses in order.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.dataset.problem import Problem
from repro.llm.prompt import build_prompt
from repro.utils.pools import LazyPool
from repro.utils.ratelimit import TokenBucket

__all__ = [
    "Model",
    "AsyncModel",
    "GenerationRequest",
    "GenerationResult",
    "QueryModule",
]


@runtime_checkable
class Model(Protocol):
    """Anything that can answer a benchmark problem.

    The simulated models implement this; a thin wrapper around a real HTTP
    endpoint could too, which is how the benchmark would be pointed at live
    models outside this offline environment.
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol definition
        ...

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:  # pragma: no cover
        ...


@runtime_checkable
class AsyncModel(Protocol):
    """A model whose generation is awaitable.

    Remote endpoints spend almost all of their per-request time waiting on
    the network; a model that implements ``generate_async`` lets the query
    module overlap those waits under bounded concurrency instead of paying
    them one after another.  Responses must match the synchronous
    ``generate`` for the same ``(problem, shots, sample_index)`` so the
    async path can never change a score.
    """

    async def generate_async(
        self, problem: Problem, shots: int = 0, sample_index: int = 0
    ) -> str:  # pragma: no cover - protocol definition
        ...


@dataclass(frozen=True)
class GenerationRequest:
    """One unit of generation work."""

    problem: Problem
    shots: int = 0
    sample_index: int = 0

    def prompt(self) -> str:
        """The full prompt text that would be sent to a real endpoint."""

        return build_prompt(self.problem, shots=self.shots)


@dataclass(frozen=True)
class GenerationResult:
    """A raw response paired with its originating request.

    ``error`` is non-empty when the model raised instead of answering; the
    response is then empty and the result still flows through scoring (an
    empty answer scores zero everywhere), so one bad request never aborts
    a batch.
    """

    request: GenerationRequest
    response: str
    model_name: str
    error: str = ""

    @property
    def ok(self) -> bool:
        """Whether the model produced a response (no captured exception)."""

        return not self.error


class QueryModule:
    """Dispatch generation requests to a model, optionally in parallel.

    ``max_workers=1`` (the default) runs sequentially, which is the most
    reproducible and is plenty fast for simulated models.  Higher values
    mirror the paper's ray-based parallel querying of rate-limited remote
    APIs; results are always returned in request order regardless.
    """

    def __init__(self, model: Model, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.model = model
        self.max_workers = max_workers
        # The persistent request pool: building a ThreadPoolExecutor per
        # query_batch call paid thread spawn/join on every batch of a
        # streaming run; this one lives until close().
        self._pool = LazyPool(
            lambda: ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="query-module"
            )
        )

    def close(self) -> None:
        """Shut down the persistent pool (a later batch recreates it)."""

        self._pool.close()

    def __enter__(self) -> "QueryModule":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def query(self, request: GenerationRequest) -> GenerationResult:
        """Run a single request; a model exception propagates to the caller."""

        response = self.model.generate(
            request.problem, shots=request.shots, sample_index=request.sample_index
        )
        return GenerationResult(request=request, response=response, model_name=self.model.name)

    def _query_captured(self, request: GenerationRequest) -> GenerationResult:
        """Run one request, converting a model exception into a failed result."""

        try:
            return self.query(request)
        except Exception as exc:  # noqa: BLE001 - isolate per-request failures
            return GenerationResult(
                request=request,
                response="",
                model_name=self.model.name,
                error=f"{type(exc).__name__}: {exc}",
            )

    def query_batch(self, requests: Sequence[GenerationRequest]) -> list[GenerationResult]:
        """Run a batch of requests, preserving order.

        Per-request exceptions are captured into failed results (see
        :class:`GenerationResult.error`) rather than aborting the batch —
        real endpoints time out and rate-limit individual calls, and one
        flaky request must not discard hundreds of finished ones.
        """

        if self.max_workers == 1 or len(requests) <= 1:
            return [self._query_captured(request) for request in requests]
        return list(self._pool.get().map(self._query_captured, requests))

    async def query_batch_async(
        self,
        requests: Sequence[GenerationRequest],
        *,
        max_concurrency: int | None = None,
        limiter: TokenBucket | None = None,
    ) -> list[GenerationResult]:
        """Run a batch concurrently on the event loop, preserving order.

        Requests are dispatched under an ``asyncio`` semaphore of
        ``max_concurrency`` (default: this module's ``max_workers``) and,
        when a :class:`~repro.utils.ratelimit.TokenBucket` is given, each
        one first takes a token — the paper's rate-limited remote querying
        as an explicit knob.  Models implementing :class:`AsyncModel`
        overlap their waits; synchronous models are called inline, which
        degrades to ordered sequential execution with identical results.
        Per-request exceptions are captured exactly as in
        :meth:`query_batch`.
        """

        semaphore = asyncio.Semaphore(max(1, max_concurrency or self.max_workers))
        is_async = isinstance(self.model, AsyncModel) and hasattr(self.model, "generate_async")

        async def one(request: GenerationRequest) -> GenerationResult:
            async with semaphore:
                if limiter is not None:
                    await limiter.acquire_async()
                try:
                    if is_async:
                        response = await self.model.generate_async(
                            request.problem,
                            shots=request.shots,
                            sample_index=request.sample_index,
                        )
                        return GenerationResult(
                            request=request, response=response, model_name=self.model.name
                        )
                    return self._query_captured(request)
                except Exception as exc:  # noqa: BLE001 - isolate per-request failures
                    return GenerationResult(
                        request=request,
                        response="",
                        model_name=self.model.name,
                        error=f"{type(exc).__name__}: {exc}",
                    )

        return list(await asyncio.gather(*(one(request) for request in requests)))

    def query_problems(
        self,
        problems: Iterable[Problem],
        shots: int = 0,
        samples: int = 1,
    ) -> list[GenerationResult]:
        """Generate ``samples`` responses for every problem."""

        requests = [
            GenerationRequest(problem=problem, shots=shots, sample_index=sample)
            for problem in problems
            for sample in range(samples)
        ]
        return self.query_batch(requests)
