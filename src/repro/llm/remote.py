"""Remote-endpoint adapters: simulated latency and real live endpoints.

The paper's query module exists because remote endpoints are slow and
rate-limited: each request spends tens to hundreds of milliseconds on the
wire, and the only way to finish a 1000-problem sweep in reasonable time
is to keep many requests in flight (§3.1, ray in the original).

Two adapters model that workload shape:

* :class:`RemoteEndpointModel` turns any deterministic local model into
  it.  It answers with exactly the wrapped model's responses but charges
  a per-request network latency: the synchronous ``generate`` blocks (as
  a naive sequential client would), while ``generate_async`` awaits the
  same latency on the event loop so the async query path can overlap
  hundreds of in-flight requests.  Scores are therefore bit-identical
  between the wrapped and unwrapped model — only the wall-clock differs.
* :class:`LiveEndpointModel` is the *real* thing: a
  :class:`~repro.llm.interface.Model`/:class:`~repro.llm.interface.AsyncModel`
  adapter over an actual endpoint, with wall-clock
  :class:`~repro.utils.ratelimit.TokenBucket` pacing and
  retry-with-backoff on transient errors.  The endpoint itself is
  abstracted as a *transport* — any callable ``(prompt) -> response`` —
  so the adapter is testable offline and pluggable onto any provider;
  :func:`http_transport` builds one over stdlib ``urllib`` for plain
  JSON-over-HTTP endpoints.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request
from typing import Awaitable, Callable

from repro.dataset.problem import Problem
from repro.llm.interface import Model
from repro.llm.prompt import build_prompt
from repro.utils.backoff import BackoffPolicy
from repro.utils.faults import FaultInjector, null_injector
from repro.utils.ratelimit import TokenBucket
from repro.utils.rng import DeterministicRNG

__all__ = [
    "EndpointError",
    "LiveEndpointModel",
    "RemoteEndpointModel",
    "TransientEndpointError",
    "http_transport",
]


class EndpointError(RuntimeError):
    """A live endpoint failed in a way retrying cannot fix (4xx, bad payload)."""


class TransientEndpointError(EndpointError):
    """A live endpoint failed transiently (timeout, 429, 5xx); retry may succeed."""


class RemoteEndpointModel:
    """Wrap ``inner`` as a simulated remote endpoint with per-request latency.

    Parameters
    ----------
    inner:
        The model actually producing responses.
    latency_seconds:
        Mean one-way service time per request.
    jitter_seconds:
        Half-width of the deterministic per-request latency spread; the
        latency of a request depends only on ``(problem_id, sample_index,
        seed)``, so repeated runs see identical delays.
    seed:
        Seed of the latency jitter.
    """

    def __init__(
        self,
        inner: Model,
        latency_seconds: float = 0.05,
        jitter_seconds: float = 0.0,
        seed: int = 1,
    ) -> None:
        if latency_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latencies must be non-negative")
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.jitter_seconds = jitter_seconds
        self.seed = seed
        #: Total network time charged so far (sum over requests, not wall time).
        self.latency_charged = 0.0

    @property
    def name(self) -> str:
        return self.inner.name

    def request_latency(self, problem: Problem, sample_index: int = 0) -> float:
        """The deterministic latency this request pays."""

        if self.jitter_seconds == 0.0:
            return self.latency_seconds
        rng = DeterministicRNG(self.seed).child("remote-latency", problem.problem_id, sample_index)
        return max(0.0, self.latency_seconds + rng.uniform(-self.jitter_seconds, self.jitter_seconds))

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            time.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)

    async def generate_async(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        delay = self.request_latency(problem, sample_index)
        self.latency_charged += delay
        if delay > 0:
            await asyncio.sleep(delay)
        return self.inner.generate(problem, shots=shots, sample_index=sample_index)


class LiveEndpointModel:
    """A real live endpoint behind the :class:`~repro.llm.interface.Model`
    and :class:`~repro.llm.interface.AsyncModel` protocols.

    Parameters
    ----------
    name:
        The leaderboard name of the endpoint's model (keys checkpoints,
        results, and the score cache's per-model counters).
    transport:
        ``(prompt) -> response text``: the one network call.  It raises
        :class:`TransientEndpointError` for failures worth retrying and
        :class:`EndpointError` (or anything else) for permanent ones.
    async_transport:
        Optional awaitable variant used by ``generate_async``; without
        one, the synchronous transport runs on the event loop's default
        executor so request latencies still overlap.
    limiter:
        Wall-clock :class:`~repro.utils.ratelimit.TokenBucket` pacing
        *attempts* (every retry takes a fresh token — a retried request
        must not cut the rate-limit queue).  A virtual-clock bucket is
        rejected: fast-forwarding does not slow real traffic down.
    max_retries:
        How many times a :class:`TransientEndpointError` is retried
        before it propagates (total attempts = ``max_retries + 1``).
    backoff_seconds / backoff_multiplier:
        Deterministic exponential backoff slept between attempts:
        ``backoff_seconds * backoff_multiplier**retry_index``, capped at
        60 seconds.  Sugar over ``backoff`` — pass an explicit
        :class:`~repro.utils.backoff.BackoffPolicy` for a different cap,
        budget, or seeded jitter (the policy's ``attempts`` then defines
        the retry budget and ``max_retries`` is ignored).
    backoff:
        The full retry schedule as a shared
        :class:`~repro.utils.backoff.BackoffPolicy` — the same type the
        fleet's ``RemoteStore`` reconnects with.
    injector:
        Optional :class:`~repro.utils.faults.FaultInjector` for chaos
        tests: the ``endpoint.request`` site fires per attempt with the
        problem id as detail (``transient`` raises a retryable
        :class:`TransientEndpointError` through the normal retry path,
        ``delay`` sleeps before the request).
    sleep / async_sleep:
        Injectable sleep functions (tests pass recorders; production
        leaves the defaults).

    Responses are whatever the endpoint returns for the built prompt, so
    determinism is the endpoint's contract, not this adapter's; pair it
    with the content-addressed score cache so repeated answers are scored
    once no matter how the endpoint phrases its latency.
    """

    def __init__(
        self,
        name: str,
        transport: Callable[[str], str],
        *,
        async_transport: Callable[[str], Awaitable[str]] | None = None,
        limiter: TokenBucket | None = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.5,
        backoff_multiplier: float = 2.0,
        backoff: BackoffPolicy | None = None,
        injector: FaultInjector | None = None,
        sleep: Callable[[float], None] = time.sleep,
        async_sleep: Callable[[float], Awaitable[None]] | None = None,
    ) -> None:
        if not name:
            raise ValueError("a live endpoint needs a model name")
        if limiter is not None and limiter.virtual_clock:
            raise ValueError(
                "a live endpoint needs wall-clock pacing; build the limiter with "
                "TokenBucket(rate, burst, virtual_clock=False)"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0 or backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative with multiplier >= 1")
        self._name = name
        self.transport = transport
        self.async_transport = async_transport
        self.limiter = limiter
        self.backoff = backoff or BackoffPolicy(
            initial_seconds=backoff_seconds,
            multiplier=backoff_multiplier,
            max_seconds=60.0,
            attempts=max_retries + 1,
        )
        self.max_retries = self.backoff.attempts - 1
        self.backoff_seconds = self.backoff.initial_seconds
        self.backoff_multiplier = self.backoff.multiplier
        self.injector = injector if injector is not None else null_injector()
        self._sleep = sleep
        self._async_sleep = async_sleep if async_sleep is not None else asyncio.sleep
        #: Observability: attempts sent to the wire, transient retries paid.
        self.requests = 0
        self.retries = 0

    @property
    def name(self) -> str:
        return self._name

    def _backoff(self, retry_index: int) -> float:
        return self.backoff.delay(retry_index, self._name)

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        prompt = build_prompt(problem, shots=shots)
        for retry_index in range(self.max_retries + 1):
            if self.limiter is not None:
                self.limiter.acquire()
            self.requests += 1
            try:
                spec = self.injector.fire("endpoint.request", problem.problem_id)
                if spec is not None and spec.kind == "transient":
                    raise TransientEndpointError("injected transient endpoint fault")
                self.injector.sleep_if_delay(spec, problem.problem_id)
                return self.transport(prompt)
            except TransientEndpointError:
                if retry_index >= self.max_retries:
                    raise
                self.retries += 1
                backoff = self._backoff(retry_index)
                if backoff > 0:
                    self._sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    async def generate_async(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        prompt = build_prompt(problem, shots=shots)
        for retry_index in range(self.max_retries + 1):
            if self.limiter is not None:
                await self.limiter.acquire_async()
            self.requests += 1
            try:
                spec = self.injector.fire("endpoint.request", problem.problem_id)
                if spec is not None and spec.kind == "transient":
                    raise TransientEndpointError("injected transient endpoint fault")
                if spec is not None and spec.kind == "delay":
                    await self._async_sleep(self.injector.delay_seconds(spec, problem.problem_id))
                if self.async_transport is not None:
                    return await self.async_transport(prompt)
                # No native async transport: keep the event loop free by
                # running the blocking call on the default executor.
                return await asyncio.get_running_loop().run_in_executor(
                    None, self.transport, prompt
                )
            except TransientEndpointError:
                if retry_index >= self.max_retries:
                    raise
                self.retries += 1
                backoff = self._backoff(retry_index)
                if backoff > 0:
                    await self._async_sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover


#: HTTP statuses retrying can help with: rate limiting and server-side hiccups.
_TRANSIENT_STATUSES = frozenset({408, 429, 500, 502, 503, 504})


def http_transport(
    url: str,
    *,
    response_field: str = "response",
    prompt_field: str = "prompt",
    headers: dict[str, str] | None = None,
    timeout_seconds: float = 60.0,
) -> Callable[[str], str]:
    """A :class:`LiveEndpointModel` transport over stdlib ``urllib``.

    POSTs ``{prompt_field: prompt}`` as JSON to ``url`` and returns the
    ``response_field`` string of the JSON reply.  Timeouts, connection
    failures and 408/429/5xx statuses raise
    :class:`TransientEndpointError` (retried by the adapter); other HTTP
    errors and malformed payloads raise :class:`EndpointError`
    (propagated).  Kept deliberately minimal — provider-specific schemas
    wrap their SDK call in a plain function instead.
    """

    def transport(prompt: str) -> str:
        body = json.dumps({prompt_field: prompt}).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=body,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout_seconds) as reply:
                payload = json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code in _TRANSIENT_STATUSES:
                raise TransientEndpointError(f"endpoint returned HTTP {exc.code}") from exc
            raise EndpointError(f"endpoint returned HTTP {exc.code}") from exc
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise TransientEndpointError(f"endpoint unreachable: {exc}") from exc
        try:
            return str(payload[response_field])
        except (TypeError, KeyError) as exc:
            raise EndpointError(
                f"endpoint reply is missing the {response_field!r} field"
            ) from exc

    return transport
