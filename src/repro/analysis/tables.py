"""Builders for the paper's result tables (1, 4, 5, 6)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.failure_modes import FailureCategory, classify_answer
from repro.core.benchmark import BenchmarkResult, ModelEvaluation
from repro.dataset.problem import ProblemSet
from repro.dataset.schema import Variant
from repro.dataset.statistics import AugmentationStats, augmentation_statistics
from repro.llm.registry import ENGLISH_ONLY_MODELS
from repro.scoring.aggregate import METRIC_NAMES

__all__ = [
    "table1_augmentation",
    "table4_zero_shot",
    "table5_augmented_passes",
    "table6_few_shot",
    "figure7_failure_modes",
]


def table1_augmentation(dataset: ProblemSet) -> dict[Variant, AugmentationStats]:
    """Table 1: question count / average words / average tokens per variant."""

    return augmentation_statistics(dataset)


def table4_zero_shot(result: BenchmarkResult) -> list[dict[str, object]]:
    """Table 4: per-model average of all six metrics, sorted by unit-test score.

    English-only models are averaged over the original and simplified
    variants only, mirroring the footnote of the paper's Table 4.
    """

    rows: list[dict[str, object]] = []
    for model_name, evaluation in result.evaluations.items():
        records = evaluation.first_samples()
        if model_name in ENGLISH_ONLY_MODELS:
            records = [r for r in records if r.variant != Variant.TRANSLATED.value]
        scores = evaluation.mean_scores(records)
        row: dict[str, object] = {"model": model_name}
        row.update({name: scores[name] for name in METRIC_NAMES})
        rows.append(row)
    rows.sort(key=lambda row: row["unit_test"], reverse=True)
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


def table5_augmented_passes(result: BenchmarkResult) -> dict[str, dict[str, int | None]]:
    """Table 5: unit-test pass counts per variant for every model."""

    table: dict[str, dict[str, int | None]] = {}
    for model_name, evaluation in result.evaluations.items():
        row: dict[str, int | None] = {}
        for variant in Variant:
            if model_name in ENGLISH_ONLY_MODELS and variant is Variant.TRANSLATED:
                row[variant.value] = None
                continue
            row[variant.value] = evaluation.pass_count(variant=variant.value)
        table[model_name] = row
    return table


def table6_few_shot(evaluations_by_shots: dict[int, dict[str, ModelEvaluation]]) -> dict[str, dict[int, int]]:
    """Table 6: unit-test pass counts on the original dataset per number of shots.

    ``evaluations_by_shots`` maps shot count -> {model name -> evaluation}.
    """

    table: dict[str, dict[int, int]] = {}
    for shots, evaluations in sorted(evaluations_by_shots.items()):
        for model_name, evaluation in evaluations.items():
            table.setdefault(model_name, {})[shots] = evaluation.pass_count(variant=Variant.ORIGINAL.value)
    return table


def figure7_failure_modes(
    dataset: ProblemSet,
    result: BenchmarkResult,
    models: Sequence[str] = ("gpt-4", "llama-2-70b-chat", "llama-2-7b-chat"),
) -> dict[str, dict[FailureCategory, int]]:
    """Figure 7: failure-mode histograms over the original dataset."""

    originals = {p.problem_id: p for p in dataset.by_variant(Variant.ORIGINAL)}
    histograms: dict[str, dict[FailureCategory, int]] = {}
    for model_name in models:
        evaluation = result[model_name]
        counts = {category: 0 for category in FailureCategory}
        for record in evaluation.first_samples():
            problem = originals.get(record.problem_id)
            if problem is None:
                continue
            category = classify_answer(problem, record.raw_response, record.scores.unit_test >= 1.0)
            counts[category] += 1
        histograms[model_name] = counts
    return histograms
