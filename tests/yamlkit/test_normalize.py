"""Tests for YAML normalization and structural equality."""

from __future__ import annotations

from repro.yamlkit.normalize import canonical_dump, documents_equal, normalize_document


def test_documents_equal_ignores_key_order():
    a = {"kind": "Pod", "metadata": {"name": "x", "labels": {"a": "1"}}}
    b = {"metadata": {"labels": {"a": "1"}, "name": "x"}, "kind": "Pod"}
    assert documents_equal(a, b)


def test_documents_equal_respects_list_order():
    assert not documents_equal({"a": [1, 2]}, {"a": [2, 1]})


def test_documents_equal_numeric_string_leniency():
    assert documents_equal({"port": 80}, {"port": "80"})


def test_documents_equal_detects_missing_key():
    assert not documents_equal({"a": 1, "b": 2}, {"a": 1})


def test_documents_equal_detects_extra_nesting():
    assert not documents_equal({"a": {"b": 1}}, {"a": 1})


def test_normalize_document_coerces_keys_to_strings():
    assert normalize_document({1: "x"}) == {"1": "x"}


def test_canonical_dump_is_stable_under_key_order():
    a = {"b": 1, "a": {"y": 2, "x": 3}}
    b = {"a": {"x": 3, "y": 2}, "b": 1}
    assert canonical_dump(a) == canonical_dump(b)
