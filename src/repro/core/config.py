"""Benchmark configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.dataset.schema import Variant
from repro.evalcluster.calibration import (
    DEFAULT_PRIOR_WEIGHT,
    CalibrationStore,
    is_calibration_spec,
)
from repro.pipeline.executors import EXECUTOR_NAMES, GENERATE_EXECUTOR_NAMES, Executor
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE
from repro.pipeline.planner import BATCH_BY_NAMES, PLANNER_NAMES, ShardPlanner
from repro.scoring.cache import ScoreCache, is_score_cache_spec

__all__ = ["BenchmarkConfig"]


@dataclass(frozen=True)
class BenchmarkConfig:
    """Knobs controlling a benchmark run.

    Attributes
    ----------
    seed:
        Seed forwarded to the simulated models; the dataset has its own seed.
    shots:
        Number of few-shot examples prepended to every prompt (0-3, §4.3).
    samples:
        Samples generated per problem (1 for the zero-shot benchmark,
        more for the multi-sample experiment of §4.2).
    variants:
        Which question variants to evaluate; defaults to all three.
    run_unit_tests:
        Whether to execute the functional unit tests (True for the real
        benchmark; False simulates the cheap text-only scoring of §4.4).
    calibrate:
        Whether to rescale the simulated models so their original-set pass
        counts land on the paper's Table 5 values (recommended).
    max_workers:
        Parallelism of the query module and of the stage executors
        (1 = sequential; results are deterministic either way).  Also the
        concurrency bound of the async backend.
    executor:
        Backend the pipeline's parallelisable stage work runs on:
        ``"serial"``, ``"thread"`` (a persistent ``max_workers`` thread
        pool), ``"cluster"`` (the in-process master/worker
        evaluation-cluster runtime), ``"async"`` (bounded-concurrency
        asyncio with an optional token-bucket ``rate_limit``),
        ``"process"`` (a persistent process pool for CPU-bound scoring)
        or ``"fleet"`` (the cluster protocol over a real socket:
        ``max_workers`` spawned worker *processes* claiming jobs from a
        served store, with ``lease_seconds`` fault tolerance).  An
        already-constructed executor instance is also accepted — e.g. a
        :class:`~repro.evalcluster.fleet.FleetExecutor` attached to an
        externally managed store and worker fleet; instances stay
        caller-owned and are never closed by the run.  Scores are
        identical across backends.
    generate_executor:
        Optional separate backend for the generate stage only — pair
        ``generate_executor="async"`` with ``executor="process"`` to
        overlap remote-endpoint waits with process-parallel scoring.
        ``None`` (default) uses ``executor`` for every stage.  Any of
        ``serial``/``thread``/``cluster``/``async``; ``process`` is
        rejected (models are not picklable contracts).
    lease_seconds:
        Job-lease deadline of the cluster and fleet backends (``None`` =
        no leases): a worker that dies between claim and report gets its
        job re-enqueued once for a surviving worker.
    shards:
        Number of evaluation shards.  With ``shards > 1``,
        ``evaluate_model`` splits its requests across that many
        sub-pipelines (one checkpoint file per shard) and streams them so
        generation of one shard overlaps scoring of the previous one.
        ScoreCards are identical for every shard count.
    shard_by:
        Where the contiguous shard cuts land: ``"count"`` balances shards
        by request count (the default), ``"cost"`` balances them by the
        Figure 5 model's predicted seconds — base execution time plus
        image-pull time with warm registry-cache hits — so heterogeneous
        shards finish together.  The cuts move but the records do not:
        ScoreCards are identical for either policy.
    planner:
        Escape hatch overriding ``shard_by`` with a custom
        :class:`~repro.pipeline.planner.ShardPlanner` instance (anything
        with a ``plan(requests, num_shards) -> ShardPlan`` method that
        returns contiguous plans).
    rate_limit:
        Requests per second granted to the async backend's token bucket
        (``None`` = unthrottled).  The bucket runs on a deterministic
        virtual clock, so simulated endpoints account their throttle time
        without sleeping.
    batch_size:
        Streaming granularity of the pipeline: records are generated,
        scored and checkpointed in batches of this size.  Smaller batches
        checkpoint more often; larger ones amortise stage overhead.
        Batching can never change a score.
    batch_by:
        Where the batch cuts land within a shard: ``"count"`` slices
        fixed-size batches (the default), ``"cost"`` cuts contiguous
        batches of roughly equal *predicted seconds* via
        :class:`~repro.pipeline.planner.BatchSizer` — never more batches
        than the fixed split, and with ``calibration`` set the
        predictions are the calibrated ones, so batch boundaries adapt
        to measured durations.  Records are bit-identical either way.
    steal:
        Scheduling policy of multi-model (and sharded) runs.  ``True``
        (the default): idle generation workers — and the idle scoring
        consumer — steal the next batch from the job with the longest
        predicted remaining seconds, so one straggler model cannot
        bubble the whole leaderboard.  ``False``: the static round-robin
        interleave.  Records are bit-identical either way; only the
        wall-clock moves.
    calibration:
        Cost-model calibration: a
        :class:`~repro.evalcluster.calibration.CalibrationStore` instance
        or the path of its JSONL file.  When set, every run feeds its
        measured per-record durations into the store, and the benchmark's
        cost model becomes a
        :class:`~repro.evalcluster.calibration.CalibratedCostModel` that
        blends those observations into its predictions — so a second run
        of the same corpus cuts its shards (``shard_by="cost"``) and
        orders its steals on observed rather than modelled seconds.
        ``None`` disables the loop (pure Figure 5 predictions).
    calibration_prior_weight:
        How many observations the Figure 5 prior is worth in the blend
        (0 trusts the first measurement outright; large values change
        slowly).
    score_cache:
        The content-addressed global score cache: a
        :class:`~repro.scoring.cache.ScoreCache` instance or the path of
        its JSONL file.  When set, every unique (reference, answer) pair
        is scored at most once *across runs* — hits skip scoring entirely,
        misses write back — and all models of a leaderboard share the one
        store.  Scores are bit-identical with the cache on, off, warm or
        cold; only the wall-clock moves.  ``None`` (default) disables it.
    offload_generation:
        Ship each model's whole generate→extract→score chain to the
        executor as picklable :class:`~repro.pipeline.stages.GenerationTask`
        envelopes built from a :class:`~repro.llm.remote.ModelSpec`
        (:meth:`ModelSpec.of` of the resolved model).  With a ``"fleet"``
        executor the workers generate *and* score out of process under
        the store's distributed rate limit — the coordinator only moves
        envelopes.  Records are bit-identical to the parent-generation
        path; requires a picklable model (all simulated registry models
        are) and is incompatible with a separate ``generate_executor``.
    """

    seed: int = 7
    shots: int = 0
    samples: int = 1
    variants: tuple[Variant, ...] = (Variant.ORIGINAL, Variant.SIMPLIFIED, Variant.TRANSLATED)
    run_unit_tests: bool = True
    calibrate: bool = True
    max_workers: int = 1
    executor: str | Executor = "serial"
    generate_executor: str | None = None
    shards: int = 1
    shard_by: str = "count"
    planner: ShardPlanner | None = None
    rate_limit: float | None = None
    lease_seconds: float | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    batch_by: str = "count"
    steal: bool = True
    calibration: CalibrationStore | str | os.PathLike[str] | None = None
    calibration_prior_weight: float = DEFAULT_PRIOR_WEIGHT
    score_cache: ScoreCache | str | os.PathLike[str] | None = None
    offload_generation: bool = False

    def __post_init__(self) -> None:
        if self.shots < 0 or self.shots > 3:
            raise ValueError("shots must be between 0 and 3")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if not self.variants:
            raise ValueError("at least one variant must be selected")
        if isinstance(self.executor, str):
            if self.executor not in EXECUTOR_NAMES:
                raise ValueError(f"executor must be one of {EXECUTOR_NAMES}")
        elif not callable(getattr(self.executor, "map", None)):
            raise ValueError("executor must be a name or expose a map(fn, tasks) method")
        if self.generate_executor is not None and self.generate_executor not in GENERATE_EXECUTOR_NAMES:
            raise ValueError(f"generate_executor must be one of {GENERATE_EXECUTOR_NAMES}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_by not in PLANNER_NAMES:
            raise ValueError(f"shard_by must be one of {PLANNER_NAMES}")
        if self.planner is not None and not callable(getattr(self.planner, "plan", None)):
            raise ValueError("planner must expose a plan(requests, num_shards) method")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.lease_seconds is not None and self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_by not in BATCH_BY_NAMES:
            raise ValueError(f"batch_by must be one of {BATCH_BY_NAMES}")
        if not is_calibration_spec(self.calibration):
            raise ValueError(
                "calibration must be a CalibrationStore, a JSONL path, or None"
            )
        if self.calibration_prior_weight < 0:
            raise ValueError("calibration_prior_weight must be >= 0")
        if not is_score_cache_spec(self.score_cache):
            raise ValueError("score_cache must be a ScoreCache, a JSONL path, or None")
        if self.offload_generation and self.generate_executor is not None:
            raise ValueError(
                "offload_generation ships the whole generate→extract→score chain "
                "to the (fleet) executor; a separate generate_executor cannot apply"
            )
