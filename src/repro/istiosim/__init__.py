"""Istio CRD validation layered on top of the Kubernetes simulator.

Istio problems in the dataset define ``VirtualService``, ``DestinationRule``
and ``Gateway`` objects.  Importing this package registers validators for
those kinds with :mod:`repro.kubesim.validation`, so applying an Istio
manifest through the simulated cluster gets the same strictness as native
kinds.  Query helpers expose the fields the dataset's unit tests assert on
(load-balancer policy, subset labels, gateway servers, route destinations).
"""

from repro.istiosim.resources import (
    destination_rule_lb_policy,
    destination_rule_subsets,
    gateway_servers,
    register_istio_validators,
    virtual_service_destinations,
)

register_istio_validators()

__all__ = [
    "destination_rule_lb_policy",
    "destination_rule_subsets",
    "gateway_servers",
    "register_istio_validators",
    "virtual_service_destinations",
]
