"""Container image catalog shared by the scheduler and the evaluation cluster.

Pods only become Ready when their image can be "pulled".  The catalog below
lists the images used throughout the dataset together with an approximate
compressed size in MB; the size feeds the Docker pull-through cache and the
bandwidth model of :mod:`repro.evalcluster` (Figure 5).
Unknown repositories still resolve (Docker Hub would try to pull them), but
clearly malformed references fail.
"""

from __future__ import annotations

import re

__all__ = ["KNOWN_IMAGES", "image_size_mb", "is_pullable", "normalize_image"]

# repository -> approximate compressed size in MB
KNOWN_IMAGES: dict[str, float] = {
    "nginx": 55.0,
    "redis": 38.0,
    "mysql": 145.0,
    "postgres": 120.0,
    "ubuntu": 28.0,
    "busybox": 2.2,
    "alpine": 3.2,
    "httpd": 56.0,
    "memcached": 30.0,
    "mongo": 240.0,
    "rabbitmq": 90.0,
    "python": 340.0,
    "node": 380.0,
    "golang": 310.0,
    "wordpress": 200.0,
    "traefik": 45.0,
    "envoyproxy/envoy": 65.0,
    "istio/proxyv2": 95.0,
    "istio/pilot": 80.0,
    "grafana/grafana": 110.0,
    "prom/prometheus": 85.0,
    "bitnami/kafka": 260.0,
    "bitnami/zookeeper": 180.0,
    "registry": 10.0,
    "gcr.io/google-samples/hello-app": 7.0,
    "gcr.io/google_containers/kube-registry-proxy": 20.0,
    "k8s.gcr.io/echoserver": 48.0,
    "docker.io/istio/examples-bookinfo-ratings-v1": 120.0,
    "docker.io/istio/examples-bookinfo-reviews-v1": 130.0,
    "docker.io/istio/examples-bookinfo-details-v1": 110.0,
    "docker.io/istio/examples-bookinfo-productpage-v1": 125.0,
    "fluent/fluentd": 42.0,
    "elasticsearch": 420.0,
    "kibana": 390.0,
    "jenkins/jenkins": 310.0,
    "vault": 70.0,
    "consul": 60.0,
    "minio/minio": 95.0,
    "nats": 12.0,
    "haproxy": 50.0,
    "caddy": 25.0,
    "perl": 360.0,
}

_DEFAULT_SIZE_MB = 60.0
_IMAGE_REF_RE = re.compile(r"^[a-z0-9]+([._\-/][a-z0-9]+)*(:[\w.\-]+)?(@sha256:[0-9a-f]{8,})?$")


def normalize_image(image: str) -> tuple[str, str]:
    """Split an image reference into (repository, tag)."""

    image = image.strip()
    if "@" in image:
        image = image.split("@", 1)[0]
    repository, _, tag = image.partition(":")
    return repository, tag or "latest"


def is_pullable(image: str) -> bool:
    """Whether the image reference is well-formed enough to be pulled."""

    if not image or not isinstance(image, str):
        return False
    return bool(_IMAGE_REF_RE.match(image.strip()))


def image_size_mb(image: str) -> float:
    """Approximate compressed size of the image, in megabytes."""

    repository, _ = normalize_image(image)
    if repository in KNOWN_IMAGES:
        return KNOWN_IMAGES[repository]
    # Strip a registry prefix (e.g. docker.io/library/nginx) and retry.
    short = repository.split("/")[-1]
    return KNOWN_IMAGES.get(short, _DEFAULT_SIZE_MB)
