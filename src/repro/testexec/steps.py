"""Step types composing a unit-test program.

Every step is a small frozen dataclass that can be serialised to a plain
dictionary (``to_dict``/``step_from_dict``) so the dataset can be written
to disk, and rendered to the equivalent shell line(s) (``script_lines``)
so dataset statistics match the paper's "lines of unit test" measure.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

__all__ = [
    "Step",
    "CreateNamespace",
    "ApplyManifest",
    "ApplyAnswer",
    "WaitFor",
    "AssertExists",
    "AssertJsonPath",
    "AssertFieldAbsent",
    "AssertPodCount",
    "AssertServiceReachable",
    "AssertHostPortReachable",
    "AssertDescribeContains",
    "AssertEnvoyListenerPort",
    "AssertEnvoyRoute",
    "AssertEnvoyClusterLb",
    "AssertEnvoyClusterEndpoints",
    "AssertIstioLbPolicy",
    "AssertIstioSubsetLabels",
    "AssertIstioDestination",
    "AssertGatewayServer",
    "UnitTestProgram",
    "step_from_dict",
]


@dataclass(frozen=True)
class Step:
    """Base class: every step knows its type tag and shell rendering."""

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["step"] = type(self).__name__
        return data

    def script_lines(self) -> list[str]:  # pragma: no cover - overridden
        return [f"# {type(self).__name__}"]


# ---------------------------------------------------------------------------
# Environment setup steps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CreateNamespace(Step):
    """``kubectl create ns <name>``."""

    name: str

    def script_lines(self) -> list[str]:
        return [f"kubectl create ns {self.name}"]


@dataclass(frozen=True)
class ApplyManifest(Step):
    """Apply a fixed setup manifest (context resources, secrets, roles...)."""

    yaml_text: str
    namespace: str | None = None

    def script_lines(self) -> list[str]:
        lines = self.yaml_text.strip().splitlines()
        return [f'echo "{lines[0]}" | kubectl apply -f -'] + [f"#   {line}" for line in lines[1:]]


@dataclass(frozen=True)
class ApplyAnswer(Step):
    """Apply the YAML file under evaluation (``labeled_code.yaml``)."""

    namespace: str | None = None

    def script_lines(self) -> list[str]:
        return ["kubectl apply -f labeled_code.yaml"]


@dataclass(frozen=True)
class WaitFor(Step):
    """``kubectl wait --for=condition=<condition> ...``."""

    kind: str
    condition: str
    name: str | None = None
    selector: dict[str, str] | None = None
    namespace: str = "default"
    timeout_seconds: int = 60

    def script_lines(self) -> list[str]:
        target = self.name or ("-l " + ",".join(f"{k}={v}" for k, v in (self.selector or {}).items()) or "--all")
        return [
            f"kubectl wait --for=condition={self.condition} {self.kind.lower()} {target} "
            f"-n {self.namespace} --timeout={self.timeout_seconds}s"
        ]


# ---------------------------------------------------------------------------
# Kubernetes assertions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AssertExists(Step):
    """The object must exist after the answer is applied."""

    kind: str
    name: str
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [f"kubectl get {self.kind.lower()} {self.name} -n {self.namespace}"]


@dataclass(frozen=True)
class AssertJsonPath(Step):
    """A JSONPath query must equal / contain / be one of the expected values."""

    kind: str
    jsonpath: str
    expected: str | None = None
    contains: str | None = None
    one_of: tuple[str, ...] = ()
    name: str | None = None
    selector: dict[str, str] | None = None
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        target = self.name or "-l " + ",".join(f"{k}={v}" for k, v in (self.selector or {}).items())
        check = self.expected if self.expected is not None else (self.contains or "|".join(self.one_of))
        return [
            f"value=$(kubectl get {self.kind.lower()} {target} -n {self.namespace} -o=jsonpath='{self.jsonpath}')",
            f'[[ "$value" == *"{check}"* ]] || exit 1',
        ]


@dataclass(frozen=True)
class AssertFieldAbsent(Step):
    """A JSONPath query must produce no value (field must not be set)."""

    kind: str
    jsonpath: str
    name: str | None = None
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [
            f"value=$(kubectl get {self.kind.lower()} {self.name} -n {self.namespace} -o=jsonpath='{self.jsonpath}')",
            '[[ -z "$value" ]] || exit 1',
        ]


@dataclass(frozen=True)
class AssertPodCount(Step):
    """At least ``min_count`` ready pods must match the selector."""

    selector: dict[str, str]
    min_count: int = 1
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        sel = ",".join(f"{k}={v}" for k, v in self.selector.items())
        return [
            f"count=$(kubectl get pods -l {sel} -n {self.namespace} --field-selector=status.phase=Running | wc -l)",
            f"[[ $count -ge {self.min_count} ]] || exit 1",
        ]


@dataclass(frozen=True)
class AssertServiceReachable(Step):
    """The service must have ready endpoints (the ``curl`` analogue)."""

    name: str
    namespace: str = "default"
    port: int | None = None

    def script_lines(self) -> list[str]:
        port = f":{self.port}" if self.port else ""
        return [
            f"cluster_ip=$(kubectl get svc {self.name} -n {self.namespace} -o=jsonpath='{{.spec.clusterIP}}')",
            f'curl -s -o /dev/null -w "%{{http_code}}" $cluster_ip{port} | grep 200',
        ]


@dataclass(frozen=True)
class AssertHostPortReachable(Step):
    """Some ready pod must expose the host port (DaemonSet-style checks)."""

    host_port: int
    selector: dict[str, str] | None = None
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [
            "host_ip=$(kubectl get pod $pods -o=jsonpath='{.status.hostIP}')",
            f'curl -s -o /dev/null -w "%{{http_code}}" $host_ip:{self.host_port} | grep 200',
        ]


@dataclass(frozen=True)
class AssertDescribeContains(Step):
    """``kubectl describe <kind> <name> | grep <substring>``."""

    kind: str
    name: str
    substring: str
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [f'kubectl describe {self.kind.lower()} {self.name} -n {self.namespace} | grep "{self.substring}"']


# ---------------------------------------------------------------------------
# Envoy assertions (the answer is an Envoy bootstrap config)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AssertEnvoyListenerPort(Step):
    """The configuration must expose a listener on the port."""

    port: int

    def script_lines(self) -> list[str]:
        return [f"docker run -d envoyproxy/envoy -c answer.yaml && curl -s localhost:{self.port}"]


@dataclass(frozen=True)
class AssertEnvoyRoute(Step):
    """A request to ``port``/``path`` must be routed to ``cluster``."""

    port: int
    cluster: str
    path: str = "/"
    host: str = "*"

    def script_lines(self) -> list[str]:
        return [f"curl -s -H 'Host: {self.host}' localhost:{self.port}{self.path} | grep {self.cluster}"]


@dataclass(frozen=True)
class AssertEnvoyClusterLb(Step):
    """The named cluster must use the given lb_policy."""

    cluster: str
    policy: str

    def script_lines(self) -> list[str]:
        return [f"grep -A3 'name: {self.cluster}' answer.yaml | grep 'lb_policy: {self.policy}'"]


@dataclass(frozen=True)
class AssertEnvoyClusterEndpoints(Step):
    """The named cluster must declare an endpoint on (address, port)."""

    cluster: str
    address: str
    port: int

    def script_lines(self) -> list[str]:
        return [f"grep -A10 'name: {self.cluster}' answer.yaml | grep 'port_value: {self.port}'"]


# ---------------------------------------------------------------------------
# Istio assertions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AssertIstioLbPolicy(Step):
    """DestinationRule (or one of its subsets) must use the policy."""

    name: str
    policy: str
    subset: str | None = None
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        scope = f".subsets[?name=='{self.subset}']" if self.subset else ""
        return [
            f"kubectl get destinationrule {self.name} -n {self.namespace} "
            f"-o=jsonpath='{{.spec{scope}.trafficPolicy.loadBalancer.simple}}' | grep {self.policy}"
        ]


@dataclass(frozen=True)
class AssertIstioSubsetLabels(Step):
    """A DestinationRule subset must carry the given labels."""

    name: str
    subset: str
    labels: dict[str, str]
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [
            f"kubectl get destinationrule {self.name} -n {self.namespace} -o yaml | grep -A3 'name: {self.subset}'"
        ]


@dataclass(frozen=True)
class AssertIstioDestination(Step):
    """A VirtualService must route to (host, subset)."""

    name: str
    host: str
    subset: str | None = None
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [f"kubectl get virtualservice {self.name} -n {self.namespace} -o yaml | grep 'host: {self.host}'"]


@dataclass(frozen=True)
class AssertGatewayServer(Step):
    """A Gateway must expose a server with the port/protocol/host."""

    name: str
    port: int
    protocol: str
    host: str = "*"
    namespace: str = "default"

    def script_lines(self) -> list[str]:
        return [f"kubectl get gateway {self.name} -n {self.namespace} -o yaml | grep 'number: {self.port}'"]


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------

_STEP_TYPES = {
    cls.__name__: cls
    for cls in [
        CreateNamespace,
        ApplyManifest,
        ApplyAnswer,
        WaitFor,
        AssertExists,
        AssertJsonPath,
        AssertFieldAbsent,
        AssertPodCount,
        AssertServiceReachable,
        AssertHostPortReachable,
        AssertDescribeContains,
        AssertEnvoyListenerPort,
        AssertEnvoyRoute,
        AssertEnvoyClusterLb,
        AssertEnvoyClusterEndpoints,
        AssertIstioLbPolicy,
        AssertIstioSubsetLabels,
        AssertIstioDestination,
        AssertGatewayServer,
    ]
}


def step_from_dict(data: Mapping[str, Any]) -> Step:
    """Rehydrate a step from its serialised dictionary."""

    data = dict(data)
    step_name = data.pop("step", None)
    cls = _STEP_TYPES.get(str(step_name))
    if cls is None:
        raise ValueError(f"unknown step type {step_name!r}")
    # JSON round-trips tuples as lists and dataclass fields are typed, so
    # convert known sequence fields back.
    if cls is AssertJsonPath and isinstance(data.get("one_of"), list):
        data["one_of"] = tuple(data["one_of"])
    return cls(**data)


@dataclass(frozen=True)
class UnitTestProgram:
    """An ordered list of steps plus the target substrate.

    ``target`` is ``"kubernetes"`` (the answer is applied to the simulated
    cluster; also used for Istio problems) or ``"envoy"`` (the answer is an
    Envoy bootstrap configuration).
    """

    steps: tuple[Step, ...]
    target: str = "kubernetes"
    nodes: int = 1

    def __post_init__(self) -> None:
        if self.target not in ("kubernetes", "envoy"):
            raise ValueError(f"unknown unit-test target {self.target!r}")

    def script_lines(self) -> list[str]:
        """Render the whole program as a shell script (for statistics)."""

        lines: list[str] = []
        for step in self.steps:
            lines.extend(step.script_lines())
        lines.append("echo unit_test_passed")
        return lines

    def line_count(self) -> int:
        """Number of script lines (paper's "Avg. Lines of Unit Test")."""

        return len(self.script_lines())

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "nodes": self.nodes,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UnitTestProgram":
        steps = tuple(step_from_dict(item) for item in data.get("steps", []))
        return cls(steps=steps, target=str(data.get("target", "kubernetes")), nodes=int(data.get("nodes", 1)))
