"""The multi-model leaderboard scheduler: interleaving, equivalence with
sequential evaluation across every backend and planner, and resume."""

from __future__ import annotations

import itertools

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.pipeline import (
    ModelJob,
    MultiModelScheduler,
    PipelineCheckpoint,
    model_checkpoint_base,
    shard_checkpoint_path,
)
from repro.pipeline.executors import EXECUTOR_NAMES
from repro.scoring.compiled import ReferenceStore

MODELS = ["gpt-4", "llama-2-13b-chat"]
SAMPLE_SIZE = 14


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


@pytest.fixture(scope="module")
def seeded_problems(small_dataset):
    return list(small_dataset)[:SAMPLE_SIZE]


@pytest.fixture(scope="module")
def sequential_truth(small_dataset, seeded_problems):
    """Sequential per-model evaluate_model runs — the bit-identity baseline."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    return {
        name: benchmark.evaluate_model(name, problems=seeded_problems) for name in MODELS
    }


# ---------------------------------------------------------------------------
# Acceptance: evaluate_models ≡ sequential evaluate_model, everywhere
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("steal", [False, True])
@pytest.mark.parametrize("shard_by", ["count", "cost"])
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_leaderboard_identical_across_executors_and_planners(
    small_dataset, seeded_problems, sequential_truth, executor, shard_by, steal
):
    config = BenchmarkConfig(
        seed=7, executor=executor, max_workers=3, shards=3, shard_by=shard_by, steal=steal
    )
    result = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=seeded_problems
    )
    assert result.models() == MODELS
    for name in MODELS:
        assert result[name].records == sequential_truth[name].records


def test_interleaved_async_generation_with_process_scoring_identical(
    small_dataset, seeded_problems, sequential_truth
):
    """The headline configuration — async generation, process scoring,
    cost-planned shards, all models interleaved — changes no record."""

    config = BenchmarkConfig(
        seed=7,
        executor="process",
        generate_executor="async",
        max_workers=3,
        shards=2,
        shard_by="cost",
        rate_limit=10_000.0,
    )
    result = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=seeded_problems
    )
    for name in MODELS:
        assert result[name].records == sequential_truth[name].records


def test_run_iter_interleaves_but_keeps_per_model_order(small_original_problems):
    problems = list(small_original_problems)[:12]
    jobs = [
        ModelJob(get_model("gpt-4"), _requests(problems)),
        ModelJob(get_model("gpt-3.5"), _requests(problems)),
    ]
    with MultiModelScheduler(
        jobs, shards=2, store=ReferenceStore(), batch_size=3
    ) as scheduler:
        streamed = list(scheduler.run_iter())
    names = [name for name, _ in streamed]
    assert set(names) == {"gpt-4", "gpt-3.5"}
    # Models weave (the stream is not one model then the other)...
    first_block = names[: names.index("gpt-3.5")]
    assert len(first_block) < len(problems)
    # ...but within each model, records stay in request order.
    for model_name in ("gpt-4", "gpt-3.5"):
        ids = [record.problem_id for name, record in streamed if name == model_name]
        assert ids == [p.problem_id for p in problems]


# ---------------------------------------------------------------------------
# Scheduler contracts
# ---------------------------------------------------------------------------

def test_duplicate_model_names_are_rejected(small_original_problems):
    requests = _requests(list(small_original_problems)[:2])
    jobs = [ModelJob(get_model("gpt-4"), requests), ModelJob(get_model("gpt-4"), requests)]
    with pytest.raises(ValueError, match="distinct"):
        MultiModelScheduler(jobs)


def test_evaluate_models_deduplicates_repeated_models(small_dataset, seeded_problems):
    """A repeated model in the public API is scheduled once, not rejected
    (evaluation is deterministic, so the old evaluate-twice-keep-one
    behaviour returned the same result more slowly)."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    result = benchmark.evaluate_models(models=["gpt-4", "gpt-4"], problems=seeded_problems)
    assert result.models() == ["gpt-4"]
    assert len(result["gpt-4"].records) == len(seeded_problems)


def test_checkpoint_instances_are_rejected(tmp_path, small_original_problems):
    job = ModelJob(
        get_model("gpt-4"),
        _requests(list(small_original_problems)[:2]),
        checkpoint=PipelineCheckpoint(tmp_path / "x.jsonl"),
    )
    with pytest.raises(TypeError, match="base"):
        MultiModelScheduler([job])


def test_empty_job_builds_no_pipelines_or_checkpoints(tmp_path):
    """A job with zero requests is planned as one empty shard, which must
    not materialise a pipeline or touch the filesystem."""

    base = tmp_path / "empty.ckpt.jsonl"
    with MultiModelScheduler(
        [ModelJob(get_model("gpt-4"), [], checkpoint=base)], shards=4
    ) as scheduler:
        evaluations = scheduler.run()
    assert evaluations["gpt-4"].records == []
    assert evaluations["gpt-4"].model_name == "gpt-4"
    assert scheduler._pipelines == []
    assert list(tmp_path.iterdir()) == []


def test_rate_limited_generation_uses_a_single_worker(small_original_problems):
    """A shared token bucket must never be drained from several generation
    workers at once — including when the limiter-bearing async executor is
    the *main* executor that generation merely falls back to."""

    from repro.pipeline.executors import AsyncExecutor

    requests = _requests(list(small_original_problems)[:8])
    jobs = [ModelJob(get_model("gpt-4"), requests)]
    limited = AsyncExecutor(max_concurrency=4, rate_limit=1000.0)
    unlimited = AsyncExecutor(max_concurrency=4)

    as_generate = MultiModelScheduler(jobs, generate_executor=limited, prefetch_batches=4)
    as_fallback = MultiModelScheduler(jobs, executor=limited, prefetch_batches=4)
    free = MultiModelScheduler(jobs, generate_executor=unlimited, prefetch_batches=4)
    assert as_generate._generation_workers(8) == 1
    assert as_fallback._generation_workers(8) == 1
    assert free._generation_workers(8) == 4


def test_producer_error_propagates_to_consumer(small_original_problems):
    class Exploding:
        name = "gpt-4"

        def generate(self, problem, shots=0, sample_index=0):
            raise KeyboardInterrupt("user abort")  # not caught by error capture

    jobs = [ModelJob(Exploding(), _requests(list(small_original_problems)[:4]))]
    with MultiModelScheduler(jobs, shards=2, store=ReferenceStore()) as scheduler:
        with pytest.raises(KeyboardInterrupt, match="user abort"):
            list(scheduler.run_iter())


# ---------------------------------------------------------------------------
# Acceptance: kill + resume of a multi-model run
# ---------------------------------------------------------------------------

def test_killed_leaderboard_run_resumes_to_identical_result(
    tmp_path, small_dataset, seeded_problems, sequential_truth
):
    """Abandoning an interleaved leaderboard run mid-stream and re-running
    it from the per-(model, shard) checkpoints reproduces the sequential
    evaluations exactly."""

    base = tmp_path / "leaderboard.ckpt.jsonl"
    config = BenchmarkConfig(seed=7, shards=2)
    benchmark = CloudEvalBenchmark(small_dataset, config)

    # Build the same scheduler evaluate_models would, but "kill" the run
    # by abandoning the stream partway through.
    jobs = []
    for name in MODELS:
        model, requests = benchmark.requests(name, problems=seeded_problems)
        jobs.append(ModelJob(model, requests, checkpoint=model_checkpoint_base(base, name)))
    first = MultiModelScheduler(
        jobs, shards=2, store=ReferenceStore(), batch_size=3, prefetch_batches=1
    )
    consumed = list(itertools.islice(first.run_iter(), 9))
    first.close()
    assert 0 < len(consumed) < 2 * SAMPLE_SIZE

    # Both models checkpointed some shards, and nothing checkpointed everything.
    checkpointed = 0
    for name in MODELS:
        for index in range(2):
            path = shard_checkpoint_path(model_checkpoint_base(base, name), index, 2)
            if path.exists():
                checkpointed += len(PipelineCheckpoint(path))
    assert consumed and checkpointed >= len(consumed)
    assert checkpointed < 2 * SAMPLE_SIZE

    resumed = benchmark.evaluate_models(
        models=MODELS, problems=seeded_problems, checkpoint=base
    )
    for name in MODELS:
        assert resumed[name].records == sequential_truth[name].records
