"""Resource model and kind registry for the Kubernetes simulator.

A :class:`Resource` wraps a parsed manifest dictionary and exposes typed
access to the metadata fields the simulator and unit tests rely on.  The
:data:`KIND_REGISTRY` lists every kind the simulator understands, with the
``apiVersion`` values a real API server would accept for it and whether the
kind is namespaced.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.kubesim.errors import UnsupportedKindError, ValidationError

__all__ = ["KindInfo", "KIND_REGISTRY", "Resource", "resolve_kind"]


@dataclass(frozen=True)
class KindInfo:
    """Static information about a Kubernetes kind."""

    kind: str
    api_versions: tuple[str, ...]
    namespaced: bool = True
    workload: bool = False  # kinds that own Pods via a template


KIND_REGISTRY: dict[str, KindInfo] = {
    info.kind: info
    for info in [
        KindInfo("Pod", ("v1",), workload=True),
        KindInfo("Deployment", ("apps/v1",), workload=True),
        KindInfo("DaemonSet", ("apps/v1",), workload=True),
        KindInfo("StatefulSet", ("apps/v1",), workload=True),
        KindInfo("ReplicaSet", ("apps/v1",), workload=True),
        KindInfo("Job", ("batch/v1",), workload=True),
        KindInfo("CronJob", ("batch/v1",), workload=True),
        KindInfo("Service", ("v1",)),
        KindInfo("Endpoints", ("v1",)),
        KindInfo("ConfigMap", ("v1",)),
        KindInfo("Secret", ("v1",)),
        KindInfo("Namespace", ("v1",), namespaced=False),
        KindInfo("Node", ("v1",), namespaced=False),
        KindInfo("ServiceAccount", ("v1",)),
        KindInfo("PersistentVolume", ("v1",), namespaced=False),
        KindInfo("PersistentVolumeClaim", ("v1",)),
        KindInfo("LimitRange", ("v1",)),
        KindInfo("ResourceQuota", ("v1",)),
        KindInfo("Ingress", ("networking.k8s.io/v1",)),
        KindInfo("NetworkPolicy", ("networking.k8s.io/v1",)),
        KindInfo("HorizontalPodAutoscaler", ("autoscaling/v2", "autoscaling/v1")),
        KindInfo("Role", ("rbac.authorization.k8s.io/v1",)),
        KindInfo("RoleBinding", ("rbac.authorization.k8s.io/v1",)),
        KindInfo("ClusterRole", ("rbac.authorization.k8s.io/v1",), namespaced=False),
        KindInfo("ClusterRoleBinding", ("rbac.authorization.k8s.io/v1",), namespaced=False),
        KindInfo("StorageClass", ("storage.k8s.io/v1",), namespaced=False),
        KindInfo("PriorityClass", ("scheduling.k8s.io/v1",), namespaced=False),
        # Istio CRDs are served by the same API machinery in this simulator.
        KindInfo("VirtualService", ("networking.istio.io/v1alpha3", "networking.istio.io/v1beta1")),
        KindInfo("DestinationRule", ("networking.istio.io/v1alpha3", "networking.istio.io/v1beta1")),
        KindInfo("Gateway", ("networking.istio.io/v1alpha3", "networking.istio.io/v1beta1")),
        KindInfo("ServiceEntry", ("networking.istio.io/v1alpha3", "networking.istio.io/v1beta1")),
        KindInfo("PeerAuthentication", ("security.istio.io/v1beta1",)),
        KindInfo("AuthorizationPolicy", ("security.istio.io/v1beta1",)),
    ]
}


def resolve_kind(kind: str) -> KindInfo:
    """Look up a kind in the registry, raising for unknown kinds."""

    info = KIND_REGISTRY.get(kind)
    if info is None:
        raise UnsupportedKindError(f"unknown kind {kind!r}", field="kind")
    return info


@dataclass
class Resource:
    """A stored Kubernetes object (manifest plus simulator-managed status)."""

    manifest: dict[str, Any]
    status: dict[str, Any] = field(default_factory=dict)
    generation: int = 1
    owner: tuple[str, str, str] | None = None  # (kind, namespace, name) of the owner

    # -- construction -----------------------------------------------------
    @classmethod
    def from_manifest(cls, manifest: dict[str, Any]) -> "Resource":
        """Build a resource from a parsed manifest, checking basic shape."""

        if not isinstance(manifest, dict):
            raise ValidationError("manifest must be a mapping")
        kind = manifest.get("kind")
        if not kind or not isinstance(kind, str):
            raise ValidationError("manifest is missing a kind", field="kind")
        if "apiVersion" not in manifest:
            raise ValidationError("manifest is missing apiVersion", field="apiVersion")
        metadata = manifest.get("metadata")
        if not isinstance(metadata, dict) or not metadata.get("name"):
            raise ValidationError("manifest is missing metadata.name", field="metadata.name")
        return cls(manifest=copy.deepcopy(manifest))

    # -- metadata accessors -----------------------------------------------
    @property
    def kind(self) -> str:
        return str(self.manifest.get("kind", ""))

    @property
    def api_version(self) -> str:
        return str(self.manifest.get("apiVersion", ""))

    @property
    def metadata(self) -> dict[str, Any]:
        return self.manifest.setdefault("metadata", {})

    @property
    def name(self) -> str:
        return str(self.metadata.get("name", ""))

    @property
    def namespace(self) -> str:
        return str(self.metadata.get("namespace", "") or "default")

    @property
    def labels(self) -> dict[str, str]:
        labels = self.metadata.get("labels") or {}
        return {str(k): str(v) for k, v in labels.items()} if isinstance(labels, dict) else {}

    @property
    def annotations(self) -> dict[str, str]:
        annotations = self.metadata.get("annotations") or {}
        return (
            {str(k): str(v) for k, v in annotations.items()}
            if isinstance(annotations, dict)
            else {}
        )

    @property
    def spec(self) -> dict[str, Any]:
        spec = self.manifest.get("spec")
        return spec if isinstance(spec, dict) else {}

    @property
    def kind_info(self) -> KindInfo:
        return resolve_kind(self.kind)

    def key(self) -> tuple[str, str, str]:
        """Storage key: (kind, namespace or '', name)."""

        namespace = self.namespace if self.kind_info.namespaced else ""
        return (self.kind, namespace, self.name)

    # -- views -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Full object view (manifest merged with live status)."""

        merged = copy.deepcopy(self.manifest)
        if self.status:
            merged["status"] = copy.deepcopy(self.status)
        return merged

    def pod_template(self) -> dict[str, Any] | None:
        """Return the embedded pod template for workload kinds."""

        if self.kind == "Pod":
            return self.manifest
        spec = self.spec
        if self.kind == "CronJob":
            job_template = spec.get("jobTemplate", {})
            if isinstance(job_template, dict):
                return job_template.get("spec", {}).get("template")
            return None
        template = spec.get("template")
        return template if isinstance(template, dict) else None

    def containers(self) -> list[dict[str, Any]]:
        """All containers declared by this object (possibly via a template)."""

        template = self.pod_template()
        if not template:
            return []
        pod_spec = template.get("spec", {}) if self.kind != "Pod" else self.manifest.get("spec", {})
        if self.kind == "Pod":
            pod_spec = self.manifest.get("spec", {})
        containers = pod_spec.get("containers", []) if isinstance(pod_spec, dict) else []
        return [c for c in containers if isinstance(c, dict)]
