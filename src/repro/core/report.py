"""Textual report rendering for benchmark results."""

from __future__ import annotations

from repro.core.benchmark import BenchmarkResult
from repro.scoring.aggregate import METRIC_NAMES

__all__ = ["format_leaderboard"]


def format_leaderboard(result: BenchmarkResult, title: str = "Zero-shot benchmark") -> str:
    """Render a Table 4-style leaderboard as aligned text."""

    lines = [title, ""]
    header = f"{'#':<4}{'Model':<26}" + "".join(f"{name:>14}" for name in METRIC_NAMES)
    lines.append(header)
    lines.append("-" * len(header))
    for rank, (model, scores) in enumerate(result.leaderboard(), start=1):
        row = f"{rank:<4}{model:<26}" + "".join(f"{scores[name]:>14.3f}" for name in METRIC_NAMES)
        lines.append(row)
    return "\n".join(lines)
