"""The master node: job queue management on top of the Redis-like store.

The master speaks one job/claim/report protocol that serves two runtimes:
the timing-only Figure 5 simulation and the real in-process execution used
by :class:`~repro.pipeline.executors.ClusterExecutor`.  A job optionally
carries a ``payload`` — the actual unit of work — and a report optionally
carries the payload's result, so both runtimes share the exact same queue
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.evalcluster.kvstore import RedisLikeStore

__all__ = ["EvaluationJob", "JobReport", "Master"]


@dataclass(frozen=True)
class EvaluationJob:
    """One evaluation job: which problem to evaluate and what it needs.

    ``images`` and ``base_seconds`` drive the timing simulation; ``payload``
    carries the real work (a zero-argument callable) when the job is
    dispatched to an executing runtime.  A job may carry both, in which
    case the runner mode decides which side is used.
    """

    job_id: str
    problem_id: str
    images: tuple[str, ...] = ()
    base_seconds: float = 0.0  # apply + wait + assertions + cleanup, excluding pulls
    target: str = "kubernetes"
    payload: Callable[[], Any] | None = None


@dataclass(frozen=True)
class JobReport:
    """A finished job as recorded by the master."""

    job_id: str
    worker_id: str
    finished_at: float
    passed: bool
    result: Any = None


class Master:
    """Manages the job queue and collects results, as the paper's master does."""

    QUEUE_KEY = "jobs:pending"
    RESULTS_KEY = "jobs:results"

    def __init__(self, store: RedisLikeStore | None = None) -> None:
        self.store = store or RedisLikeStore()
        self._jobs: dict[str, EvaluationJob] = {}

    # -- job submission -------------------------------------------------------
    def submit(self, jobs: Sequence[EvaluationJob]) -> None:
        """Enqueue jobs for the workers to claim."""

        for job in jobs:
            self._jobs[job.job_id] = job
            self.store.rpush(self.QUEUE_KEY, job.job_id)
        self.store.set("jobs:total", len(self._jobs))

    def job(self, job_id: str) -> EvaluationJob:
        return self._jobs[job_id]

    # -- worker-facing API -------------------------------------------------------
    def claim(self) -> EvaluationJob | None:
        """Pop the next pending job, or None when the queue is drained."""

        job_id = self.store.lpop(self.QUEUE_KEY)
        if job_id is None:
            return None
        return self._jobs[job_id]

    def report(
        self,
        job_id: str,
        worker_id: str,
        finished_at: float,
        passed: bool,
        result: Any = None,
    ) -> None:
        """Record a finished job (optionally with the payload's result)."""

        self.store.hset(
            self.RESULTS_KEY,
            job_id,
            {"worker": worker_id, "finished_at": finished_at, "passed": passed, "result": result},
        )

    # -- results --------------------------------------------------------------
    def reports(self) -> dict[str, JobReport]:
        """Every finished job keyed by job id."""

        out: dict[str, JobReport] = {}
        for job_id, row in self.store.hgetall(self.RESULTS_KEY).items():
            out[job_id] = JobReport(
                job_id=job_id,
                worker_id=row["worker"],
                finished_at=row["finished_at"],
                passed=row["passed"],
                result=row.get("result"),
            )
        return out

    def result_of(self, job_id: str) -> Any:
        """The payload result reported for ``job_id`` (None when unfinished)."""

        row = self.store.hget(self.RESULTS_KEY, job_id)
        return None if row is None else row.get("result")

    # -- progress -------------------------------------------------------------------
    def pending(self) -> int:
        return self.store.llen(self.QUEUE_KEY)

    def completed(self) -> int:
        return self.store.hlen(self.RESULTS_KEY)

    def all_done(self) -> bool:
        return self.completed() >= int(self.store.get("jobs:total", 0))
