"""Shard planning: deciding *where* a run's requests are cut into shards.

Sharded evaluation (:mod:`repro.pipeline.sharding`) and the multi-model
scheduler (:mod:`repro.pipeline.scheduler`) both consume a
:class:`ShardPlan` — a contiguous split of the request list — but how the
cut points are chosen is a policy, and this module is its seam:

* :class:`CountPlanner` reproduces the original behaviour bit-identically:
  shards hold (almost) equal numbers of requests
  (:meth:`ShardPlan.for_size`).
* :class:`CostPlanner` balances shards by *predicted seconds* instead.
  Problems are wildly heterogeneous — an Istio bookinfo problem pulls
  half a gigabyte of images while a bare Pod problem pulls nothing — so
  equal-count shards finish minutes apart and the whole run waits on the
  slowest one.  The planner prices every request with the Figure 5 model
  (:meth:`repro.evalcluster.cost.CostModel.predict_problem_seconds`),
  accounts warm registry-cache hits *within* a shard (an image pulled for
  one problem is free for the next), and picks the contiguous partition
  minimising the maximum predicted shard duration.

Both planners emit contiguous plans, which is the property the merge
layer relies on: concatenating per-shard results in shard order
reproduces the original request order, so the planner choice — like the
executor choice — can never change a ScoreCard.

:class:`BatchSizer` applies the same idea one level down: *within* a
shard, it cuts the stream of requests into contiguous batches of roughly
equal predicted seconds instead of equal counts, so a pipeline's
per-batch progress (checkpoints, steal decisions, fleet dispatch) ticks
at an even rhythm even when one batch's problems are 10x another's.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Protocol, Sequence, TypeVar, runtime_checkable

from repro.evalcluster.cost import CostModel
from repro.kubesim.images import normalize_image

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.interface import GenerationRequest

__all__ = [
    "PLANNER_NAMES",
    "BATCH_BY_NAMES",
    "ShardPlan",
    "ShardPlanner",
    "CountPlanner",
    "CostPlanner",
    "BatchSizer",
    "resolve_planner",
]

T = TypeVar("T")

#: Planner specs accepted by ``BenchmarkConfig.shard_by``.
PLANNER_NAMES: tuple[str, ...] = ("count", "cost")

#: Batch-sizing specs accepted by ``BenchmarkConfig.batch_by``.
BATCH_BY_NAMES: tuple[str, ...] = ("count", "cost")

#: Bisection steps when searching for the minimal feasible shard duration.
#: Sixty halvings of the [max-item, total] interval put the cap within
#: machine precision of optimal for any realistic corpus.
_BISECTION_STEPS = 60


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous split of ``total`` work units into shards.

    Contiguity is the property that makes merging trivial *and* exact:
    concatenating per-shard results in shard order reproduces the original
    request order, so a sharded run streams records in exactly the same
    sequence as an unsharded one.

    By default the split is balanced by count (sizes differ by at most
    one); a planner may instead supply ``explicit_sizes`` — arbitrary
    positive cut sizes, e.g. balanced by predicted cost.
    """

    total: int
    num_shards: int
    explicit_sizes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("total must be >= 0")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.explicit_sizes is not None:
            if len(self.explicit_sizes) != self.num_shards:
                raise ValueError(
                    f"explicit_sizes has {len(self.explicit_sizes)} entries "
                    f"for {self.num_shards} shards"
                )
            if sum(self.explicit_sizes) != self.total:
                raise ValueError(
                    f"explicit_sizes sum to {sum(self.explicit_sizes)}, expected {self.total}"
                )
            if any(size < 1 for size in self.explicit_sizes):
                raise ValueError("explicit_sizes must all be >= 1 (empty shards are clamped away)")

    @classmethod
    def for_size(cls, total: int, num_shards: int) -> "ShardPlan":
        """A count-balanced plan over ``total`` units, clamping away empty shards."""

        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        return cls(total=total, num_shards=max(1, min(num_shards, total)))

    @classmethod
    def from_sizes(cls, sizes: Sequence[int]) -> "ShardPlan":
        """A plan with explicit per-shard sizes; zero-size shards are dropped.

        An all-empty (or empty) size list degenerates to the same plan
        ``for_size(0, 1)`` produces, so downstream code sees one canonical
        empty shape.
        """

        cleaned = tuple(int(size) for size in sizes)
        if any(size < 0 for size in cleaned):
            raise ValueError("shard sizes must be >= 0")
        nonempty = tuple(size for size in cleaned if size > 0)
        if not nonempty:
            return cls(total=0, num_shards=1)
        return cls(total=sum(nonempty), num_shards=len(nonempty), explicit_sizes=nonempty)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Per-shard sizes; count-balanced unless the planner cut explicitly."""

        if self.explicit_sizes is not None:
            return self.explicit_sizes
        base, extra = divmod(self.total, self.num_shards)
        return tuple(base + (1 if index < extra else 0) for index in range(self.num_shards))

    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``(start, stop)`` index ranges of every shard."""

        out: list[tuple[int, int]] = []
        start = 0
        for size in self.sizes:
            out.append((start, start + size))
            start += size
        return tuple(out)

    @cached_property
    def _stops(self) -> tuple[int, ...]:
        """Cumulative end offsets of every shard (cached; the plan is frozen)."""

        stops: list[int] = []
        position = 0
        for size in self.sizes:
            position += size
            stops.append(position)
        return tuple(stops)

    def shard_of(self, index: int) -> int:
        """Which shard owns global work-unit ``index``.

        Binary search over the cumulative shard offsets — the schedulers
        ask this per batch, and a linear scan over the bounds made the
        lookup quadratic across a run.
        """

        if not 0 <= index < self.total:
            raise IndexError(f"index {index} out of range for {self.total} units")
        return bisect_right(self._stops, index)

    def split(self, items: Sequence[T]) -> list[list[T]]:
        """Slice ``items`` into per-shard lists."""

        if len(items) != self.total:
            raise ValueError(f"expected {self.total} items, got {len(items)}")
        return [list(items[start:stop]) for start, stop in self.bounds()]


@runtime_checkable
class ShardPlanner(Protocol):
    """Policy choosing the contiguous cut points of a sharded run."""

    def plan(
        self, requests: Sequence["GenerationRequest"], num_shards: int
    ) -> ShardPlan:  # pragma: no cover - protocol
        ...


class CountPlanner:
    """Balance shards by request count — the original contiguous split.

    Delegates to :meth:`ShardPlan.for_size`, so its plans are bit-identical
    to every pre-planner sharded run.
    """

    name = "count"

    def plan(self, requests: Sequence["GenerationRequest"], num_shards: int) -> ShardPlan:
        return ShardPlan.for_size(len(requests), num_shards)


class CostPlanner:
    """Balance shards by predicted wall-clock seconds (Figure 5 model).

    Every request is priced as its problem's predicted evaluation time —
    base execution seconds plus image-pull seconds, where an image already
    pulled by an earlier request *in the same shard* costs nothing (the
    warm registry-cache effect).  The planner then finds the contiguous
    partition minimising the maximum predicted shard duration, via
    bisection on the duration cap with a greedy feasibility scan.

    Contiguity is preserved, so the merged records — and every ScoreCard —
    are identical to a count-planned or unsharded run; only the shard
    *boundaries* move.
    """

    name = "cost"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # -- request pricing ----------------------------------------------------
    def _price(
        self, requests: Sequence["GenerationRequest"]
    ) -> tuple[
        list[float],
        list[tuple[object, ...]],
        list[tuple[object, ...]],
        dict[object, float],
    ]:
        """Per-request base seconds, charge/warm image keys, pull prices.

        Images are keyed by their normalized ``(repository, tag)`` so two
        spellings of one image ("nginx" / "nginx:latest") share a single
        cache slot, exactly as the registry-cache model treats them.  The
        *charge* list prices a request's pulls; the *warm* list is what
        the request leaves in the shard's cache — they differ only under
        calibration, where an observed problem's pulls are already inside
        its measured seconds but its images still warm the cache.
        """

        model = self.cost_model
        base: list[float] = []
        charges: list[tuple[object, ...]] = []
        warms: list[tuple[object, ...]] = []
        pull_seconds: dict[object, float] = {}
        for request in requests:
            problem = request.problem
            base.append(model.predict_base_seconds(problem))
            charge_keys = []
            for image in model.problem_charge_images(problem):
                key = normalize_image(image)
                charge_keys.append(key)
                if key not in pull_seconds:
                    pull_seconds[key] = model.image_pull_seconds(image)
            charges.append(tuple(charge_keys))
            warms.append(
                tuple(normalize_image(image) for image in model.problem_pull_images(problem))
            )
        return base, charges, warms, pull_seconds

    @staticmethod
    def _greedy_sizes(
        cap: float,
        base: Sequence[float],
        charges: Sequence[tuple[str, ...]],
        warms: Sequence[tuple[str, ...]],
        pull_seconds: dict[str, float],
    ) -> list[int]:
        """Contiguous shards whose predicted duration stays under ``cap``.

        A request that would push the current shard over the cap starts a
        new (cold-cache) shard; a single request always fits alone because
        the cap never drops below the most expensive cold request.
        """

        sizes: list[int] = []
        current = 0
        current_seconds = 0.0
        warm: set[str] = set()
        for index in range(len(base)):
            marginal = base[index] + sum(
                pull_seconds[image] for image in set(charges[index]) if image not in warm
            )
            if current and current_seconds + marginal > cap:
                sizes.append(current)
                current = 0
                current_seconds = 0.0
                warm = set()
                marginal = base[index] + sum(pull_seconds[image] for image in set(charges[index]))
            current += 1
            current_seconds += marginal
            warm.update(warms[index])
        if current:
            sizes.append(current)
        return sizes

    # -- planning -----------------------------------------------------------
    def plan(self, requests: Sequence["GenerationRequest"], num_shards: int) -> ShardPlan:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        total = len(requests)
        shards = max(1, min(num_shards, total))
        if total == 0 or shards == 1:
            return ShardPlan.for_size(total, shards)

        base, charges, warms, pull_seconds = self._price(requests)
        cold = [
            item + sum(pull_seconds[image] for image in set(pulls))
            for item, pulls in zip(base, charges)
        ]
        low = max(cold)  # below this, the most expensive request fits nowhere
        high = sum(cold)  # one shard holding everything is always feasible
        for _ in range(_BISECTION_STEPS):
            mid = (low + high) / 2.0
            if len(self._greedy_sizes(mid, base, charges, warms, pull_seconds)) <= shards:
                high = mid
            else:
                low = mid
        return ShardPlan.from_sizes(self._greedy_sizes(high, base, charges, warms, pull_seconds))

    def predicted_durations(
        self, requests: Sequence["GenerationRequest"], plan: ShardPlan
    ) -> tuple[float, ...]:
        """Predicted seconds of every shard of ``plan`` over ``requests``.

        Each shard starts with a cold image cache that stays warm across
        its problems — the same accounting the planner balances on.
        """

        return tuple(
            self.cost_model.predict_problems_seconds(request.problem for request in chunk)
            for chunk in plan.split(list(requests))
        )


class BatchSizer:
    """Cut a shard's requests into contiguous batches of equal *predicted
    seconds* instead of equal counts.

    The pipeline processes a shard batch by batch, and each batch is one
    unit of progress everywhere downstream: one checkpoint flush, one
    steal-policy decision point, one fleet dispatch wave.  Fixed-count
    batches make those units wildly uneven — a batch of 32 bare-Pod
    problems finishes in seconds while a batch of 32 Istio problems pulls
    gigabytes — so the scheduler's view of remaining work lurches.  This
    sizer prices every request exactly as :class:`CostPlanner` does
    (base seconds plus cold image pulls, with the image cache staying
    warm *across* the whole shard: batches run back-to-back on the same
    workers, so a later batch really does inherit earlier pulls) and
    closes a batch once it reaches the shard's per-batch target.

    Batches stay contiguous and cover the shard in order, so swapping
    this in for fixed slicing reorders *nothing* — every ScoreCard and
    the merged record stream are bit-identical; only the cut points move.
    The number of batches never exceeds ``ceil(len(requests) /
    batch_size)`` — the same count fixed slicing would produce.
    """

    def __init__(self, cost_model: CostModel | None = None, batch_size: int = 32) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._pricer = CostPlanner(cost_model=cost_model)

    @property
    def cost_model(self) -> CostModel:
        return self._pricer.cost_model

    def _marginals(self, requests: Sequence["GenerationRequest"]) -> list[float]:
        """Per-request marginal predicted seconds, cache warm across all."""

        base, charges, warms, pull_seconds = self._pricer._price(requests)
        marginals: list[float] = []
        warm: set[object] = set()
        for index in range(len(base)):
            marginals.append(
                base[index]
                + sum(pull_seconds[image] for image in set(charges[index]) if image not in warm)
            )
            warm.update(warms[index])
        return marginals

    def cut(self, requests: Sequence[T]) -> list[list[T]]:
        """Contiguous batches of roughly equal predicted duration.

        The batch budget is ``ceil(n / batch_size)`` — what fixed-count
        slicing would spend — and the target is the shard's total
        predicted seconds divided by that budget.  A batch closes when it
        reaches the target; whatever remains after the last cut forms the
        final batch (its predicted duration is at most one target by
        construction, since every earlier batch consumed at least one).
        """

        items = list(requests)
        if not items:
            return []
        budget = -(-len(items) // self.batch_size)  # ceil division
        if budget == 1:
            return [items]
        marginals = self._marginals(items)
        if sum(marginals) <= 0.0:
            # Degenerate pricing (an all-zero cost model): fall back to
            # the fixed-count cuts rather than emitting singleton batches.
            return [
                items[start : start + self.batch_size]
                for start in range(0, len(items), self.batch_size)
            ]
        # Dynamic target: each batch aims at (remaining seconds) /
        # (remaining batches), re-derived after every cut, so one
        # expensive request overshooting its batch automatically shrinks
        # the targets that follow instead of starving the final batch.
        # A request joins the current batch only when doing so lands
        # closer to the target than cutting before it would.
        batches: list[list[T]] = []
        position = 0
        remaining_seconds = sum(marginals)
        for batch_index in range(budget):
            if position >= len(items):
                break
            if batch_index == budget - 1:
                batches.append(items[position:])
                break
            target = remaining_seconds / (budget - batch_index)
            current = [items[position]]
            current_seconds = marginals[position]
            position += 1
            while position < len(items):
                marginal = marginals[position]
                overshoot = (current_seconds + marginal) - target
                if overshoot > 0 and overshoot > (target - current_seconds):
                    break
                current.append(items[position])
                current_seconds += marginal
                position += 1
            batches.append(current)
            remaining_seconds -= current_seconds
        return batches

    def predicted_seconds(self, batches: Sequence[Sequence["GenerationRequest"]]) -> tuple[float, ...]:
        """Predicted seconds of each batch under the sizer's accounting
        (one image cache warming across all batches in order) — the
        quantity :meth:`cut` balances, for spread guards and diagnostics."""

        flat = [request for batch in batches for request in batch]
        marginals = self._marginals(flat)
        out: list[float] = []
        position = 0
        for batch in batches:
            out.append(sum(marginals[position : position + len(batch)]))
            position += len(batch)
        return tuple(out)


def resolve_planner(
    planner: ShardPlanner | None,
    shard_by: str = "count",
    cost_model: CostModel | None = None,
) -> ShardPlanner:
    """Turn a config (explicit planner instance, else a ``shard_by`` spec)
    into a planner; ``cost_model`` seeds the cost planner's predictions."""

    if planner is not None:
        return planner
    if shard_by == "count":
        return CountPlanner()
    if shard_by == "cost":
        return CostPlanner(cost_model=cost_model)
    raise ValueError(f"unknown shard_by {shard_by!r} (expected one of {PLANNER_NAMES})")
