"""A chaos drill: scripted faults against a self-hosted fleet.

One seeded :class:`~repro.utils.faults.FaultPlan` throws everything at a
four-worker fleet at once:

* the store is SIGKILLed at the 8th coordinator sync tick and rebuilt on
  the same port from its write-ahead journal;
* one job is *poisoned* — every worker that executes it is SIGKILLed —
  so the lease reaper re-enqueues it once and then abandons it;
* every worker's heartbeat freezes after its third beat (the plan ships
  to each worker process), so the whole fleet goes dark to the
  coordinator — harmless here, because leases are stamped on the
  *master's* clock and short jobs finish well inside them.

The run still terminates: dead workers are respawned, every healthy task
comes back correct, and the poison job's slots degrade into typed
markers instead of crashing the map.  Every fault, requeue, respawn and
restart lands in one JSONL event stream — the run's flight recorder.

Run with::

    python examples/chaos_drill.py [events.jsonl]
"""

from __future__ import annotations

import json
import math
import sys
import tempfile
from pathlib import Path

from repro.evalcluster.fleet import FleetExecutor
from repro.pipeline.executors import DegradedResult
from repro.utils.faults import FaultPlan, FaultSpec

TASKS = 24
POISON_SLOT = 5  # chunk_size=1 makes job ids positional: job ...-00000006


def main() -> None:
    events_path = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp() + "/chaos_events.jsonl"
    )
    journal_path = Path(tempfile.mkdtemp()) / "store.journal"

    plan = FaultPlan(
        [
            FaultSpec(site="coordinator.sync", kind="restart", after=8),
            FaultSpec(
                site="worker.execute", kind="kill", match=f"-{POISON_SLOT + 1:08d}", times=0
            ),
            FaultSpec(site="worker.heartbeat", kind="freeze", after=3, times=0),
        ],
        seed=11,
    )
    print(f"fault plan: {plan.to_json()}")
    print(f"event log:  {events_path}")

    with FleetExecutor(
        num_workers=4,
        lease_seconds=1.5,
        poll_seconds=0.05,
        chunk_size=1,
        journal=journal_path,
        fault_plan=plan,
        respawn_limit=4,
        event_log=events_path,
    ) as executor:
        results = executor.map(math.factorial, list(range(TASKS)))
        stats = executor.stats()

    degraded = [index for index, value in enumerate(results) if isinstance(value, DegradedResult)]
    healthy_ok = all(
        value == math.factorial(index)
        for index, value in enumerate(results)
        if index not in degraded
    )
    print(f"\nfleet: {stats.describe()}")
    print(f"degraded slots: {degraded} ({results[POISON_SLOT]})")
    print(f"healthy results correct: {healthy_ok}")

    events = [json.loads(line) for line in events_path.read_text().splitlines()]
    counts: dict[str, int] = {}
    for event in events:
        counts[event["event"]] = counts.get(event["event"], 0) + 1
    print(f"event stream ({len(events)} events): {counts}")

    assert healthy_ok, "a healthy slot came back wrong"
    assert degraded == [POISON_SLOT], f"expected only slot {POISON_SLOT} degraded: {degraded}"
    assert counts.get("restart", 0) == 1, "the store restart was not recorded"
    assert counts.get("fault", 0) >= 3, "injected faults missing from the stream"
    print("\nchaos drill survived: store restarted, poison contained, fleet intact.")


if __name__ == "__main__":
    main()
