"""Line-level diffing used by the edit-distance metric.

The paper computes the edit-distance score as::

    1 - edit_distance / len(reference_YAML)

where the edit distance counts the number of line edits reported by
``difflib.Differ`` between the generated and the reference YAML.  We keep
that definition, clamping to [0, 1] so pathological answers (much longer
than the reference) do not produce negative scores.
"""

from __future__ import annotations

import difflib

__all__ = [
    "significant_lines",
    "line_edit_distance",
    "line_edit_distance_lines",
    "scaled_edit_similarity",
    "scaled_edit_similarity_lines",
    "changed_lines",
]


def significant_lines(text: str) -> list[str]:
    """Split into lines, dropping blank lines and trailing whitespace."""

    return [line.rstrip() for line in text.splitlines() if line.strip()]


# Backwards-compatible private alias (pre-compiled-reference name).
_significant_lines = significant_lines


def line_edit_distance_lines(gen_lines: list[str], ref_lines: list[str]) -> int:
    """Edit distance between two pre-split significant-line lists."""

    differ = difflib.Differ()
    distance = 0
    for entry in differ.compare(ref_lines, gen_lines):
        if entry.startswith(("- ", "+ ")):
            distance += 1
    return distance


def line_edit_distance(generated: str, reference: str) -> int:
    """Number of added/removed lines between the two texts.

    A changed line counts as one removal plus one addition, matching the
    behaviour of ``difflib.Differ`` which reports ``-`` and ``+`` entries.
    """

    return line_edit_distance_lines(significant_lines(generated), significant_lines(reference))


def changed_lines(generated: str, reference: str) -> tuple[list[str], list[str]]:
    """Return (missing_from_generated, extra_in_generated) line lists."""

    gen_lines = significant_lines(generated)
    ref_lines = significant_lines(reference)
    differ = difflib.Differ()
    missing: list[str] = []
    extra: list[str] = []
    for entry in differ.compare(ref_lines, gen_lines):
        if entry.startswith("- "):
            missing.append(entry[2:])
        elif entry.startswith("+ "):
            extra.append(entry[2:])
    return missing, extra


def scaled_edit_similarity_lines(gen_lines: list[str], ref_lines: list[str]) -> float:
    """:func:`scaled_edit_similarity` over pre-split significant-line lists."""

    if not ref_lines:
        return 1.0 if not gen_lines else 0.0
    # Paper formula: 1 - edit_distance / len(reference_YAML).  A fully
    # rewritten answer can exceed the reference length in line edits, so the
    # score is clamped at 0 to stay within [0, 1].
    distance = line_edit_distance_lines(gen_lines, ref_lines)
    return max(0.0, 1.0 - distance / float(len(ref_lines)))


def scaled_edit_similarity(generated: str, reference: str) -> float:
    """Edit-distance similarity scaled by the size of the reference.

    Returns a score in [0, 1]; 1 means the generated text is line-identical
    to the reference (ignoring blank lines), 0 means the edit distance is at
    least as large as the reference itself.
    """

    return scaled_edit_similarity_lines(significant_lines(generated), significant_lines(reference))
