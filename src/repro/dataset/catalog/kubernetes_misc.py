"""Problem templates for the "others" category.

Covers the remaining Kubernetes kinds the paper's dataset touches: RBAC
objects, ConfigMaps, Secrets, LimitRanges, ResourceQuotas, storage
(PV/PVC), Ingress, HorizontalPodAutoscaler, NetworkPolicy, CronJob,
StatefulSet and ServiceAccounts.
"""

from __future__ import annotations

from repro.dataset.catalog.common import (
    CPU_REQUESTS,
    MEMORY_REQUESTS,
    ProblemDraft,
    pick_app,
    pick_source,
)
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _role_binding(rng: DeterministicRNG, index: int) -> ProblemDraft:
    """The RoleBinding example from Figure 1, parameterised."""

    _, namespace = pick_app(rng)
    user = rng.choice(["dave", "alice", "bob", "carol", "erin", "frank"])
    role = rng.choice(["secret-reader", "config-viewer", "pod-reader", "deploy-manager"])
    name = f"read-{role.split('-')[0]}s"
    question = (
        f"Write a yaml file to create a Kubernetes RoleBinding in the {namespace} namespace with the "
        f"name \"{name}\". This RoleBinding should bind the user \"{user}\" to the ClusterRole named "
        f"\"{role}\". Ensure that both the user and the ClusterRole are under the "
        f"rbac.authorization.k8s.io API group."
    )
    reference = f"""apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: {name}
  namespace: {namespace}
subjects:
- kind: User
  name: {user}
  apiGroup: rbac.authorization.k8s.io
roleRef:
  kind: ClusterRole
  name: {role}
  apiGroup: rbac.authorization.k8s.io
"""
    cluster_role = f"""apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRole
metadata:
  name: {role}
rules:
- apiGroups: [""]
  resources: ["secrets"]
  verbs: ["get", "list"]
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyManifest(cluster_role),
        S.ApplyAnswer(),
        S.AssertJsonPath("RoleBinding", "{.metadata.namespace}", expected=namespace, name=name, namespace=namespace),
        S.AssertJsonPath("RoleBinding", "{.subjects[0].name}", expected=user, name=name, namespace=namespace),
        S.AssertJsonPath("RoleBinding", "{.roleRef.name}", expected=role, name=name, namespace=namespace),
        S.AssertJsonPath("RoleBinding", "{.roleRef.kind}", expected="ClusterRole", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-rolebinding-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="RoleBinding",
    )


def _role(rng: DeterministicRNG, index: int) -> ProblemDraft:
    _, namespace = pick_app(rng)
    resource = rng.choice(["pods", "services", "configmaps", "deployments"])
    name = f"{resource[:-1]}-reader"
    api_group = '"apps"' if resource == "deployments" else '""'
    question = (
        f"Create a Role named \"{name}\" in the {namespace} namespace that grants get, watch and "
        f"list permissions on {resource}."
    )
    reference = f"""apiVersion: rbac.authorization.k8s.io/v1
kind: Role
metadata:
  name: {name}
  namespace: {namespace}
rules:
- apiGroups: [{api_group}]
  resources: ["{resource}"]
  verbs: ["get", "watch", "list"]
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("Role", "{.rules[0].resources[0]}", expected=resource, name=name, namespace=namespace),
        S.AssertJsonPath("Role", "{.rules[0].verbs[*]}", contains="watch", name=name, namespace=namespace),
        S.AssertJsonPath("Role", "{.rules[0].verbs[*]}", contains="list", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-role-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Role",
    )


def _cluster_role_binding(rng: DeterministicRNG, index: int) -> ProblemDraft:
    _, namespace = pick_app(rng)
    sa_name = rng.choice(["ci-deployer", "metrics-reader", "backup-agent", "audit-bot"])
    role = rng.choice(["view", "edit", "cluster-admin", "monitoring-reader"])
    name = f"{sa_name}-binding"
    question = (
        f"Write a YAML for a ClusterRoleBinding named \"{name}\" that grants the ClusterRole "
        f"\"{role}\" to the ServiceAccount \"{sa_name}\" in the {namespace} namespace."
    )
    reference = f"""apiVersion: rbac.authorization.k8s.io/v1
kind: ClusterRoleBinding
metadata:
  name: {name}
subjects:
- kind: ServiceAccount
  name: {sa_name}
  namespace: {namespace}
roleRef:
  kind: ClusterRole
  name: {role}
  apiGroup: rbac.authorization.k8s.io
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("ClusterRoleBinding", "{.subjects[0].kind}", expected="ServiceAccount", name=name),
        S.AssertJsonPath("ClusterRoleBinding", "{.subjects[0].name}", expected=sa_name, name=name),
        S.AssertJsonPath("ClusterRoleBinding", "{.roleRef.name}", expected=role, name=name),
    ]
    return ProblemDraft(
        slug=f"others-clusterrolebinding-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="ClusterRoleBinding",
    )


def _configmap(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-config"
    log_level = rng.choice(["debug", "info", "warning"])
    timeout = rng.choice(["30", "60", "120"])
    question = (
        f"Create a ConfigMap named \"{name}\" in the {namespace} namespace with two keys: "
        f"LOG_LEVEL set to \"{log_level}\" and REQUEST_TIMEOUT set to \"{timeout}\"."
    )
    reference = f"""apiVersion: v1
kind: ConfigMap
metadata:
  name: {name}
  namespace: {namespace}
data:
  LOG_LEVEL: "{log_level}"
  REQUEST_TIMEOUT: "{timeout}"
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("ConfigMap", "{.data.LOG_LEVEL}", expected=log_level, name=name, namespace=namespace),
        S.AssertJsonPath("ConfigMap", "{.data.REQUEST_TIMEOUT}", expected=timeout, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-configmap-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="ConfigMap",
    )


def _secret(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-credentials"
    username = rng.choice(["admin", "service", "readonly"])
    question = (
        f"Write a YAML for a Secret named \"{name}\" of type Opaque in the {namespace} namespace "
        f"using stringData with the keys username (value \"{username}\") and password "
        f"(value \"s3cr3t-{app}\")."
    )
    reference = f"""apiVersion: v1
kind: Secret
metadata:
  name: {name}
  namespace: {namespace}
type: Opaque
stringData:
  username: {username}
  password: s3cr3t-{app}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("Secret", "{.type}", expected="Opaque", name=name, namespace=namespace),
        S.AssertJsonPath("Secret", "{.stringData.username}", expected=username, name=name, namespace=namespace),
        S.AssertJsonPath("Secret", "{.stringData.password}", expected=f"s3cr3t-{app}", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-secret-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Secret",
    )


def _limit_range(rng: DeterministicRNG, index: int) -> ProblemDraft:
    _, namespace = pick_app(rng)
    cpu_default = rng.choice(CPU_REQUESTS[:4])
    mem_default = rng.choice(MEMORY_REQUESTS[:4])
    cpu_max = "500m"
    mem_max = "512Mi"
    name = "resource-limits"
    question = (
        f"Craft a yaml file to define a Kubernetes LimitRange named \"{name}\" in the {namespace} "
        f"namespace. Containers should have a default CPU request of {cpu_default} and a default "
        f"memory request of {mem_default}. Containers must not exceed a maximum CPU usage of "
        f"{cpu_max} or a memory usage of {mem_max}."
    )
    reference = f"""apiVersion: v1
kind: LimitRange
metadata:
  name: {name}
  namespace: {namespace}
spec:
  limits:
  - type: Container
    defaultRequest:
      cpu: {cpu_default}
      memory: {mem_default}
    max:
      cpu: {cpu_max}
      memory: {mem_max}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("LimitRange", "{.spec.limits[0].defaultRequest.cpu}", expected=cpu_default, name=name, namespace=namespace),
        S.AssertJsonPath("LimitRange", "{.spec.limits[0].max.memory}", expected=mem_max, name=name, namespace=namespace),
        S.AssertJsonPath("LimitRange", "{.spec.limits[0].type}", expected="Container", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-limitrange-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="LimitRange",
    )


def _resource_quota(rng: DeterministicRNG, index: int) -> ProblemDraft:
    _, namespace = pick_app(rng)
    pods = rng.choice([10, 20, 30, 50])
    cpu = rng.choice(["4", "8", "16"])
    memory = rng.choice(["8Gi", "16Gi", "32Gi"])
    name = "team-quota"
    question = (
        f"Create a ResourceQuota named \"{name}\" for the {namespace} namespace limiting the "
        f"namespace to {pods} pods, {cpu} CPUs of requests and {memory} of memory requests."
    )
    reference = f"""apiVersion: v1
kind: ResourceQuota
metadata:
  name: {name}
  namespace: {namespace}
spec:
  hard:
    pods: "{pods}"
    requests.cpu: "{cpu}"
    requests.memory: {memory}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("ResourceQuota", "{.spec.hard.pods}", expected=str(pods), name=name, namespace=namespace),
        S.AssertJsonPath("ResourceQuota", "{.spec.hard['requests.memory']}", expected=memory, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-resourcequota-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="ResourceQuota",
    )


def _pvc(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    size = rng.choice(["1Gi", "5Gi", "10Gi", "20Gi"])
    mode = rng.choice(["ReadWriteOnce", "ReadWriteMany"])
    name = f"{app}-data"
    question = (
        f"Write a YAML for a PersistentVolumeClaim named \"{name}\" in namespace {namespace} "
        f"requesting {size} of storage with the access mode {mode} and storage class standard."
    )
    reference = f"""apiVersion: v1
kind: PersistentVolumeClaim
metadata:
  name: {name}
  namespace: {namespace}
spec:
  accessModes:
  - {mode}
  storageClassName: standard
  resources:
    requests:
      storage: {size}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("PersistentVolumeClaim", "{.spec.resources.requests.storage}", expected=size, name=name, namespace=namespace),
        S.AssertJsonPath("PersistentVolumeClaim", "{.spec.accessModes[0]}", expected=mode, name=name, namespace=namespace),
        S.AssertJsonPath("PersistentVolumeClaim", "{.spec.storageClassName}", expected="standard", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-pvc-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="PersistentVolumeClaim",
    )


def _persistent_volume(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, _ = pick_app(rng)
    size = rng.choice(["5Gi", "10Gi", "50Gi", "100Gi"])
    path = f"/mnt/data/{app}"
    name = f"{app}-pv"
    question = (
        f"Create a PersistentVolume named \"{name}\" with {size} capacity, access mode "
        f"ReadWriteOnce, storage class manual, backed by the hostPath {path}."
    )
    reference = f"""apiVersion: v1
kind: PersistentVolume
metadata:
  name: {name}
spec:
  capacity:
    storage: {size}
  accessModes:
  - ReadWriteOnce
  storageClassName: manual
  hostPath:
    path: {path}
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertJsonPath("PersistentVolume", "{.spec.capacity.storage}", expected=size, name=name),
        S.AssertJsonPath("PersistentVolume", "{.spec.hostPath.path}", expected=path, name=name),
        S.AssertJsonPath("PersistentVolume", "{.spec.storageClassName}", expected="manual", name=name),
    ]
    return ProblemDraft(
        slug=f"others-pv-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="PersistentVolume",
    )


def _fix_ingress(rng: DeterministicRNG, index: int) -> ProblemDraft:
    """The Appendix C.3 debugging sample: legacy Ingress backend fields."""

    app, namespace = pick_app(rng)
    port = rng.choice([5000, 8080, 3000, 9000])
    name = "minimal-ingress"
    service = f"{app}-app"
    context = f"""apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: test-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        backend:
          serviceName: {service}
          servicePort: {port}
"""
    question = (
        f"Given the following YAML which is not functionally correct, executing it reports the error: "
        f"Ingress in version \"v1\" cannot be handled as a Ingress: strict decoding error: unknown "
        f"field \"spec.rules[0].http.paths[0].backend.serviceName\", unknown field "
        f"\"spec.rules[0].http.paths[0].backend.servicePort\". Please debug it to make it valid for "
        f"the {namespace} namespace, name it \"{name}\", keep the rewrite-target annotation and route "
        f"path / (Prefix) to the service {service} on port {port}. Please provide the entire YAML."
    )
    reference = f"""apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {name}
  namespace: {namespace}
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: {service}
            port:
              number: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Ingress", "synced", name=name, namespace=namespace),
        S.AssertDescribeContains("Ingress", name, f"{service}:{port}", namespace=namespace),
        S.AssertJsonPath("Ingress", "{.spec.rules[0].http.paths[0].pathType}", expected="Prefix", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-fix-ingress-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source="stackoverflow",
        primary_kind="Ingress",
        extra_difficulty=0.1,
    )


def _ingress(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    host = f"{app}.example.com"
    port = rng.choice([80, 8080, 3000])
    name = f"{app}-ingress"
    question = (
        f"Create an Ingress named \"{name}\" in the {namespace} namespace that routes requests for "
        f"host {host} with path prefix /api to the service {app}-svc on port {port}."
    )
    reference = f"""apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: {name}
  namespace: {namespace}
spec:
  rules:
  - host: {host}
    http:
      paths:
      - path: /api
        pathType: Prefix
        backend:
          service:
            name: {app}-svc
            port:
              number: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Ingress", "synced", name=name, namespace=namespace),
        S.AssertJsonPath("Ingress", "{.spec.rules[0].host}", expected=host, name=name, namespace=namespace),
        S.AssertDescribeContains("Ingress", name, f"{app}-svc:{port}", namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-ingress-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Ingress",
        extra_difficulty=0.05,
    )


def _hpa(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    min_replicas = rng.choice([1, 2, 3])
    max_replicas = rng.choice([5, 8, 10, 20])
    cpu_target = rng.choice([50, 60, 70, 80])
    name = f"{app}-hpa"
    question = (
        f"Write a YAML for a HorizontalPodAutoscaler (autoscaling/v2) named \"{name}\" in namespace "
        f"{namespace} that scales the Deployment \"{app}\" between {min_replicas} and {max_replicas} "
        f"replicas targeting {cpu_target}% average CPU utilization."
    )
    reference = f"""apiVersion: autoscaling/v2
kind: HorizontalPodAutoscaler
metadata:
  name: {name}
  namespace: {namespace}
spec:
  scaleTargetRef:
    apiVersion: apps/v1
    kind: Deployment
    name: {app}
  minReplicas: {min_replicas}
  maxReplicas: {max_replicas}
  metrics:
  - type: Resource
    resource:
      name: cpu
      target:
        type: Utilization
        averageUtilization: {cpu_target}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("HorizontalPodAutoscaler", "{.spec.maxReplicas}", expected=str(max_replicas), name=name, namespace=namespace),
        S.AssertJsonPath("HorizontalPodAutoscaler", "{.spec.scaleTargetRef.name}", expected=app, name=name, namespace=namespace),
        S.AssertJsonPath(
            "HorizontalPodAutoscaler",
            "{.spec.metrics[0].resource.target.averageUtilization}",
            expected=str(cpu_target),
            name=name,
            namespace=namespace,
        ),
    ]
    return ProblemDraft(
        slug=f"others-hpa-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="HorizontalPodAutoscaler",
        extra_difficulty=0.1,
    )


def _network_policy(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    port = rng.choice([5432, 6379, 3306, 8080])
    name = f"allow-{app}"
    question = (
        f"Create a NetworkPolicy named \"{name}\" in the {namespace} namespace that selects pods "
        f"labeled app: {app}-db and only allows ingress on TCP port {port} from pods labeled "
        f"app: {app}."
    )
    reference = f"""apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {name}
  namespace: {namespace}
spec:
  podSelector:
    matchLabels:
      app: {app}-db
  policyTypes:
  - Ingress
  ingress:
  - from:
    - podSelector:
        matchLabels:
          app: {app}
    ports:
    - protocol: TCP
      port: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("NetworkPolicy", "{.spec.podSelector.matchLabels.app}", expected=f"{app}-db", name=name, namespace=namespace),
        S.AssertJsonPath("NetworkPolicy", "{.spec.ingress[0].ports[0].port}", expected=str(port), name=name, namespace=namespace),
        S.AssertJsonPath("NetworkPolicy", "{.spec.ingress[0].from[0].podSelector.matchLabels.app}", expected=app, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-networkpolicy-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="NetworkPolicy",
        extra_difficulty=0.1,
    )


def _cron_job(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    schedule = rng.choice(["0 2 * * *", "*/15 * * * *", "30 1 * * 0", "0 */6 * * *"])
    name = f"{app}-backup"
    question = (
        f"Write a YAML for a CronJob named \"{name}\" in namespace {namespace} scheduled at "
        f"\"{schedule}\" that runs busybox:1.36 with the command "
        f"[\"sh\", \"-c\", \"tar czf /backup/{app}.tgz /data\"] and restartPolicy OnFailure."
    )
    reference = f"""apiVersion: batch/v1
kind: CronJob
metadata:
  name: {name}
  namespace: {namespace}
spec:
  schedule: "{schedule}"
  jobTemplate:
    spec:
      template:
        spec:
          restartPolicy: OnFailure
          containers:
          - name: backup  # *
            image: busybox:1.36
            command:
            - sh
            - -c
            - tar czf /backup/{app}.tgz /data
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("CronJob", "{.spec.schedule}", expected=schedule, name=name, namespace=namespace),
        S.AssertJsonPath(
            "CronJob",
            "{.spec.jobTemplate.spec.template.spec.restartPolicy}",
            expected="OnFailure",
            name=name,
            namespace=namespace,
        ),
        S.AssertJsonPath(
            "CronJob",
            "{.spec.jobTemplate.spec.template.spec.containers[0].image}",
            expected="busybox:1.36",
            name=name,
            namespace=namespace,
        ),
    ]
    return ProblemDraft(
        slug=f"others-cronjob-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="CronJob",
        extra_difficulty=0.1,
    )


def _stateful_set(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    replicas = rng.choice([2, 3])
    name = f"{app}-db"
    question = (
        f"Create a StatefulSet named \"{name}\" in the {namespace} namespace with {replicas} replicas "
        f"of redis:7 labeled app: {name}, using the headless service \"{name}-headless\" as its "
        f"serviceName, with container port 6379."
    )
    reference = f"""apiVersion: apps/v1
kind: StatefulSet
metadata:
  name: {name}
  namespace: {namespace}
spec:
  serviceName: {name}-headless
  replicas: {replicas}
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: redis  # *
        image: redis:7
        ports:
        - containerPort: 6379
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("StatefulSet", "ready", name=name, namespace=namespace),
        S.AssertJsonPath("StatefulSet", "{.spec.serviceName}", expected=f"{name}-headless", name=name, namespace=namespace),
        S.AssertJsonPath("StatefulSet", "{.spec.replicas}", expected=str(replicas), name=name, namespace=namespace),
        S.AssertPodCount(selector={"app": name}, min_count=replicas, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-statefulset-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="StatefulSet",
        extra_difficulty=0.1,
    )


def _service_account(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-runner"
    question = (
        f"Write a YAML for a ServiceAccount named \"{name}\" in the {namespace} namespace with "
        f"the label team: {app} and automountServiceAccountToken disabled."
    )
    reference = f"""apiVersion: v1
kind: ServiceAccount
metadata:
  name: {name}
  namespace: {namespace}
  labels:
    team: {app}
automountServiceAccountToken: false
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertJsonPath("ServiceAccount", "{.metadata.labels.team}", expected=app, name=name, namespace=namespace),
        S.AssertJsonPath("ServiceAccount", "{.automountServiceAccountToken}", expected="false", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"others-serviceaccount-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="ServiceAccount",
    )


def _namespace_with_labels(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, _ = pick_app(rng)
    env = rng.choice(["dev", "staging", "prod"])
    name = f"{app}-{env}"
    question = (
        f"Create a Namespace named \"{name}\" labeled with environment: {env} and team: {app}, and "
        f"enable Istio sidecar injection by adding the label istio-injection: enabled."
    )
    reference = f"""apiVersion: v1
kind: Namespace
metadata:
  name: {name}
  labels:
    environment: {env}
    team: {app}
    istio-injection: enabled
"""
    steps = [
        S.ApplyAnswer(),
        S.AssertJsonPath("Namespace", "{.metadata.labels.environment}", expected=env, name=name),
        S.AssertJsonPath("Namespace", "{.metadata.labels.istio-injection}", expected="enabled", name=name),
    ]
    return ProblemDraft(
        slug=f"others-namespace-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Namespace",
    )


_TEMPLATES = [
    _role_binding,
    _role,
    _cluster_role_binding,
    _configmap,
    _secret,
    _limit_range,
    _resource_quota,
    _pvc,
    _persistent_volume,
    _fix_ingress,
    _ingress,
    _hpa,
    _network_policy,
    _cron_job,
    _stateful_set,
    _service_account,
    _namespace_with_labels,
]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` problems for the "others" category."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("others", index), index))
    return drafts
