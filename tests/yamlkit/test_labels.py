"""Tests for reference-label parsing (wildcard / set / exact)."""

from __future__ import annotations

import pytest

from repro.yamlkit.labels import MatchKind, parse_labeled_yaml, strip_labels
from repro.yamlkit.parsing import YamlParseError

LABELED = """apiVersion: v1
kind: Pod
metadata:
  name: my-pod  # *
  namespace: default
spec:
  containers:
  - name: app  # *
    image: ubuntu:22.04  # v in ['20.04', '22.04']
    ports:
    - containerPort: 80
"""


def test_wildcard_label_detected():
    tree = parse_labeled_yaml(LABELED)
    assert tree.children["metadata"].children["name"].match is MatchKind.WILDCARD


def test_exact_is_default():
    tree = parse_labeled_yaml(LABELED)
    assert tree.children["metadata"].children["namespace"].match is MatchKind.EXACT


def test_set_label_options_parsed():
    tree = parse_labeled_yaml(LABELED)
    image = tree.children["spec"].children["containers"].items[0].children["image"]
    assert image.match is MatchKind.SET
    assert image.allowed == ("20.04", "22.04")


def test_wildcard_matches_anything_but_none():
    tree = parse_labeled_yaml(LABELED)
    name = tree.children["metadata"].children["name"]
    assert name.matches_value("totally-different")
    assert not name.matches_value(None)


def test_set_label_accepts_reference_and_alternatives():
    tree = parse_labeled_yaml(LABELED)
    image = tree.children["spec"].children["containers"].items[0].children["image"]
    assert image.matches_value("ubuntu:22.04")
    assert image.matches_value("ubuntu:20.04")
    assert not image.matches_value("ubuntu:18.04")


def test_exact_match_is_lenient_about_numeric_spelling():
    tree = parse_labeled_yaml(LABELED)
    port = (
        tree.children["spec"].children["containers"].items[0].children["ports"].items[0].children["containerPort"]
    )
    assert port.matches_value(80)
    assert port.matches_value("80")
    assert not port.matches_value(8080)


def test_strip_labels_removes_comments_only():
    stripped = strip_labels(LABELED)
    assert "# *" not in stripped
    assert "# v in" not in stripped
    assert "name: my-pod" in stripped
    assert "image: ubuntu:22.04" in stripped


def test_leaf_count_counts_scalars():
    tree = parse_labeled_yaml("a: 1\nb:\n  c: 2\n  d: [3, 4]\n")
    assert tree.leaf_count() == 4


def test_multi_document_reference_becomes_sequence():
    tree = parse_labeled_yaml("kind: Service\n---\nkind: Deployment\n")
    assert tree.node_type == "sequence"
    assert len(tree.items) == 2


def test_invalid_reference_raises():
    with pytest.raises(YamlParseError):
        parse_labeled_yaml("key: [unclosed")


def test_matches_value_on_non_scalar_raises():
    tree = parse_labeled_yaml(LABELED)
    with pytest.raises(ValueError):
        tree.children["spec"].matches_value("x")
