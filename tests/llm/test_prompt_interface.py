"""Tests for prompt construction and the query module."""

from __future__ import annotations

import pytest

from repro.dataset.problem import Problem
from repro.llm.interface import GenerationRequest, QueryModule
from repro.llm.prompt import PROMPT_TEMPLATE, build_prompt, few_shot_examples
from repro.llm.registry import get_model


def test_prompt_template_requests_yaml_only():
    assert "YAML" in PROMPT_TEMPLATE
    assert "without any description" in PROMPT_TEMPLATE


def test_build_prompt_contains_question_and_template(small_dataset):
    problem = small_dataset[0]
    prompt = build_prompt(problem)
    assert prompt.startswith(PROMPT_TEMPLATE.splitlines()[0])
    assert problem.question.split(".")[0] in prompt


def test_build_prompt_includes_context(small_original_problems):
    with_context = next(p for p in small_original_problems if p.has_code_context)
    assert "```" in build_prompt(with_context)


def test_few_shot_examples_count_and_bounds():
    assert len(few_shot_examples(0)) == 0
    assert len(few_shot_examples(3)) == 3
    with pytest.raises(ValueError):
        few_shot_examples(4)


def test_build_prompt_with_shots_is_longer(small_dataset):
    problem = small_dataset[0]
    assert len(build_prompt(problem, shots=3)) > len(build_prompt(problem, shots=0))


def test_query_module_preserves_order(small_original_problems):
    model = get_model("gpt-4")
    module = QueryModule(model)
    problems = list(small_original_problems)[:5]
    results = module.query_problems(problems)
    assert [r.request.problem.problem_id for r in results] == [p.problem_id for p in problems]
    assert all(r.model_name == "gpt-4" for r in results)


def test_query_module_parallel_matches_sequential(small_original_problems):
    model = get_model("gpt-4")
    problems = list(small_original_problems)[:6]
    sequential = QueryModule(model, max_workers=1).query_problems(problems)
    parallel = QueryModule(model, max_workers=4).query_problems(problems)
    assert [r.response for r in sequential] == [r.response for r in parallel]


def test_query_module_multiple_samples(small_original_problems):
    model = get_model("gpt-3.5")
    results = QueryModule(model).query_problems(list(small_original_problems)[:2], samples=3)
    assert len(results) == 6
    assert {r.request.sample_index for r in results} == {0, 1, 2}


def test_query_module_rejects_zero_workers():
    with pytest.raises(ValueError):
        QueryModule(get_model("gpt-4"), max_workers=0)


def test_generation_request_prompt_includes_template(small_dataset):
    request = GenerationRequest(problem=small_dataset[0], shots=1)
    assert "expert engineer" in request.prompt()
