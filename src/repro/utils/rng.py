"""Deterministic random-number utilities.

All stochastic behaviour in the library (simulated LLM sampling, workload
generation, discrete-event jitter) flows through :class:`DeterministicRNG`
so that every experiment is exactly reproducible from a seed.  The helper
:func:`stable_hash` maps arbitrary strings to stable 64-bit integers,
independent of ``PYTHONHASHSEED``, which lets us derive per-problem and
per-model sub-seeds that do not change when unrelated parts of the corpus
change.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["DeterministicRNG", "stable_hash", "derive_seed"]


def stable_hash(*parts: object) -> int:
    """Return a stable 63-bit hash of the string representation of ``parts``.

    Unlike the built-in :func:`hash`, the result does not depend on the
    process-level hash randomisation, so it is safe to use as an RNG seed
    component that must be identical across runs and machines.
    """

    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def derive_seed(base_seed: int, *parts: object) -> int:
    """Combine a base seed with context parts into a new deterministic seed."""

    return stable_hash(base_seed, *parts)


class DeterministicRNG:
    """A thin, explicit wrapper around :class:`numpy.random.Generator`.

    The wrapper exists for three reasons:

    * it documents at call sites that randomness is deterministic and
      seed-derived,
    * it provides ``child`` streams keyed by strings so independent
      subsystems never consume from the same stream (and therefore never
      perturb each other when one of them draws more numbers), and
    * it offers a handful of convenience draws (bernoulli, choice with
      weights) used throughout the simulators.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def child(self, *parts: object) -> "DeterministicRNG":
        """Return an independent RNG derived from this seed and ``parts``."""

        return DeterministicRNG(derive_seed(self.seed, *parts))

    # -- scalar draws -----------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""

        return float(self._gen.random())

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""

        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Integer drawn uniformly from [low, high] inclusive."""

        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return int(self._gen.integers(low, high + 1))

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""

        return bool(self._gen.random() < p)

    def normal(self, mean: float, std: float) -> float:
        """Gaussian draw."""

        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Log-normal draw (of the underlying normal's parameters)."""

        return float(self._gen.lognormal(mean, sigma))

    def exponential(self, scale: float) -> float:
        """Exponential draw with the given scale (mean)."""

        return float(self._gen.exponential(scale))

    # -- collection draws -------------------------------------------------
    def choice(self, items: Sequence[T], weights: Sequence[float] | None = None) -> T:
        """Pick one element, optionally weighted."""

        if not items:
            raise ValueError("cannot choose from an empty sequence")
        if weights is None:
            idx = int(self._gen.integers(0, len(items)))
            return items[idx]
        w = np.asarray(weights, dtype=float)
        if len(w) != len(items):
            raise ValueError("weights length must match items length")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        idx = int(self._gen.choice(len(items), p=w / total))
        return items[idx]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements without replacement."""

        k = min(k, len(items))
        idx = self._gen.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in idx]

    def shuffle(self, items: Iterable[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""

        out = list(items)
        self._gen.shuffle(out)  # type: ignore[arg-type]
        return out
