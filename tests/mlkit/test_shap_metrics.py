"""Tests for the exact SHAP explainer and evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlkit.metrics import accuracy, mean_absolute_error, relative_error, roc_auc
from repro.mlkit.shap import exact_shap_values, mean_abs_shap


def test_shap_values_sum_to_prediction_difference():
    # Linear model: SHAP values are exactly recoverable and additive.
    weights = np.array([1.0, -2.0, 0.5])

    def predict(X):
        return X @ weights

    rng = np.random.default_rng(0)
    X = rng.random((20, 3))
    background = X.mean(axis=0)
    shap = exact_shap_values(predict, X, background=background)
    reconstructed = predict(np.tile(background, (len(X), 1))) + shap.sum(axis=1)
    assert np.allclose(reconstructed, predict(X), atol=1e-8)


def test_shap_of_linear_model_matches_analytic_value():
    weights = np.array([3.0, 0.0])

    def predict(X):
        return X @ weights

    X = np.array([[1.0, 5.0], [0.0, -2.0]])
    background = np.array([0.5, 0.0])
    shap = exact_shap_values(predict, X, background=background)
    # For an additive model the Shapley value of feature i is w_i * (x_i - background_i).
    assert np.allclose(shap[:, 0], weights[0] * (X[:, 0] - background[0]))
    assert np.allclose(shap[:, 1], 0.0)


def test_shap_ignores_irrelevant_features():
    def predict(X):
        return X[:, 0] * 2.0

    X = np.random.default_rng(1).random((10, 4))
    shap = exact_shap_values(predict, X)
    assert np.abs(shap[:, 1:]).max() < 1e-9


def test_shap_rejects_too_many_features():
    with pytest.raises(ValueError):
        exact_shap_values(lambda X: X.sum(axis=1), np.zeros((2, 20)), max_features=12)


def test_mean_abs_shap_shapes_and_names():
    shap = np.array([[1.0, -2.0], [3.0, 0.0]])
    summary = mean_abs_shap(shap, ["a", "b"])
    assert summary == {"a": 2.0, "b": 1.0}
    with pytest.raises(ValueError):
        mean_abs_shap(shap, ["only-one"])


def test_accuracy_and_mae():
    assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)
    assert mean_absolute_error(np.array([1.0, 2.0]), np.array([2.0, 0.0])) == pytest.approx(1.5)
    assert accuracy(np.array([]), np.array([])) == 0.0


def test_relative_error_handles_zero_denominator():
    assert relative_error(0.0, 0.0) == 0.0
    assert relative_error(1.0, 0.0) == 100.0
    assert relative_error(110.0, 100.0) == pytest.approx(10.0)


def test_roc_auc_perfect_and_random():
    y = np.array([0, 0, 1, 1])
    assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
    assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
    assert roc_auc(np.array([1, 1]), np.array([0.5, 0.6])) == 0.5  # degenerate: no negatives


def test_roc_auc_handles_ties():
    y = np.array([0, 1, 0, 1])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert roc_auc(y, scores) == pytest.approx(0.5)
