"""Text helpers shared by the dataset statistics and scoring modules.

The paper reports two length measures for questions and solutions:

* *words* — whitespace-separated tokens of the natural-language question,
* *tokens* — subword-style tokens, which we approximate with a simple
  byte-pair-free tokenizer that splits on punctuation, camelCase and digit
  boundaries.  The absolute counts differ from OpenAI's tokenizer but the
  relative reductions reported in Table 1 (simplified vs original) are
  preserved because both variants are measured with the same tokenizer.
"""

from __future__ import annotations

import re

__all__ = [
    "count_words",
    "count_tokens",
    "normalize_whitespace",
    "split_camel_case",
    "tokenize_text",
]

_WORD_RE = re.compile(r"\S+")
_TOKEN_RE = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z0-9]")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""

    return re.sub(r"\s+", " ", text).strip()


def count_words(text: str) -> int:
    """Count whitespace-separated words."""

    return len(_WORD_RE.findall(text))


def split_camel_case(word: str) -> list[str]:
    """Split camelCase / PascalCase identifiers into their components."""

    parts = _CAMEL_RE.split(word)
    return [p for p in parts if p]


def tokenize_text(text: str) -> list[str]:
    """Tokenize text into subword-like tokens.

    The tokenizer splits on whitespace, punctuation, digit boundaries and
    camelCase humps, then further splits long alphabetic tokens into
    four-character chunks to approximate subword tokenization.  The result
    is deterministic and language-agnostic enough to also count the
    pseudo-translated (Chinese-glossary) questions.
    """

    tokens: list[str] = []
    for raw in _TOKEN_RE.findall(text):
        if raw.isalpha():
            for piece in split_camel_case(raw):
                while len(piece) > 4:
                    tokens.append(piece[:4])
                    piece = piece[4:]
                if piece:
                    tokens.append(piece)
        else:
            tokens.append(raw)
    # CJK characters are each their own token (they are matched by the
    # "other symbol" branch of the regex one character at a time).
    return tokens


def count_tokens(text: str) -> int:
    """Count approximate subword tokens of ``text``."""

    return len(tokenize_text(text))
