"""Shared vocabulary and helpers for the problem template catalog.

Templates draw application names, namespaces, images, ports and resource
quantities from the pools below so the corpus has realistic variety while
remaining fully deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.testexec.steps import Step, UnitTestProgram
from repro.utils.rng import DeterministicRNG

__all__ = [
    "ProblemDraft",
    "APP_NAMES",
    "NAMESPACES",
    "WEB_IMAGES",
    "WORKER_IMAGES",
    "AGENT_IMAGES",
    "CPU_REQUESTS",
    "MEMORY_REQUESTS",
    "HTTP_PORTS",
    "pick_app",
    "kubernetes_program",
    "envoy_program",
]


@dataclass
class ProblemDraft:
    """Everything a template produces before the builder finalises it."""

    slug: str
    question: str
    reference_yaml: str
    steps: Sequence[Step]
    yaml_context: str | None = None
    target: str = "kubernetes"
    nodes: int = 1
    source: str = "documentation"
    primary_kind: str = "Pod"
    extra_difficulty: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


APP_NAMES = [
    "frontend",
    "backend",
    "payments",
    "checkout",
    "inventory",
    "orders",
    "auth",
    "gateway",
    "catalog",
    "analytics",
    "billing",
    "search",
    "recommender",
    "notifications",
    "profile",
    "session",
    "metrics",
    "cart",
    "shipping",
    "ledger",
    "webhooks",
    "scheduler",
    "reporting",
    "ingest",
]

NAMESPACES = [
    "default",
    "production",
    "staging",
    "development",
    "platform",
    "web",
    "data",
    "monitoring",
    "internal",
    "edge",
]

WEB_IMAGES = ["nginx:latest", "nginx:1.25", "httpd:2.4", "caddy:2", "haproxy:2.8"]
WORKER_IMAGES = ["busybox:1.36", "alpine:3.19", "ubuntu:22.04", "python:3.11-slim"]
AGENT_IMAGES = ["fluent/fluentd:v1.16", "prom/prometheus:v2.47.0", "grafana/grafana:10.1.0"]
DB_IMAGES = ["redis:7", "mysql:8.0", "postgres:16", "mongo:7"]

CPU_REQUESTS = ["50m", "100m", "150m", "200m", "250m", "500m"]
MEMORY_REQUESTS = ["50Mi", "64Mi", "128Mi", "200Mi", "256Mi", "512Mi"]
HTTP_PORTS = [80, 8080, 8000, 3000, 5000, 9090]

_SOURCES = ["documentation", "stackoverflow", "blog"]


def pick_app(rng: DeterministicRNG) -> tuple[str, str]:
    """Pick an (app name, namespace) pair."""

    return rng.choice(APP_NAMES), rng.choice(NAMESPACES)


def pick_source(rng: DeterministicRNG) -> str:
    """Pick a provenance tag with documentation being the most common."""

    return rng.choice(_SOURCES, weights=[0.55, 0.3, 0.15])


def kubernetes_program(steps: Sequence[Step], nodes: int = 1) -> UnitTestProgram:
    """Build a Kubernetes-target unit-test program."""

    return UnitTestProgram(steps=tuple(steps), target="kubernetes", nodes=nodes)


def envoy_program(steps: Sequence[Step]) -> UnitTestProgram:
    """Build an Envoy-target unit-test program."""

    return UnitTestProgram(steps=tuple(steps), target="envoy")
